//! Distributed continuous serving: a [`StepEngine`] that executes each
//! scheduler iteration through the multi-stage pipeline ring.
//!
//! [`DistStepEngine`] is the third implementation of the serving
//! engine trait, after the analytic
//! [`SimStepEngine`](crate::serve::SimStepEngine) and the local
//! [`ModelStepEngine`](crate::serve::ModelStepEngine): the master keeps
//! embedding, logits projection and sampling, while decoder layers run
//! on stage workers connected by a [`Transport`] ring — in-process
//! channels, real TCP processes, or the simulated network, all through
//! the same engine. The [`ContinuousScheduler`](crate::serve::ContinuousScheduler)
//! runs unchanged on top.
//!
//! Fault model: any ring failure (crash, hang past the op deadline,
//! wire disconnect, post-commit swap loss) marks the ring *down* and
//! surfaces as [`StepError::RingRestarted`] on the next engine call.
//! The scheduler reacts by requeueing every in-flight sequence for
//! recompute (the `recovered` conservation leg); the next call lazily
//! rebuilds the ring from the boot plan and — when the engine had
//! already committed a precision swap — replays the two-phase barrier
//! so the fresh ring resumes on the committed rung. Greedy decoding
//! makes the recompute bit-identical, so a crash is invisible in the
//! token stream.
//!
//! Precision rungs are full [`ExecutionPlan`]s: `set_rung` runs the
//! live-migration protocol (§14) between scheduler iterations — the
//! ring is quiescent there, so the propose/prepare/commit/swapped
//! barrier needs no token boundary bookkeeping.

use crate::clock::{real_clock, Clock};
use crate::engine::bits_label;
use crate::fault::{FaultInjector, FaultPlan};
use crate::kvpool::{KvPool, KvPoolConfig, KvPoolError};
use crate::loader::load_stage_weights;
use crate::migrate::MigrationHost;
use crate::net::transport::{Transport, TransportRecvError, TransportSendError};
use crate::serve::{IterCost, StepEngine, StepError};
use crate::worker::{run_worker_ctx, WorkItem, WorkerCtx, WorkerMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use llm_pq::ExecutionPlan;
use llmpq_model::{Matrix, Phase, RefModel};
use llmpq_quant::Rounding;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Knobs of the distributed serving engine.
#[derive(Debug, Clone, Copy)]
pub struct DistServeConfig {
    /// Worker-side sequence slots (must cover the scheduler's
    /// `max_batch`; each stage pre-allocates one KV cache per slot).
    pub n_slots: usize,
    /// Geometry of the mirror KV pool the scheduler sees.
    pub pool: KvPoolConfig,
    /// Ring rebuilds allowed before the engine gives up for good.
    pub max_restarts: usize,
    /// Real-time deadline for one ring round-trip or barrier phase; an
    /// op exceeding it is treated as a lost ring (hung stage).
    pub op_timeout: Duration,
    /// Receive/retry granularity on the ring link.
    pub tick: Duration,
    /// Virtual stall charged per committed precision swap. The default
    /// (0) matches [`ModelStepEngine`](crate::serve::ModelStepEngine),
    /// keeping the virtual timelines of a local and a distributed run
    /// identical — the token-equality tests rely on that.
    pub swap_stall_s: f64,
}

impl Default for DistServeConfig {
    fn default() -> Self {
        Self {
            n_slots: 32,
            pool: KvPoolConfig::default(),
            max_restarts: 4,
            op_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(2),
            swap_stall_s: 0.0,
        }
    }
}

/// A pipeline-ring backend the engine can (re)dial: per attempt it
/// hands out a fresh master-side [`Transport`] whose far end is stage
/// 0 and whose receive side is the last stage. Implementations:
/// [`ChannelRing`] (in-process threads) and the TCP stage ring in
/// [`crate::net::dist`].
pub trait ServingRing: Send {
    /// Establish attempt `attempt` and return the master link. Stages
    /// always boot on the *boot* plan; the engine replays committed
    /// swaps on top.
    fn dial(&mut self, attempt: usize) -> Result<Box<dyn Transport + Send>, String>;
    /// Tear down the current attempt (un-wedge hung workers, join or
    /// disown them). Called after the master link is dropped; must be
    /// idempotent.
    fn teardown(&mut self);
    /// Number of pipeline stages in the ring.
    fn n_stages(&self) -> usize;
}

/// In-process ring: one OS thread per stage over crossbeam channels,
/// boot-plan weights quantized once and shared across attempts. The
/// serving analog of [`run_attempt`](crate::engine)'s channel chain,
/// with a [`MigrationHost`] on every worker so live swaps work.
pub struct ChannelRing {
    stage_weights: Vec<Arc<Vec<llmpq_model::LayerWeights>>>,
    boot: ExecutionPlan,
    n_heads: usize,
    hidden: usize,
    alibi: bool,
    n_slots: usize,
    tick: Duration,
    injector: Arc<FaultInjector>,
    host: Arc<MigrationHost>,
    clock: Arc<dyn Clock>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ChannelRing {
    /// Quantize the boot shards and prepare the ring (no threads run
    /// until the first [`dial`](ServingRing::dial)). `faults` attaches
    /// deterministic worker-fault injection for chaos tests.
    pub fn new(
        checkpoint: &RefModel,
        boot: ExecutionPlan,
        rounding: Rounding,
        seed: u64,
        n_slots: usize,
        tick: Duration,
        faults: Option<FaultPlan>,
    ) -> Result<Self, String> {
        boot.validate(checkpoint.cfg.n_layers)?;
        let stage_weights = boot
            .stages
            .iter()
            .map(|s| {
                let (w, _) = load_stage_weights(checkpoint, s.layer_start, &s.bits, rounding, seed);
                Arc::new(w)
            })
            .collect();
        Ok(Self {
            stage_weights,
            n_heads: checkpoint.cfg.n_heads,
            hidden: checkpoint.cfg.hidden,
            alibi: checkpoint.cfg.alibi,
            boot,
            n_slots,
            tick,
            injector: FaultInjector::new(&faults.unwrap_or_default()),
            host: Arc::new(MigrationHost::new(checkpoint.clone(), rounding, seed)),
            clock: real_clock(),
            threads: Vec::new(),
        })
    }

    /// The shared fault injector (tests flip its abort flag directly).
    pub fn injector(&self) -> Arc<FaultInjector> {
        self.injector.clone()
    }
}

impl ServingRing for ChannelRing {
    fn dial(&mut self, attempt: usize) -> Result<Box<dyn Transport + Send>, String> {
        self.teardown();
        self.injector.begin_attempt(attempt);
        let n_stages = self.boot.stages.len();
        let mut senders: Vec<Sender<WorkerMsg>> = Vec::new();
        let mut receivers: Vec<Receiver<WorkerMsg>> = Vec::new();
        for _ in 0..=n_stages {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let to_first = senders[0].clone();
        let from_last = receivers[n_stages].clone();
        for (i, weights) in self.stage_weights.iter().enumerate() {
            let weights = weights.clone();
            let rx = receivers[i].clone();
            let tx = senders[i + 1].clone();
            let ctx = WorkerCtx {
                stage: i,
                device: self.boot.stages[i].device,
                n_heads: self.n_heads,
                hidden: self.hidden,
                alibi: self.alibi,
                n_seqs: self.n_slots,
                injector: Some(self.injector.clone()),
                heartbeats: None,
                sink: None,
                telemetry: None,
                bits: bits_label(&self.boot.stages[i]),
                tick: self.tick,
                disconnects: None,
                clock: self.clock.clone(),
                layer_start: self.boot.stages[i].layer_start,
                migration: Some(self.host.clone()),
            };
            self.threads.push(std::thread::spawn(move || run_worker_ctx(&weights, &ctx, rx, tx)));
        }
        Ok(Box::new(crate::net::transport::ChannelTransport::new(from_last, to_first)))
    }

    fn teardown(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        // Un-wedge hung workers; live ones exit via channel disconnect
        // once the master link (dropped by the caller) cascades.
        self.injector.set_abort();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn n_stages(&self) -> usize {
        self.boot.stages.len()
    }
}

impl Drop for ChannelRing {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Any ring failure, collapsed: the engine's reaction is always the
/// same — mark the ring down and let the scheduler requeue.
struct RingLost(String);

/// Borrowed view over the master link for one ring operation.
struct RingIo<'a> {
    link: &'a dyn Transport,
    tick: Duration,
    clock: &'a dyn Clock,
    deadline: Duration,
}

impl<'a> RingIo<'a> {
    fn send(&self, msg: WorkerMsg) -> Result<(), RingLost> {
        let mut msg = msg;
        loop {
            match self.link.send_msg(msg, self.tick) {
                Ok(()) => return Ok(()),
                Err(TransportSendError::Disconnected) => {
                    return Err(RingLost("first stage unreachable".into()))
                }
                Err(TransportSendError::Timeout(m)) => {
                    msg = m;
                    if self.clock.expired(self.deadline) {
                        return Err(RingLost("ring send timed out".into()));
                    }
                }
            }
        }
    }

    /// One work-item round trip: send, then receive until the echo with
    /// the same step id returns from the last stage. Duplicates (older
    /// steps) and stale migration traffic are sunk; everything fatal is
    /// a lost ring.
    fn roundtrip(&self, item: WorkItem) -> Result<WorkItem, RingLost> {
        let step = item.step;
        self.send(WorkerMsg::Work(item))?;
        loop {
            match self.link.recv_msg(self.tick) {
                Ok(WorkerMsg::Work(it)) => {
                    if it.step == step {
                        return Ok(it);
                    }
                    // Older step: a fault-injected duplicate — drop.
                }
                Ok(WorkerMsg::Shutdown) => return Err(RingLost("premature shutdown".into())),
                Ok(WorkerMsg::Protocol(e)) => return Err(RingLost(format!("protocol: {e}"))),
                // The engine's own broadcasts wrapping the ring, or
                // stragglers from a dead swap epoch: sink.
                Ok(WorkerMsg::KvReset { .. })
                | Ok(WorkerMsg::PlanPropose { .. })
                | Ok(WorkerMsg::PlanCommit { .. })
                | Ok(WorkerMsg::PlanReady { .. })
                | Ok(WorkerMsg::PlanAbort { .. })
                | Ok(WorkerMsg::KvChunk(_)) => {}
                Err(TransportRecvError::Disconnected) => {
                    return Err(RingLost("last stage disconnected".into()))
                }
                Err(TransportRecvError::Timeout) => {
                    if self.clock.expired(self.deadline) {
                        return Err(RingLost(format!("step {step} never returned")));
                    }
                }
            }
        }
    }

    /// The two-phase live-swap barrier, run while the ring is quiescent
    /// between scheduler iterations: propose → every stage prepared →
    /// commit → every stage swapped (KV chunks re-forwarded around the
    /// ring). Any failure — prepare abort included — is a lost ring;
    /// the restart resumes directly on the target plan, which keeps the
    /// swap's effect on the token stream deterministic.
    fn swap_barrier(&self, epoch: u64, plan_json: String, n_stages: usize) -> Result<(), RingLost> {
        self.send(WorkerMsg::PlanPropose { epoch, plan_json })?;
        let mut prepared = vec![false; n_stages];
        let mut swapped = vec![false; n_stages];
        let mut committed = false;
        loop {
            if !committed && prepared.iter().all(|&p| p) {
                self.send(WorkerMsg::PlanCommit { epoch })?;
                committed = true;
            }
            if committed && swapped.iter().all(|&s| s) {
                return Ok(());
            }
            match self.link.recv_msg(self.tick) {
                Ok(WorkerMsg::PlanReady { epoch: e, stage, swapped: sw }) if e == epoch => {
                    let slot = stage as usize;
                    if slot < n_stages {
                        if sw {
                            swapped[slot] = true;
                        } else {
                            prepared[slot] = true;
                        }
                    }
                }
                Ok(WorkerMsg::PlanAbort { epoch: e, reason }) if e == epoch => {
                    // Pre-commit: tear the proposal down everywhere so no
                    // stage is left holding a prepared shard, then fail —
                    // the rebuilt ring boots onto the target plan anyway.
                    if !committed {
                        let _ = self.send(WorkerMsg::PlanAbort { epoch: e, reason: reason.clone() });
                    }
                    return Err(RingLost(format!("swap epoch {epoch} aborted: {reason}")));
                }
                Ok(WorkerMsg::KvChunk(c)) if c.epoch == epoch => {
                    // In transit between stages: keep it moving.
                    self.send(WorkerMsg::KvChunk(c))?;
                }
                Ok(WorkerMsg::Work(_)) => {
                    // Quiescent barrier: only fault-injected duplicates of
                    // already-consumed steps can appear — drop.
                }
                Ok(WorkerMsg::Shutdown) => return Err(RingLost("premature shutdown".into())),
                Ok(WorkerMsg::Protocol(e)) => return Err(RingLost(format!("protocol: {e}"))),
                Ok(_) => {} // echoes and stale-epoch traffic: sink
                Err(TransportRecvError::Disconnected) => {
                    return Err(RingLost("last stage disconnected".into()))
                }
                Err(TransportRecvError::Timeout) => {
                    if self.clock.expired(self.deadline) {
                        return Err(RingLost(format!("swap epoch {epoch} barrier timed out")));
                    }
                }
            }
        }
    }
}

/// The distributed serving engine (module docs above).
pub struct DistStepEngine {
    /// Embedding + logits live on the master, like the offline engine.
    master: RefModel,
    /// Rung ladder: full execution plans, same stage count, rung 0 is
    /// the boot plan every (re)started ring loads.
    plans: Vec<ExecutionPlan>,
    costs: Vec<IterCost>,
    pool: KvPool,
    ring: Box<dyn ServingRing>,
    link: Option<Box<dyn Transport + Send>>,
    /// slot → live sequence (index is the worker-side sequence id).
    slots: Vec<Option<u64>>,
    seq_slot: HashMap<u64, usize>,
    /// Mirror of each live sequence's cached positions (debug asserts).
    positions: HashMap<u64, usize>,
    rung: usize,
    epoch: u64,
    next_step: u64,
    attempt: usize,
    restarts: u64,
    ring_down: bool,
    started: bool,
    cfg: DistServeConfig,
    clock: Arc<dyn Clock>,
}

impl DistStepEngine {
    /// Engine over an in-process [`ChannelRing`] on `plans[0]`, with
    /// optional deterministic worker faults.
    pub fn over_channels(
        checkpoint: &RefModel,
        plans: Vec<ExecutionPlan>,
        rounding: Rounding,
        seed: u64,
        cfg: DistServeConfig,
        faults: Option<FaultPlan>,
    ) -> Result<Self, String> {
        let boot = plans.first().ok_or("need at least one plan in the rung ladder")?.clone();
        let ring =
            ChannelRing::new(checkpoint, boot, rounding, seed, cfg.n_slots, cfg.tick, faults)?;
        Self::over_ring(checkpoint, plans, cfg, Box::new(ring))
    }

    /// Engine over any [`ServingRing`] backend (the TCP stage ring uses
    /// this). Stages must boot on `plans[0]`.
    pub fn over_ring(
        checkpoint: &RefModel,
        plans: Vec<ExecutionPlan>,
        cfg: DistServeConfig,
        ring: Box<dyn ServingRing>,
    ) -> Result<Self, String> {
        if plans.is_empty() {
            return Err("need at least one plan in the rung ladder".into());
        }
        let n_stages = plans[0].stages.len();
        for (i, p) in plans.iter().enumerate() {
            p.validate(checkpoint.cfg.n_layers).map_err(|e| format!("rung {i}: {e}"))?;
            if p.stages.len() != n_stages {
                return Err(format!(
                    "rung {i} has {} stages, rung 0 has {n_stages} — live swap needs a fixed ring",
                    p.stages.len()
                ));
            }
        }
        if ring.n_stages() != n_stages {
            return Err(format!(
                "ring has {} stages, plans have {n_stages}",
                ring.n_stages()
            ));
        }
        if cfg.n_slots == 0 {
            return Err("n_slots must be ≥ 1".into());
        }
        let costs = IterCost::default_ladder(plans.len());
        Ok(Self {
            master: checkpoint.clone(),
            plans,
            costs,
            pool: KvPool::new(cfg.pool),
            ring,
            link: None,
            slots: vec![None; cfg.n_slots],
            seq_slot: HashMap::new(),
            positions: HashMap::new(),
            rung: 0,
            epoch: 0,
            next_step: 0,
            attempt: 0,
            restarts: 0,
            ring_down: false,
            started: false,
            cfg,
            clock: real_clock(),
        })
    }

    /// Ring rebuilds taken so far (the `/healthz` restart counter).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Committed live-swap epoch of the current ring attempt.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the ring is currently down (next call restarts it).
    pub fn ring_down(&self) -> bool {
        self.ring_down
    }

    fn io(&self) -> RingIo<'_> {
        RingIo {
            link: self.link.as_deref().expect("ensure_ring established the link"),
            tick: self.cfg.tick,
            clock: &*self.clock,
            deadline: self.clock.deadline(self.cfg.op_timeout),
        }
    }

    /// Lazily (re)establish the ring. Restart path: count against the
    /// budget, tear the old attempt down, dial fresh (boot plan), then
    /// replay the committed rung through the swap barrier so the new
    /// ring serves the precision the scheduler believes is active.
    fn ensure_ring(&mut self) -> Result<(), StepError> {
        if self.link.is_some() && !self.ring_down {
            return Ok(());
        }
        if self.started {
            if self.restarts >= self.cfg.max_restarts as u64 {
                return Err(StepError::Engine(format!(
                    "ring lost and restart budget ({}) exhausted",
                    self.cfg.max_restarts
                )));
            }
            self.restarts += 1;
            self.attempt += 1;
        }
        self.link = None; // EOF cascade tears the old attempt down
        self.ring.teardown();
        let link = self.ring.dial(self.attempt).map_err(StepError::Engine)?;
        self.link = Some(link);
        self.ring_down = false;
        self.started = true;
        self.epoch = 0;
        self.next_step = 0;
        if self.rung != 0 {
            // Caches are empty at attempt start, so the KV handoff is
            // trivial — the barrier only moves the shard boundaries and
            // requantized weights into place. A failure here is another
            // lost ring, not a fatal error: the budget bounds retries.
            if self.swap_to(self.rung).is_err() {
                return Err(StepError::RingRestarted);
            }
        }
        Ok(())
    }

    /// Run the live-swap barrier to `target`. On failure the ring is
    /// down and the *target* stays authoritative: the restart boots
    /// into it, exactly like the offline migration's post-commit rule.
    fn swap_to(&mut self, target: usize) -> Result<(), StepError> {
        let epoch = self.epoch + 1;
        let json = self.plans[target].to_json();
        let n_stages = self.ring.n_stages();
        let res = self.io().swap_barrier(epoch, json, n_stages);
        match res {
            Ok(()) => {
                self.epoch = epoch;
                Ok(())
            }
            Err(RingLost(why)) => {
                self.ring_down = true;
                Err(StepError::Engine(format!("swap to rung {target} failed: {why}")))
            }
        }
    }

    fn slot_of(&self, seq: u64) -> Result<usize, StepError> {
        self.seq_slot
            .get(&seq)
            .copied()
            .ok_or_else(|| StepError::Engine(format!("unregistered sequence {seq}")))
    }

    /// Send one item through the ring and sample the last row of the
    /// returned hidden states (greedy, same tie-breaking as the offline
    /// engine). A lost ring marks the engine down and surfaces as
    /// [`StepError::RingRestarted`].
    fn forward(&mut self, slot: usize, x: Matrix, phase: Phase, sample: bool) -> Result<Option<usize>, StepError> {
        self.ensure_ring()?;
        let step = self.next_step;
        self.next_step += 1;
        let item = WorkItem {
            step,
            epoch: self.epoch,
            microbatch: 0,
            phase,
            sent_us: 0,
            seqs: vec![(slot, x)],
        };
        let res = self.io().roundtrip(item);
        match res {
            Ok(echo) => {
                if !sample {
                    return Ok(None);
                }
                let (_, h) = echo
                    .seqs
                    .into_iter()
                    .next()
                    .ok_or_else(|| StepError::Engine("empty work item echo".into()))?;
                let last = Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec());
                let logits = self.master.project_logits(&last);
                Ok(Some(argmax(logits.row(0))))
            }
            Err(RingLost(_)) => {
                self.ring_down = true;
                Err(StepError::RingRestarted)
            }
        }
    }
}

/// Same expression as `sample_from_logits` at temperature 0 (last max
/// wins), so tokens match the offline engines bit-for-bit.
fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

impl StepEngine for DistStepEngine {
    fn pool(&self) -> &KvPool {
        &self.pool
    }

    fn register(&mut self, seq: u64) -> Result<(), StepError> {
        let slot = self
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or_else(|| StepError::Engine(format!("all {} slots in use", self.cfg.n_slots)))?;
        self.pool.alloc(seq, 0).map_err(|e| StepError::Engine(e.to_string()))?;
        self.slots[slot] = Some(seq);
        self.seq_slot.insert(seq, slot);
        self.positions.insert(seq, 0);
        Ok(())
    }

    fn prefill_chunk(
        &mut self,
        seq: u64,
        tokens: &[usize],
        pos0: usize,
        is_last: bool,
    ) -> Result<Option<usize>, StepError> {
        let slot = self.slot_of(seq)?;
        debug_assert_eq!(self.positions[&seq], pos0, "prefill chunks must be contiguous");
        // Mirror the allocator first: an exhausted pool must preempt
        // without touching the ring, exactly like the local engine.
        match self.pool.extend(seq, tokens.len()) {
            Err(KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        let x = self.master.embed_tokens(tokens, pos0);
        let tok = self.forward(slot, x, Phase::Prefill, is_last)?;
        *self.positions.get_mut(&seq).expect("registered") += tokens.len();
        Ok(tok)
    }

    fn decode_one(&mut self, seq: u64, last: usize, pos: usize) -> Result<usize, StepError> {
        let slot = self.slot_of(seq)?;
        debug_assert_eq!(self.positions[&seq], pos, "decode position must follow the cache");
        match self.pool.extend(seq, 1) {
            Err(KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        let x = self.master.embed_tokens(&[last], pos);
        let tok = self
            .forward(slot, x, Phase::Decode, true)?
            .expect("sampled decode step returns a token");
        *self.positions.get_mut(&seq).expect("registered") += 1;
        Ok(tok)
    }

    fn release(&mut self, seq: u64) {
        self.pool.free(seq);
        self.positions.remove(&seq);
        let Some(slot) = self.seq_slot.remove(&seq) else { return };
        self.slots[slot] = None;
        // Recycle the worker-side slot: broadcast a KV reset around the
        // ring. Per-hop FIFO ordering guarantees it lands before any
        // work item of the slot's next occupant; the echo is sunk by
        // the next receive loop. A downed ring needs no reset — the
        // rebuilt attempt starts from empty caches anyway.
        if self.ring_down || self.link.is_none() {
            return;
        }
        if self.io().send(WorkerMsg::KvReset { seq: slot }).is_err() {
            self.ring_down = true;
        }
    }

    fn iteration_cost_s(&self, rung: usize, p: usize, d: usize) -> f64 {
        self.costs[rung.min(self.costs.len() - 1)].cost(p, d)
    }

    fn n_rungs(&self) -> usize {
        self.plans.len()
    }

    fn set_rung(&mut self, rung: usize) -> f64 {
        let target = rung.min(self.plans.len() - 1);
        if target == self.rung {
            return 0.0;
        }
        if self.link.is_some() && !self.ring_down {
            // Live swap; on failure the restart boots into the target.
            let _ = self.swap_to(target);
        }
        self.rung = target;
        self.cfg.swap_stall_s
    }

    fn rung(&self) -> usize {
        self.rung
    }

    fn max_seq(&self) -> usize {
        self.master.cfg.max_seq
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn restarts(&self) -> u64 {
        self.restarts
    }
}

impl Drop for DistStepEngine {
    fn drop(&mut self) {
        if let Some(link) = self.link.take() {
            // Best-effort graceful drain; EOF cascade finishes the job.
            let _ = link.send_msg(WorkerMsg::Shutdown, self.cfg.tick);
        }
        self.ring.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use crate::overload::poisson_requests;
    use crate::serve::{serve_continuous, ContinuousConfig, ModelStepEngine, RungSwap};
    use llm_pq::StagePlan;
    use llmpq_model::RefConfig;
    use llmpq_quant::{BitAssignment, Bitwidth};
    use llmpq_workload::MicrobatchPlan;

    const SEED: u64 = 11;

    fn checkpoint() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    fn mb() -> MicrobatchPlan {
        MicrobatchPlan { prefill_size: 1, prefill_count: 1, decode_size: 1, decode_count: 1 }
    }

    /// Two-stage plan over the tiny model at uniform `bits`.
    fn plan(bits: Bitwidth) -> ExecutionPlan {
        let n = checkpoint().cfg.n_layers;
        let split = n / 2;
        ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: split, bits: vec![bits; split] },
                StagePlan { device: 1, layer_start: split, layer_end: n, bits: vec![bits; n - split] },
            ],
            microbatch: mb(),
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    fn ladder() -> Vec<ExecutionPlan> {
        vec![plan(Bitwidth::Fp16), plan(Bitwidth::Int8)]
    }

    fn bit_ladder() -> Vec<BitAssignment> {
        let n = checkpoint().cfg.n_layers;
        vec![BitAssignment::uniform(n, Bitwidth::Fp16), BitAssignment::uniform(n, Bitwidth::Int8)]
    }

    fn cfg() -> ContinuousConfig {
        ContinuousConfig {
            token_budget: 16,
            max_batch: 4,
            ..ContinuousConfig::default()
        }
    }

    fn dist_engine(faults: Option<FaultPlan>) -> DistStepEngine {
        DistStepEngine::over_channels(
            &checkpoint(),
            ladder(),
            Rounding::Deterministic,
            SEED,
            DistServeConfig { n_slots: 8, ..DistServeConfig::default() },
            faults,
        )
        .expect("engine")
    }

    fn local_engine() -> ModelStepEngine {
        ModelStepEngine::new(
            &checkpoint(),
            &bit_ladder(),
            Rounding::Deterministic,
            SEED,
            KvPoolConfig::default(),
        )
        .expect("engine")
    }

    fn trace(n: usize) -> Vec<crate::overload::Request> {
        poisson_requests(n, 50.0, 6, 4, 5).expect("trace")
    }

    fn finished_tokens(
        report: &crate::serve::ContinuousReport,
    ) -> std::collections::BTreeMap<usize, Vec<usize>> {
        report.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect()
    }

    #[test]
    fn channel_ring_matches_local_engine() {
        let reqs = trace(6);
        let local = serve_continuous(local_engine(), &reqs, cfg(), None).expect("local");
        let dist = serve_continuous(dist_engine(None), &reqs, cfg(), None).expect("dist");
        assert_eq!(finished_tokens(&local), finished_tokens(&dist));
        assert!(dist.stats.conserves(dist.pending_end), "conservation");
    }

    #[test]
    fn crash_recovers_bit_identically() {
        let reqs = trace(6);
        let local = serve_continuous(local_engine(), &reqs, cfg(), None).expect("local");
        let faults = FaultPlan {
            events: vec![FaultEvent { stage: 1, step: 5, attempt: Some(0), kind: FaultKind::Crash }],
        };
        let dist = serve_continuous(dist_engine(Some(faults)), &reqs, cfg(), None).expect("dist");
        assert_eq!(finished_tokens(&local), finished_tokens(&dist), "recompute is exact");
        assert!(dist.stats.recovered > 0, "restart requeued in-flight work");
        assert!(dist.stats.conserves(dist.pending_end), "conservation incl. recovered");
    }

    #[test]
    fn live_swap_matches_local_swap() {
        let reqs = trace(6);
        let mut c = cfg();
        c.swaps = vec![RungSwap { at_iteration: 3, rung: 1 }];
        let local = serve_continuous(local_engine(), &reqs, c.clone(), None).expect("local");
        let dist = serve_continuous(dist_engine(None), &reqs, c, None).expect("dist");
        assert_eq!(finished_tokens(&local), finished_tokens(&dist), "swap is transparent");
    }

    #[test]
    fn crash_then_swap_restores_committed_rung() {
        // Crash after the swap: the rebuilt ring must replay the barrier
        // and resume on rung 1, or tokens would diverge.
        let reqs = trace(6);
        let mut c = cfg();
        c.swaps = vec![RungSwap { at_iteration: 2, rung: 1 }];
        let local = serve_continuous(local_engine(), &reqs, c.clone(), None).expect("local");
        let faults = FaultPlan {
            events: vec![FaultEvent { stage: 0, step: 9, attempt: Some(0), kind: FaultKind::Crash }],
        };
        let dist = serve_continuous(dist_engine(Some(faults)), &reqs, c, None).expect("dist");
        assert_eq!(finished_tokens(&local), finished_tokens(&dist));
        assert!(dist.stats.conserves(dist.pending_end));
    }

    #[test]
    fn restart_budget_is_enforced() {
        let mut eng = DistStepEngine::over_channels(
            &checkpoint(),
            ladder(),
            Rounding::Deterministic,
            SEED,
            DistServeConfig { n_slots: 2, max_restarts: 0, ..DistServeConfig::default() },
            None,
        )
        .expect("engine");
        eng.register(0).unwrap();
        assert!(eng.prefill_chunk(0, &[1, 2], 0, true).unwrap().is_some());
        eng.ring_down = true;
        let err = eng.decode_one(0, 1, 2).unwrap_err();
        // First failure surfaces as a restart; the retry exhausts the
        // zero budget.
        assert!(matches!(err, StepError::RingRestarted) || matches!(err, StepError::Engine(_)));
        let err = eng.decode_one(0, 1, 2).unwrap_err();
        assert!(matches!(err, StepError::Engine(ref m) if m.contains("budget")), "{err:?}");
    }

    #[test]
    fn ladder_with_mismatched_stage_count_is_rejected() {
        let n = checkpoint().cfg.n_layers;
        let one_stage = ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: n,
                bits: vec![Bitwidth::Fp16; n],
            }],
            microbatch: mb(),
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        let err = DistStepEngine::over_channels(
            &checkpoint(),
            vec![plan(Bitwidth::Fp16), one_stage],
            Rounding::Deterministic,
            SEED,
            DistServeConfig::default(),
            None,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("stages"), "{err}");
    }
}
