//! Paged/slab KV-cache allocator for the continuous-batching serving
//! path (vLLM-style "PagedAttention" bookkeeping, scalar edition).
//!
//! The offline pipeline pre-allocates one [`KvCache`] per sequence for
//! the whole run — fine when the batch is fixed, hopeless when requests
//! join and leave every iteration. [`KvPool`] instead carves the KV
//! budget into fixed-size *blocks* of `block_tokens` positions and hands
//! them out from a free-list: a sequence owns a chain of blocks, grows
//! one block at a time as it decodes, and returns the whole chain the
//! iteration it finishes (or is preempted). Fragmentation is bounded to
//! less than one block per live sequence, and "does this request fit?"
//! becomes integer arithmetic on the free-list — which is exactly what
//! the scheduler's join/preempt rules (see [`mod@crate::serve`]) need.
//!
//! [`PagedKvStore`] adds the actual tensor storage: per-layer K/V arenas
//! indexed by block id. The reference model's attention wants a
//! contiguous per-sequence [`KvCache`], so the store *gathers* a
//! sequence's blocks into one before the forward pass and *scatters*
//! the newly appended rows back afterwards — the copy-based stand-in
//! for a paged attention kernel, numerically identical to running on a
//! monolithic cache.
//!
//! [`KvCache`]: llmpq_model::KvCache

use std::collections::HashMap;

use llmpq_model::{KvCache, Matrix};
use serde::{Deserialize, Serialize};

/// Geometry of a [`KvPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPoolConfig {
    /// Total number of blocks in the pool.
    pub n_blocks: usize,
    /// Token positions per block.
    pub block_tokens: usize,
}

impl KvPoolConfig {
    /// Pool capacity in token positions.
    pub fn capacity_tokens(&self) -> usize {
        self.n_blocks * self.block_tokens
    }
}

impl Default for KvPoolConfig {
    fn default() -> Self {
        Self { n_blocks: 256, block_tokens: 16 }
    }
}

/// Why a pool operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvPoolError {
    /// Not enough free blocks: `needed` > `free`. The scheduler reacts
    /// by preempting a victim sequence, not by crashing.
    Exhausted { needed: usize, free: usize },
    /// The sequence id is not registered.
    UnknownSeq(u64),
    /// The sequence id is already registered.
    DoubleAlloc(u64),
}

impl std::fmt::Display for KvPoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvPoolError::Exhausted { needed, free } => {
                write!(f, "kv pool exhausted: need {needed} blocks, {free} free")
            }
            KvPoolError::UnknownSeq(s) => write!(f, "unknown kv sequence {s}"),
            KvPoolError::DoubleAlloc(s) => write!(f, "kv sequence {s} already allocated"),
        }
    }
}

impl std::error::Error for KvPoolError {}

/// Lifetime counters, for the `/metrics` serving block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPoolStats {
    /// Successful block grants.
    pub block_allocs: u64,
    /// Blocks returned to the free-list.
    pub block_frees: u64,
    /// Grants refused for lack of blocks (each one is a preemption
    /// trigger upstream).
    pub failed_allocs: u64,
    /// High-water mark of blocks in use.
    pub peak_blocks: usize,
}

#[derive(Debug, Clone)]
struct SeqAlloc {
    blocks: Vec<u32>,
    tokens: usize,
}

/// Block-granular KV allocator with a LIFO free-list.
///
/// Pure bookkeeping — no tensor data — so the simulated serving engine
/// can use it for admission/preemption decisions at 10k+ concurrent
/// requests without touching floats. [`PagedKvStore`] pairs it with
/// real storage for the model-executing engine.
#[derive(Debug, Clone)]
pub struct KvPool {
    cfg: KvPoolConfig,
    free: Vec<u32>,
    seqs: HashMap<u64, SeqAlloc>,
    stats: KvPoolStats,
}

impl KvPool {
    /// An empty pool of `cfg.n_blocks` blocks, all free.
    pub fn new(cfg: KvPoolConfig) -> Self {
        // LIFO list popping from the back: block 0 is granted first,
        // recently freed blocks are reused first (cache-friendly and
        // deterministic).
        let free = (0..cfg.n_blocks as u32).rev().collect();
        Self { cfg, free, seqs: HashMap::new(), stats: KvPoolStats::default() }
    }

    /// Pool geometry.
    pub fn config(&self) -> KvPoolConfig {
        self.cfg
    }

    /// Blocks needed to hold `tokens` positions.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.cfg.block_tokens)
    }

    /// Register `seq` and grant blocks for `tokens` positions (0 is
    /// fine: the sequence exists but owns nothing yet).
    pub fn alloc(&mut self, seq: u64, tokens: usize) -> Result<(), KvPoolError> {
        if self.seqs.contains_key(&seq) {
            return Err(KvPoolError::DoubleAlloc(seq));
        }
        let needed = self.blocks_for(tokens);
        if needed > self.free.len() {
            self.stats.failed_allocs += 1;
            return Err(KvPoolError::Exhausted { needed, free: self.free.len() });
        }
        let blocks: Vec<u32> = (0..needed).map(|_| self.free.pop().unwrap()).collect();
        self.stats.block_allocs += blocks.len() as u64;
        self.seqs.insert(seq, SeqAlloc { blocks, tokens });
        self.note_peak();
        Ok(())
    }

    /// Grow `seq` by `tokens` more positions, granting blocks as chain
    /// boundaries are crossed. On [`KvPoolError::Exhausted`] the
    /// sequence is left exactly as it was.
    pub fn extend(&mut self, seq: u64, tokens: usize) -> Result<(), KvPoolError> {
        let free_now = self.free.len();
        let a = self.seqs.get_mut(&seq).ok_or(KvPoolError::UnknownSeq(seq))?;
        let have = a.blocks.len();
        let needed = (a.tokens + tokens).div_ceil(self.cfg.block_tokens);
        let grow = needed.saturating_sub(have);
        if grow > free_now {
            self.stats.failed_allocs += 1;
            return Err(KvPoolError::Exhausted { needed: grow, free: free_now });
        }
        for _ in 0..grow {
            a.blocks.push(self.free.pop().unwrap());
        }
        a.tokens += tokens;
        self.stats.block_allocs += grow as u64;
        self.note_peak();
        Ok(())
    }

    /// New blocks an `extend(seq, tokens)` would need right now.
    pub fn blocks_needed(&self, seq: u64, tokens: usize) -> usize {
        match self.seqs.get(&seq) {
            None => self.blocks_for(tokens),
            Some(a) => {
                (a.tokens + tokens).div_ceil(self.cfg.block_tokens).saturating_sub(a.blocks.len())
            }
        }
    }

    /// Release `seq`'s whole chain back to the free-list. Returns the
    /// number of blocks freed (0 for an unknown sequence — freeing
    /// twice is harmless by design, the scheduler calls this on both
    /// finish and preempt paths).
    pub fn free(&mut self, seq: u64) -> usize {
        match self.seqs.remove(&seq) {
            None => 0,
            Some(a) => {
                let n = a.blocks.len();
                self.free.extend(a.blocks.into_iter().rev());
                self.stats.block_frees += n as u64;
                n
            }
        }
    }

    /// Token positions currently held by `seq` (None if unregistered).
    pub fn tokens_of(&self, seq: u64) -> Option<usize> {
        self.seqs.get(&seq).map(|a| a.tokens)
    }

    /// The block chain of `seq`, in position order.
    pub fn blocks_of(&self, seq: u64) -> Option<&[u32]> {
        self.seqs.get(&seq).map(|a| a.blocks.as_slice())
    }

    /// Free blocks available.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently granted.
    pub fn used_blocks(&self) -> usize {
        self.cfg.n_blocks - self.free.len()
    }

    /// Whether `tokens` more positions could be granted to a *new*
    /// sequence right now.
    pub fn can_fit(&self, tokens: usize) -> bool {
        self.blocks_for(tokens) <= self.free.len()
    }

    /// Whether a request of `tokens` total positions could *ever* fit
    /// (i.e. in an empty pool) — requests failing this are infeasible
    /// and must be shed at admission, not admitted and preempted
    /// forever.
    pub fn feasible(&self, tokens: usize) -> bool {
        self.blocks_for(tokens) <= self.cfg.n_blocks
    }

    /// Occupancy in `[0, 1]`: granted blocks over total.
    pub fn occupancy(&self) -> f64 {
        if self.cfg.n_blocks == 0 {
            return 1.0;
        }
        self.used_blocks() as f64 / self.cfg.n_blocks as f64
    }

    /// Live (registered) sequences.
    pub fn live_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> KvPoolStats {
        self.stats
    }

    fn note_peak(&mut self) {
        self.stats.peak_blocks = self.stats.peak_blocks.max(self.used_blocks());
    }
}

/// Block-paged K/V tensor storage on top of [`KvPool`].
///
/// One K and one V arena per layer, each `n_blocks × block_tokens`
/// rows of width `hidden`. Rows for a sequence live wherever its block
/// chain points; [`PagedKvStore::gather`] materialises the contiguous
/// per-sequence [`KvCache`] the reference attention expects, and
/// [`PagedKvStore::append`] scatters freshly computed rows back into
/// the chain (growing it block-by-block).
#[derive(Debug, Clone)]
pub struct PagedKvStore {
    pool: KvPool,
    n_layers: usize,
    hidden: usize,
    /// `k[layer]` / `v[layer]`: flat arena, row `block * block_tokens +
    /// offset` holds that position's vector.
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl PagedKvStore {
    /// Arenas for `n_layers` layers of width `hidden` over `cfg` blocks.
    pub fn new(cfg: KvPoolConfig, n_layers: usize, hidden: usize) -> Self {
        let rows = cfg.n_blocks * cfg.block_tokens;
        Self {
            pool: KvPool::new(cfg),
            n_layers,
            hidden,
            k: (0..n_layers).map(|_| vec![0.0; rows * hidden]).collect(),
            v: (0..n_layers).map(|_| vec![0.0; rows * hidden]).collect(),
        }
    }

    /// The underlying allocator (read-only; mutation goes through
    /// [`Self::register`] / [`Self::append`] / [`Self::release`]).
    pub fn pool(&self) -> &KvPool {
        &self.pool
    }

    /// Register a sequence with no KV yet.
    pub fn register(&mut self, seq: u64) -> Result<(), KvPoolError> {
        self.pool.alloc(seq, 0)
    }

    /// Drop a sequence and return its blocks.
    pub fn release(&mut self, seq: u64) -> usize {
        self.pool.free(seq)
    }

    /// Gather `seq`'s KV into a contiguous cache of `tokens_of(seq)`
    /// rows per layer.
    pub fn gather(&self, seq: u64) -> Result<KvCache, KvPoolError> {
        let a = self.pool.seqs.get(&seq).ok_or(KvPoolError::UnknownSeq(seq))?;
        let bt = self.pool.cfg.block_tokens;
        let mut cache = KvCache::new(self.n_layers, self.hidden);
        for layer in 0..self.n_layers {
            let (km, vm) = (&mut cache.k[layer], &mut cache.v[layer]);
            km.data.reserve(a.tokens * self.hidden);
            vm.data.reserve(a.tokens * self.hidden);
            let mut left = a.tokens;
            for &b in &a.blocks {
                let take = left.min(bt);
                let base = b as usize * bt * self.hidden;
                km.data.extend_from_slice(&self.k[layer][base..base + take * self.hidden]);
                vm.data.extend_from_slice(&self.v[layer][base..base + take * self.hidden]);
                left -= take;
            }
            km.rows = a.tokens;
            vm.rows = a.tokens;
        }
        Ok(cache)
    }

    /// Scatter rows `[from_row..]` of `cache` (a gathered cache the
    /// forward pass appended to) back into `seq`'s chain, growing it.
    /// On exhaustion nothing is written and the chain is unchanged.
    pub fn append(&mut self, seq: u64, cache: &KvCache, from_row: usize) -> Result<(), KvPoolError> {
        let new_rows = cache.len().saturating_sub(from_row);
        if new_rows == 0 {
            return Ok(());
        }
        self.pool.extend(seq, new_rows)?;
        let a = &self.pool.seqs[&seq];
        let bt = self.pool.cfg.block_tokens;
        for layer in 0..self.n_layers {
            for r in 0..new_rows {
                let pos = from_row + r;
                let block = a.blocks[pos / bt] as usize;
                let dst = (block * bt + pos % bt) * self.hidden;
                let src = pos * self.hidden;
                self.k[layer][dst..dst + self.hidden]
                    .copy_from_slice(&cache.k[layer].data[src..src + self.hidden]);
                self.v[layer][dst..dst + self.hidden]
                    .copy_from_slice(&cache.v[layer].data[src..src + self.hidden]);
            }
        }
        Ok(())
    }

    /// Hidden width per row.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Layers per arena.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// KV bytes resident (f32 K+V over granted blocks, all layers) —
    /// the figure the occupancy gauge reports.
    pub fn resident_bytes(&self) -> u64 {
        let rows = self.pool.used_blocks() * self.pool.cfg.block_tokens;
        (rows * self.hidden * self.n_layers * 2 * std::mem::size_of::<f32>()) as u64
    }
}

/// Convenience: a `Matrix` wrapper used in tests to fabricate KV rows.
pub fn kv_row_matrix(rows: usize, hidden: usize, fill: impl Fn(usize, usize) -> f32) -> Matrix {
    let mut m = Matrix::zeros(rows, hidden);
    for r in 0..rows {
        for c in 0..hidden {
            m.data[r * hidden + c] = fill(r, c);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n_blocks: usize, block_tokens: usize) -> KvPool {
        KvPool::new(KvPoolConfig { n_blocks, block_tokens })
    }

    #[test]
    fn alloc_rounds_up_to_blocks() {
        let mut p = pool(8, 16);
        p.alloc(1, 17).unwrap();
        assert_eq!(p.blocks_of(1).unwrap().len(), 2);
        assert_eq!(p.tokens_of(1), Some(17));
        assert_eq!(p.free_blocks(), 6);
    }

    #[test]
    fn zero_token_alloc_registers_without_blocks() {
        let mut p = pool(4, 16);
        p.alloc(9, 0).unwrap();
        assert_eq!(p.blocks_of(9).unwrap().len(), 0);
        assert_eq!(p.free_blocks(), 4);
        p.extend(9, 1).unwrap();
        assert_eq!(p.blocks_of(9).unwrap().len(), 1);
    }

    #[test]
    fn extend_grants_only_on_boundary() {
        let mut p = pool(8, 4);
        p.alloc(1, 3).unwrap();
        assert_eq!(p.used_blocks(), 1);
        p.extend(1, 1).unwrap(); // 4 tokens: still one block
        assert_eq!(p.used_blocks(), 1);
        p.extend(1, 1).unwrap(); // 5 tokens: crosses into a second
        assert_eq!(p.used_blocks(), 2);
        assert_eq!(p.blocks_needed(1, 3), 0);
        assert_eq!(p.blocks_needed(1, 4), 1);
    }

    #[test]
    fn exhaustion_is_reported_and_leaves_state_intact() {
        let mut p = pool(2, 4);
        p.alloc(1, 8).unwrap();
        let err = p.alloc(2, 1).unwrap_err();
        assert!(matches!(err, KvPoolError::Exhausted { needed: 1, free: 0 }));
        p.alloc(2, 0).unwrap();
        let err = p.extend(2, 1).unwrap_err();
        assert!(matches!(err, KvPoolError::Exhausted { .. }));
        assert_eq!(p.tokens_of(2), Some(0));
        assert_eq!(p.stats().failed_allocs, 2);
    }

    #[test]
    fn free_returns_blocks_for_reuse() {
        let mut p = pool(2, 4);
        p.alloc(1, 8).unwrap();
        assert!(!p.can_fit(1));
        assert_eq!(p.free(1), 2);
        assert!(p.can_fit(8));
        assert_eq!(p.free(1), 0, "double free is a no-op");
        p.alloc(2, 8).unwrap();
        assert_eq!(p.used_blocks(), 2);
    }

    #[test]
    fn feasible_vs_can_fit() {
        let mut p = pool(4, 4);
        p.alloc(1, 12).unwrap();
        assert!(!p.can_fit(8), "only one block free");
        assert!(p.feasible(16), "fits an empty pool");
        assert!(!p.feasible(17), "never fits");
    }

    #[test]
    fn double_alloc_and_unknown_seq_are_errors() {
        let mut p = pool(4, 4);
        p.alloc(1, 1).unwrap();
        assert_eq!(p.alloc(1, 1).unwrap_err(), KvPoolError::DoubleAlloc(1));
        assert_eq!(p.extend(2, 1).unwrap_err(), KvPoolError::UnknownSeq(2));
    }

    #[test]
    fn occupancy_and_peak_track_usage() {
        let mut p = pool(10, 4);
        p.alloc(1, 16).unwrap();
        assert!((p.occupancy() - 0.4).abs() < 1e-12);
        p.free(1);
        assert_eq!(p.occupancy(), 0.0);
        assert_eq!(p.stats().peak_blocks, 4);
        assert_eq!(p.stats().block_allocs, 4);
        assert_eq!(p.stats().block_frees, 4);
    }

    #[test]
    fn interleaved_alloc_free_never_leaks_blocks() {
        let mut p = pool(16, 8);
        for round in 0u64..50 {
            for s in 0..4 {
                p.alloc(round * 10 + s, (s as usize + 1) * 7).unwrap();
            }
            for s in 0..4 {
                p.free(round * 10 + s);
            }
            assert_eq!(p.free_blocks(), 16, "round {round}");
            assert_eq!(p.live_seqs(), 0);
        }
    }

    #[test]
    fn store_gather_matches_append_round_trip() {
        let mut st = PagedKvStore::new(KvPoolConfig { n_blocks: 8, block_tokens: 4 }, 2, 3);
        st.register(7).unwrap();
        // Fabricate a "forward pass" that appended 6 rows to an empty
        // gathered cache.
        let mut cache = st.gather(7).unwrap();
        for layer in 0..2 {
            let km = kv_row_matrix(6, 3, |r, c| (layer * 100 + r * 10 + c) as f32);
            let vm = kv_row_matrix(6, 3, |r, c| -((layer * 100 + r * 10 + c) as f32));
            cache.k[layer] = km;
            cache.v[layer] = vm;
        }
        st.append(7, &cache, 0).unwrap();
        assert_eq!(st.pool().tokens_of(7), Some(6));
        assert_eq!(st.pool().used_blocks(), 2);
        let back = st.gather(7).unwrap();
        assert_eq!(back.len(), 6);
        for layer in 0..2 {
            assert_eq!(back.k[layer].data, cache.k[layer].data, "layer {layer} K");
            assert_eq!(back.v[layer].data, cache.v[layer].data, "layer {layer} V");
        }
    }

    #[test]
    fn store_incremental_append_matches_monolithic() {
        // Growing one row at a time across block boundaries must read
        // back identically to a single bulk append.
        let cfg = KvPoolConfig { n_blocks: 8, block_tokens: 3 };
        let mut bulk = PagedKvStore::new(cfg, 1, 2);
        let mut inc = PagedKvStore::new(cfg, 1, 2);
        bulk.register(1).unwrap();
        inc.register(1).unwrap();
        let full = kv_row_matrix(10, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let mut c = bulk.gather(1).unwrap();
        c.k[0] = full.clone();
        c.v[0] = full.clone();
        bulk.append(1, &c, 0).unwrap();
        for row in 0..10 {
            let mut g = inc.gather(1).unwrap();
            let one = kv_row_matrix(1, 2, |_, cix| (row * 2 + cix) as f32 * 0.5);
            g.k[0].data.extend_from_slice(&one.data);
            g.k[0].rows += 1;
            g.v[0].data.extend_from_slice(&one.data);
            g.v[0].rows += 1;
            inc.append(1, &g, row).unwrap();
        }
        assert_eq!(inc.gather(1).unwrap().k[0].data, bulk.gather(1).unwrap().k[0].data);
        assert_eq!(inc.pool().used_blocks(), bulk.pool().used_blocks());
    }

    #[test]
    fn store_release_then_reuse_is_clean() {
        let mut st = PagedKvStore::new(KvPoolConfig { n_blocks: 2, block_tokens: 2 }, 1, 1);
        st.register(1).unwrap();
        let mut c = st.gather(1).unwrap();
        c.k[0] = kv_row_matrix(4, 1, |_, _| 7.0);
        c.v[0] = kv_row_matrix(4, 1, |_, _| 7.0);
        st.append(1, &c, 0).unwrap();
        assert_eq!(st.release(1), 2);
        // A new sequence reusing the same blocks sees only its own rows.
        st.register(2).unwrap();
        let mut c2 = st.gather(2).unwrap();
        c2.k[0] = kv_row_matrix(1, 1, |_, _| 3.0);
        c2.v[0] = kv_row_matrix(1, 1, |_, _| 3.0);
        st.append(2, &c2, 0).unwrap();
        let g = st.gather(2).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.k[0].data, vec![3.0]);
    }

    #[test]
    fn resident_bytes_follows_blocks() {
        let mut st = PagedKvStore::new(KvPoolConfig { n_blocks: 4, block_tokens: 2 }, 3, 5);
        assert_eq!(st.resident_bytes(), 0);
        st.register(1).unwrap();
        let mut c = st.gather(1).unwrap();
        c.k[0] = kv_row_matrix(3, 5, |_, _| 1.0);
        c.v[0] = kv_row_matrix(3, 5, |_, _| 1.0);
        c.k[1] = c.k[0].clone();
        c.v[1] = c.v[0].clone();
        c.k[2] = c.k[0].clone();
        c.v[2] = c.v[0].clone();
        st.append(1, &c, 0).unwrap();
        // 2 blocks × 2 tokens × 5 hidden × 3 layers × (K+V) × 4 bytes.
        assert_eq!(st.resident_bytes(), (2 * 2 * 5 * 3 * 2 * 4) as u64);
    }
}
