//! Live plan migration: epoch-numbered two-phase plan swap with KV
//! handoff (ROADMAP item 2 — precision and partition as *runtime*
//! dimensions).
//!
//! The master proposes a new [`ExecutionPlan`] (different bitwidths
//! and/or layer ranges) over `PlanPropose`; every worker *prepares* the
//! target (requantizes its new shard through the on-the-fly loader)
//! while the old plan keeps serving, and answers `PlanReady`. At a token
//! boundary — the pipeline is empty between lock-step decode steps — the
//! master sends `PlanCommit`: workers move the KV rows of re-homed
//! layers over the existing transport as bit-exact [`KvChunkMsg`]
//! frames, install the prepared weights, and answer a second
//! `PlanReady` (swapped). Any failure or timeout *before* commit aborts
//! back to the old plan via `PlanAbort` with nothing destroyed; once
//! commit is sent the target plan is authoritative, so a mid-commit
//! crash is recovered by restarting *on the target plan* from the
//! lock-step checkpoint (re-prefill needs no KV transfer). Either way a
//! wedge is impossible: every path ends in "old plan serving", "new
//! plan serving", or a typed error after bounded restarts.
//!
//! Epoch rules: the run starts in epoch 0; each swap proposal carries
//! `active_epoch + 1`. A `PlanCommit` for anything other than the
//! prepared epoch is refused with a typed abort (stale-epoch
//! rejection); duplicated commits for the already-active epoch are
//! ignored. Work items are epoch-tagged so a post-swap worker drops
//! stragglers from the previous epoch instead of appending them to the
//! wrong KV cache.
//!
//! [`ProgressiveSchedule`] drives per-position bitwidth drops through
//! the same swap path — the *Progressive Mixed-Precision Decoding*
//! observation that later decode steps tolerate lower precision —
//! scored by ω via [`IndicatorTable::total`].

use crate::engine::{
    checkpoint_lockstep, load_all_stages, run_attempt, validate_inputs, AttemptSupervision,
    RuntimeError, RuntimeOutput,
};
use crate::fault::{FaultInjector, FaultPlan, Heartbeats};
use crate::telemetry::Telemetry;
use crate::worker::{MetricsSink, StageMetrics};
use llm_pq::ExecutionPlan;
use llmpq_model::{Matrix, RefModel};
use llmpq_quant::{Bitwidth, IndicatorTable, Rounding};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// Maximum KV rows per [`KvChunkMsg`] — keeps every chunk well under the
/// frame-size cap and exercises reassembly across fragmentation.
pub const KV_CHUNK_ROWS: usize = 16;

/// One requested live swap: at the boundary before generating token
/// index `at_token` (0-based, so `at_token ≥ 1` — token 0 comes out of
/// the prefill under the old plan), atomically switch to `plan`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapRequest {
    /// Token boundary of the swap (commit happens when every sequence
    /// has exactly this many generated tokens).
    pub at_token: usize,
    /// The target plan. Must keep the stage count and cover the same
    /// layers as the running plan.
    pub plan: ExecutionPlan,
}

/// What happened to one scheduled swap.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwapReport {
    /// Epoch the swap ran as.
    pub epoch: u64,
    /// Token boundary it fired at.
    pub at_token: usize,
    /// Whether the swap committed (false = aborted back to the old
    /// plan).
    pub committed: bool,
    /// Abort reason, when not committed.
    pub reason: Option<String>,
    /// Commit-window latency: `PlanCommit` sent → last `PlanReady`
    /// (swapped) received, microseconds. 0 for aborted swaps.
    pub latency_us: u64,
    /// KV bytes shipped between stages during the commit window.
    pub kv_bytes: u64,
}

/// Everything a stage worker needs to *prepare* a proposed plan: the
/// full checkpoint (workers requantize their new shard locally through
/// the on-the-fly loader) and the quantizer settings of the run.
#[derive(Debug, Clone)]
pub struct MigrationHost {
    /// The full-precision checkpoint.
    pub checkpoint: RefModel,
    /// Rounding mode of the run (must match the master's).
    pub rounding: Rounding,
    /// Quantizer seed of the run.
    pub seed: u64,
    /// Safety-net deadline for the worker's commit window (the usual
    /// exit path on failure is upstream disconnect, not this timer).
    pub commit_timeout: Duration,
}

impl MigrationHost {
    /// Host with the default commit-window safety timeout.
    pub fn new(checkpoint: RefModel, rounding: Rounding, seed: u64) -> Self {
        Self { checkpoint, rounding, seed, commit_timeout: Duration::from_secs(30) }
    }
}

/// One fragment of a `(sequence, layer)` KV slice in flight between
/// stages. K and V rows travel as raw IEEE-754 bit patterns (the wire
/// codec serializes matrices with `to_le_bytes`), so reassembly is
/// bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct KvChunkMsg {
    /// Epoch of the swap this chunk belongs to.
    pub epoch: u64,
    /// Sequence id of the slice.
    pub seq: u32,
    /// Global layer index of the slice.
    pub layer: u32,
    /// Fragment index, `0..n_chunks`.
    pub chunk: u32,
    /// Total fragments of this `(seq, layer)` slice.
    pub n_chunks: u32,
    /// Total cached rows of the slice (validated on completion).
    pub rows_total: u32,
    /// Key rows of this fragment.
    pub k: Matrix,
    /// Value rows of this fragment.
    pub v: Matrix,
}

/// Split one `(seq, layer)` KV slice into [`KV_CHUNK_ROWS`]-row
/// fragments. An empty cache still yields one (empty) chunk so the
/// receiver can complete the slice.
pub fn kv_to_chunks(epoch: u64, seq: u32, layer: u32, k: &Matrix, v: &Matrix) -> Vec<KvChunkMsg> {
    debug_assert_eq!(k.rows, v.rows);
    let rows = k.rows;
    let n_chunks = rows.div_ceil(KV_CHUNK_ROWS).max(1);
    let slice_rows = |m: &Matrix, lo: usize, hi: usize| Matrix {
        rows: hi - lo,
        cols: m.cols,
        data: m.data[lo * m.cols..hi * m.cols].to_vec(),
    };
    (0..n_chunks)
        .map(|c| {
            let lo = c * KV_CHUNK_ROWS;
            let hi = ((c + 1) * KV_CHUNK_ROWS).min(rows);
            KvChunkMsg {
                epoch,
                seq,
                layer,
                chunk: c as u32,
                n_chunks: n_chunks as u32,
                rows_total: rows as u32,
                k: slice_rows(k, lo, hi),
                v: slice_rows(v, lo, hi),
            }
        })
        .collect()
}

/// Per-slice reassembly state.
struct PartialSlice {
    n_chunks: u32,
    k: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

/// Reassembles [`KvChunkMsg`] fragments into complete `(seq, layer)` KV
/// slices, deduplicating repeated fragments (the transports may
/// duplicate frames under fault injection) and validating shape
/// consistency.
pub struct KvAssembler {
    epoch: u64,
    pending: BTreeMap<(u32, u32), PartialSlice>,
    completed: BTreeSet<(u32, u32)>,
    outstanding: usize,
}

impl KvAssembler {
    /// Assembler for `epoch` expecting one complete slice per
    /// `(seq, layer)` pair in `expected`.
    pub fn new(epoch: u64, expected: &[(u32, u32)]) -> Self {
        Self {
            epoch,
            pending: BTreeMap::new(),
            completed: BTreeSet::new(),
            outstanding: expected.len(),
        }
    }

    /// Whether every expected slice has been fully assembled.
    pub fn done(&self) -> bool {
        self.outstanding == 0
    }

    /// Feed one fragment. Returns the completed `(seq, layer, k, v)`
    /// slice when this fragment finishes it, `None` while incomplete or
    /// on a duplicate, and an error on any inconsistency (wrong epoch,
    /// fragment index out of range, shape disagreement).
    #[allow(clippy::type_complexity)]
    pub fn push(&mut self, c: KvChunkMsg) -> Result<Option<(u32, u32, Matrix, Matrix)>, String> {
        if c.epoch != self.epoch {
            return Err(format!("kv chunk for epoch {} in swap epoch {}", c.epoch, self.epoch));
        }
        if c.n_chunks == 0 || c.chunk >= c.n_chunks {
            return Err(format!("kv chunk {}/{} out of range", c.chunk, c.n_chunks));
        }
        if c.k.rows != c.v.rows || c.k.cols != c.v.cols {
            return Err("kv chunk k/v shape mismatch".into());
        }
        let key = (c.seq, c.layer);
        if self.completed.contains(&key) {
            // A fragment duplicated by the transport can arrive after
            // its slice already assembled; re-opening the slice here
            // would hand the caller the same KV twice.
            return Ok(None);
        }
        let slot = self.pending.entry(key).or_insert_with(|| PartialSlice {
            n_chunks: c.n_chunks,
            k: vec![None; c.n_chunks as usize],
            v: vec![None; c.n_chunks as usize],
        });
        if slot.n_chunks != c.n_chunks {
            return Err(format!(
                "kv chunk count disagreement for seq {} layer {}: {} vs {}",
                c.seq, c.layer, slot.n_chunks, c.n_chunks
            ));
        }
        let i = c.chunk as usize;
        if slot.k[i].is_some() {
            return Ok(None); // duplicated fragment
        }
        let rows_total = c.rows_total;
        slot.k[i] = Some(c.k);
        slot.v[i] = Some(c.v);
        if slot.k.iter().any(Option::is_none) {
            return Ok(None);
        }
        let slot = self.pending.remove(&key).expect("slice present");
        let glue = |parts: Vec<Option<Matrix>>| -> Matrix {
            let mut it = parts.into_iter().flatten();
            let mut out = it.next().expect("n_chunks >= 1");
            for p in it {
                out.data.extend_from_slice(&p.data);
                out.rows += p.rows;
            }
            out
        };
        let k = glue(slot.k);
        let v = glue(slot.v);
        if k.rows as u32 != rows_total {
            return Err(format!(
                "kv slice seq {} layer {}: reassembled {} rows, sender declared {}",
                key.0, key.1, k.rows, rows_total
            ));
        }
        self.completed.insert(key);
        self.outstanding = self.outstanding.saturating_sub(1);
        Ok(Some((key.0, key.1, k, v)))
    }
}

/// A worker's view of the swap protocol, factored out of the worker
/// loop so the epoch rules are unit-testable without a pipeline.
#[derive(Debug)]
pub struct WorkerSwap {
    /// Epoch currently serving.
    pub active_epoch: u64,
    /// Prepared-but-uncommitted target, if any.
    pub prepared: Option<PreparedPlan>,
}

/// A prepared (requantized, not yet installed) target plan shard.
#[derive(Debug)]
pub struct PreparedPlan {
    /// Epoch of the proposal.
    pub epoch: u64,
    /// First global layer of the target shard.
    pub layer_start: usize,
    /// One past the last global layer of the target shard.
    pub layer_end: usize,
    /// The requantized shard weights.
    pub weights: Vec<llmpq_model::LayerWeights>,
    /// The full target plan (for routing leaving KV slices).
    pub plan: ExecutionPlan,
}

/// What a worker must do with an incoming `PlanCommit`.
#[derive(Debug, PartialEq, Eq)]
pub enum CommitDecision {
    /// The prepared epoch matches: execute the swap.
    Swap,
    /// Duplicate commit for the already-active epoch: drop it.
    Ignore,
    /// Stale or unknown epoch: refuse with a typed `PlanAbort` carrying
    /// this reason.
    Abort(String),
}

impl WorkerSwap {
    /// Fresh state serving epoch 0.
    pub fn new() -> Self {
        Self { active_epoch: 0, prepared: None }
    }

    /// Handle a `PlanPropose`: requantize this stage's target shard
    /// through the on-the-fly loader. Returns `Ok(true)` when a
    /// `PlanReady` (prepared) should be sent, `Ok(false)` for an
    /// ignorable duplicate, `Err(reason)` when the proposal must be
    /// answered with `PlanAbort`.
    pub fn on_propose(
        &mut self,
        host: &MigrationHost,
        stage: usize,
        epoch: u64,
        plan_json: &str,
    ) -> Result<bool, String> {
        if epoch <= self.active_epoch {
            return Ok(false); // stale re-delivery of an older epoch
        }
        if self.prepared.as_ref().is_some_and(|p| p.epoch == epoch) {
            return Ok(false); // duplicated proposal, already prepared
        }
        let plan = ExecutionPlan::from_json(plan_json)
            .map_err(|e| format!("stage {stage}: bad proposed plan: {e}"))?;
        plan.validate(host.checkpoint.cfg.n_layers)
            .map_err(|e| format!("stage {stage}: proposed plan invalid: {e}"))?;
        let Some(sp) = plan.stages.get(stage) else {
            return Err(format!("stage {stage}: proposed plan has only {} stages", plan.stages.len()));
        };
        let (weights, _) = crate::loader::load_stage_weights(
            &host.checkpoint,
            sp.layer_start,
            &sp.bits,
            host.rounding,
            host.seed,
        );
        self.prepared = Some(PreparedPlan {
            epoch,
            layer_start: sp.layer_start,
            layer_end: sp.layer_end,
            weights,
            plan,
        });
        Ok(true)
    }

    /// Epoch rule for an incoming `PlanCommit`.
    pub fn decide_commit(&self, epoch: u64) -> CommitDecision {
        if epoch <= self.active_epoch {
            return CommitDecision::Ignore;
        }
        match &self.prepared {
            Some(p) if p.epoch == epoch => CommitDecision::Swap,
            Some(p) => CommitDecision::Abort(format!(
                "commit for epoch {epoch} but epoch {} is prepared",
                p.epoch
            )),
            None => CommitDecision::Abort(format!("commit for unprepared epoch {epoch}")),
        }
    }

    /// Handle a `PlanAbort`: discard matching prepared state. The old
    /// plan keeps serving untouched.
    pub fn on_abort(&mut self, epoch: u64) {
        if self.prepared.as_ref().is_some_and(|p| p.epoch == epoch) {
            self.prepared = None;
        }
    }
}

impl Default for WorkerSwap {
    fn default() -> Self {
        Self::new()
    }
}

/// A pending proposal on the master side.
#[derive(Debug)]
pub(crate) struct PendingSwap {
    pub(crate) epoch: u64,
    /// Index into the coordinator's schedule.
    pub(crate) idx: usize,
    /// Per-stage `PlanReady` (prepared) flags — flags, not a counter, so
    /// duplicated frames cannot trip the barrier early.
    pub(crate) prepared: Vec<bool>,
    /// Per-stage `PlanReady` (swapped) flags.
    pub(crate) swapped: Vec<bool>,
    /// Whether `PlanCommit` went out — the point of no return: from here
    /// the target plan is authoritative.
    pub(crate) commit_sent: bool,
    /// An abort reported by a worker before commit.
    pub(crate) abort: Option<String>,
    /// KV bytes forwarded during the commit window.
    pub(crate) kv_bytes: u64,
    /// Commit-send timestamp (µs on the run's clock).
    pub(crate) commit_at_us: u64,
}

/// Master-side swap state, shared across supervised attempts so a
/// mid-migration crash restarts on the correct (authoritative) plan.
#[derive(Debug)]
pub struct MigrationCoordinator {
    /// Scheduled swaps, ascending `at_token`.
    pub schedule: Vec<SwapRequest>,
    /// Index of the next swap not yet resolved.
    pub next: usize,
    /// Epoch currently serving.
    pub active_epoch: u64,
    pub(crate) pending: Option<PendingSwap>,
    /// Resolved swaps, in order.
    pub reports: Vec<SwapReport>,
    /// The last committed target plan — authoritative for restarts.
    pub committed_plan: Option<ExecutionPlan>,
    /// How long the master waits at the boundary for every stage's
    /// prepared `PlanReady` before aborting back to the old plan.
    pub prepare_timeout: Duration,
    /// Commit-window deadline; expiring it fails the attempt (the
    /// supervisor then restarts on the target plan).
    pub commit_timeout: Duration,
    /// Stage count of the pipeline.
    pub n_stages: usize,
    /// Epochs whose abort was already rebroadcast (the master is the
    /// ring's sink: worker aborts circulate to it exactly once and it
    /// re-emits them downstream exactly once).
    pub(crate) abort_broadcast: Vec<u64>,
}

impl MigrationCoordinator {
    /// Coordinator over `schedule` for an `n_stages` pipeline.
    pub fn new(schedule: Vec<SwapRequest>, n_stages: usize) -> Self {
        let mut schedule = schedule;
        schedule.sort_by_key(|s| s.at_token);
        Self {
            schedule,
            next: 0,
            active_epoch: 0,
            pending: None,
            reports: Vec::new(),
            committed_plan: None,
            prepare_timeout: Duration::from_secs(10),
            commit_timeout: Duration::from_secs(10),
            n_stages,
            abort_broadcast: Vec::new(),
        }
    }

    /// The plan an attempt must run: the last committed target if any,
    /// else `base`.
    pub fn attempt_plan<'a>(&'a self, base: &'a ExecutionPlan) -> &'a ExecutionPlan {
        self.committed_plan.as_ref().unwrap_or(base)
    }

    /// Reset per-attempt transient state. A proposal that never reached
    /// commit is retried from scratch (the workers' prepared state died
    /// with the attempt); a committed-but-unfinished swap is resolved as
    /// committed — the restart loads the target plan directly, so the
    /// swap completes via re-prefill rather than KV handoff.
    pub fn begin_attempt(&mut self) {
        if let Some(p) = self.pending.take() {
            if p.commit_sent {
                self.resolve_committed(p, 0);
            }
            // else: retry the proposal next boundary.
        }
    }

    /// Whether a swap boundary is due at `done` generated tokens.
    pub fn swap_due(&self, done: usize) -> bool {
        self.pending.is_none()
            && self.next < self.schedule.len()
            && done >= self.schedule[self.next].at_token
    }

    /// Open the next proposal (if none is pending and one is scheduled),
    /// returning `(epoch, plan_json)` to send as `PlanPropose`.
    pub fn open_proposal(&mut self) -> Option<(u64, String)> {
        if self.pending.is_some() || self.next >= self.schedule.len() {
            return None;
        }
        let epoch = self.active_epoch + 1;
        let json = self.schedule[self.next].plan.to_json();
        self.pending = Some(PendingSwap {
            epoch,
            idx: self.next,
            prepared: vec![false; self.n_stages],
            swapped: vec![false; self.n_stages],
            commit_sent: false,
            abort: None,
            kv_bytes: 0,
            commit_at_us: 0,
        });
        Some((epoch, json))
    }

    /// Record a `PlanReady`.
    pub fn on_ready(&mut self, epoch: u64, stage: u32, swapped: bool) {
        if let Some(p) = &mut self.pending {
            if p.epoch == epoch && (stage as usize) < p.prepared.len() {
                if swapped {
                    p.swapped[stage as usize] = true;
                } else {
                    p.prepared[stage as usize] = true;
                }
            }
        }
    }

    /// Record a worker `PlanAbort`. Returns `true` when this abort kills
    /// a *committed* swap — the attempt must fail (and restart on the
    /// target plan); pre-commit aborts just cancel the proposal.
    #[must_use]
    pub fn on_worker_abort(&mut self, epoch: u64, reason: &str) -> bool {
        match &mut self.pending {
            Some(p) if p.epoch == epoch => {
                if p.commit_sent {
                    return true;
                }
                p.abort = Some(reason.to_string());
                false
            }
            _ => false,
        }
    }

    /// Whether the pending proposal was aborted by a worker.
    pub fn pending_abort(&self) -> Option<String> {
        self.pending.as_ref().and_then(|p| p.abort.clone())
    }

    /// Whether every stage sent its prepared `PlanReady`.
    pub fn all_prepared(&self) -> bool {
        self.pending.as_ref().is_some_and(|p| p.prepared.iter().all(|&b| b))
    }

    /// Whether every stage sent its swapped `PlanReady`.
    pub fn all_swapped(&self) -> bool {
        self.pending.as_ref().is_some_and(|p| p.swapped.iter().all(|&b| b))
    }

    /// Mark the point of no return (`PlanCommit` sent at `now_us`).
    pub fn mark_commit_sent(&mut self, now_us: u64) {
        if let Some(p) = &mut self.pending {
            p.commit_sent = true;
            p.commit_at_us = now_us;
        }
    }

    /// Whether the pending swap has passed the point of no return.
    pub fn commit_sent(&self) -> bool {
        self.pending.as_ref().is_some_and(|p| p.commit_sent)
    }

    /// Account KV bytes forwarded through the master during the commit
    /// window.
    pub fn add_kv_bytes(&mut self, n: u64) {
        if let Some(p) = &mut self.pending {
            p.kv_bytes += n;
        }
    }

    /// Close a committed swap: the target plan becomes active (and
    /// authoritative for any later restart).
    pub fn finish_commit(&mut self, now_us: u64) -> Option<&SwapReport> {
        let p = self.pending.take()?;
        let latency = now_us.saturating_sub(p.commit_at_us);
        self.resolve_committed(p, latency);
        self.reports.last()
    }

    fn resolve_committed(&mut self, p: PendingSwap, latency_us: u64) {
        let req = &self.schedule[p.idx];
        self.reports.push(SwapReport {
            epoch: p.epoch,
            at_token: req.at_token,
            committed: true,
            reason: None,
            latency_us,
            kv_bytes: p.kv_bytes,
        });
        self.committed_plan = Some(req.plan.clone());
        self.active_epoch = p.epoch;
        self.next = p.idx + 1;
    }

    /// Abort the pending proposal back to the old plan (records the
    /// report; the caller broadcasts `PlanAbort`). Returns the epoch to
    /// broadcast.
    pub fn abort_pending(&mut self, reason: &str) -> Option<u64> {
        let p = self.pending.take()?;
        self.reports.push(SwapReport {
            epoch: p.epoch,
            at_token: self.schedule[p.idx].at_token,
            committed: false,
            reason: Some(reason.to_string()),
            latency_us: 0,
            kv_bytes: 0,
        });
        self.next = p.idx + 1;
        Some(p.epoch)
    }

    /// Whether an abort for `epoch` was already rebroadcast (ring
    /// dedup).
    pub fn abort_seen(&mut self, epoch: u64) -> bool {
        if self.abort_broadcast.contains(&epoch) {
            return true;
        }
        self.abort_broadcast.push(epoch);
        false
    }
}

// --- oracles ------------------------------------------------------------

fn argmax(logits: &[f32]) -> usize {
    logits.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(i, _)| i)
}

/// Greedy generation under a *piecewise* model schedule, on one shared
/// KV cache: `segments` is an ascending list of `(from_token, model)` —
/// token index `t` is produced by the model of the segment containing
/// `t` (the first segment must start at 0 and produces the prefill).
///
/// This is the oracle for a committed live swap: a bitwidth swap keeps
/// the old-precision KV bit-exact (only weights change), and a
/// repartition moves KV rows bit-exactly, so the pipeline after a swap
/// behaves exactly like *continuing decode with the new model on the
/// old cache*.
///
/// `resume_at = Some(r)` models a post-commit restart at the lock-step
/// checkpoint `r`: from there the supervisor re-prefills under the
/// then-active model, so the remaining tail is that model's plain
/// greedy continuation of `prompt ++ tokens[..r]`.
pub fn hybrid_oracle_tokens(
    segments: &[(usize, &RefModel)],
    prompt: &[usize],
    n_generate: usize,
    resume_at: Option<usize>,
) -> Vec<usize> {
    assert!(!segments.is_empty() && segments[0].0 == 0, "first segment must start at token 0");
    let model_for =
        |t: usize| segments.iter().rev().find(|(s, _)| *s <= t).expect("segment for token").1;
    let (logits, mut cache) = segments[0].1.prefill(prompt);
    let mut out = vec![argmax(logits.row(logits.rows - 1))];
    while out.len() < n_generate {
        let t = out.len();
        if resume_at == Some(t) {
            let mut full = prompt.to_vec();
            full.extend_from_slice(&out);
            out.extend(model_for(t).generate(&full, n_generate - t, 0.0, 0).tokens);
            break;
        }
        let logits = model_for(t).decode_step(*out.last().expect("nonempty"), &mut cache);
        out.push(argmax(&logits));
    }
    out
}

/// Single-swap convenience over [`hybrid_oracle_tokens`]: tokens
/// `0..swap_at` under `old`, the rest under `new`.
pub fn swap_oracle_tokens(
    old: &RefModel,
    new: &RefModel,
    prompt: &[usize],
    swap_at: usize,
    resume_at: Option<usize>,
    n_generate: usize,
) -> Vec<usize> {
    hybrid_oracle_tokens(&[(0, old), (swap_at, new)], prompt, n_generate, resume_at)
}

// --- progressive schedule -----------------------------------------------

/// A per-position precision policy: from token `at_token` on, serve with
/// `bits` (one entry per global layer). Partition is kept; only
/// precision drops — the *Progressive Mixed-Precision Decoding* shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveStep {
    /// First token index served at this precision.
    pub at_token: usize,
    /// Per-layer bitwidths from that point on.
    pub bits: Vec<Bitwidth>,
}

/// An ordered list of per-position bitwidth drops driven through the
/// live-swap path, plus an ω-based quality score so policies can be
/// compared before being deployed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgressiveSchedule {
    /// Precision steps, ascending `at_token` (token 0 up to the first
    /// step runs the base plan's precision).
    pub steps: Vec<ProgressiveStep>,
}

impl ProgressiveSchedule {
    /// Uniform-precision drops: at each `(at_token, bits)`, every layer
    /// moves to `bits`.
    pub fn uniform(n_layers: usize, drops: &[(usize, Bitwidth)]) -> Self {
        let mut steps: Vec<ProgressiveStep> = drops
            .iter()
            .map(|&(at_token, b)| ProgressiveStep { at_token, bits: vec![b; n_layers] })
            .collect();
        steps.sort_by_key(|s| s.at_token);
        Self { steps }
    }

    /// Materialize the schedule as [`SwapRequest`]s against `base`:
    /// each step keeps the base partition and microbatching and swaps
    /// only per-layer precision.
    pub fn swaps(&self, base: &ExecutionPlan) -> Vec<SwapRequest> {
        self.steps
            .iter()
            .map(|step| {
                let mut plan = base.clone();
                for s in &mut plan.stages {
                    s.bits = step.bits[s.layer_start..s.layer_end].to_vec();
                }
                SwapRequest { at_token: step.at_token, plan }
            })
            .collect()
    }

    /// ω-weighted quality cost of serving `n_generate` tokens under this
    /// schedule: Σ over segments of (token share) × Σ_layers ω(layer,
    /// bits). Lower is better; dropping precision *later* costs less,
    /// which is the progressive-decoding argument in ω terms.
    pub fn omega_score(
        &self,
        base: &ExecutionPlan,
        table: &IndicatorTable,
        n_generate: usize,
    ) -> f64 {
        if n_generate == 0 {
            return 0.0;
        }
        let base_bits = base.bit_assignment().bits;
        let mut boundaries = vec![(0usize, base_bits)];
        for s in &self.steps {
            boundaries.push((s.at_token.min(n_generate), s.bits.clone()));
        }
        let mut score = 0.0;
        for (i, (from, bits)) in boundaries.iter().enumerate() {
            let until = boundaries.get(i + 1).map_or(n_generate, |(t, _)| *t);
            if until > *from {
                score += (until - from) as f64 / n_generate as f64 * table.total(bits);
            }
        }
        score
    }
}

// --- supervised runner ---------------------------------------------------

/// Output of a supervised run with live swaps.
#[derive(Debug, Clone)]
pub struct MigrationOutput {
    /// The generation output.
    pub output: RuntimeOutput,
    /// Restarts taken.
    pub restarts: usize,
    /// One report per resolved swap, in order.
    pub swaps: Vec<SwapReport>,
    /// The plan serving when the run finished.
    pub final_plan: ExecutionPlan,
}

/// Validate a swap schedule against the base plan: same stage count and
/// layer coverage, `at_token ≥ 1` (token 0 is produced by the prefill
/// under the base plan), ascending boundaries.
pub fn validate_swaps(
    base: &ExecutionPlan,
    swaps: &[SwapRequest],
    n_layers: usize,
) -> Result<(), RuntimeError> {
    let mut last = 0usize;
    for (i, s) in swaps.iter().enumerate() {
        s.plan
            .validate(n_layers)
            .map_err(|e| RuntimeError::BadPlan(format!("swap {i} target: {e}")))?;
        if s.plan.stages.len() != base.stages.len() {
            return Err(RuntimeError::BadPlan(format!(
                "swap {i} target has {} stages, pipeline has {} (live swaps keep the stage count)",
                s.plan.stages.len(),
                base.stages.len()
            )));
        }
        if s.at_token == 0 {
            return Err(RuntimeError::BadPlan(format!("swap {i}: at_token must be ≥ 1")));
        }
        if s.at_token < last {
            return Err(RuntimeError::BadPlan(format!("swap {i}: boundaries must be ascending")));
        }
        last = s.at_token;
    }
    Ok(())
}

/// Execute `plan` under supervision, live-swapping to each scheduled
/// target at its token boundary — precision and/or partition change
/// while requests stay in flight; re-homed KV slices ship between
/// stages as bit-exact chunks at commit. Failures before a commit abort
/// back to the old plan; failures after a commit restart *on the target
/// plan* from the lock-step checkpoint. Tokens are bit-identical to the
/// [`hybrid_oracle_tokens`] oracle of whatever sequence of commits and
/// aborts actually happened.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_with_swap(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    swaps: &[SwapRequest],
    cfg: &crate::supervisor::SupervisorConfig,
    faults: Option<&FaultPlan>,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<MigrationOutput, RuntimeError> {
    validate_inputs(checkpoint, plan, prompts, n_generate, faults)?;
    validate_swaps(plan, swaps, checkpoint.cfg.n_layers)?;
    let clock = crate::clock::real_clock();
    let start = clock.now();
    let injector = faults.map(FaultInjector::new);
    let host = Arc::new(MigrationHost::new(checkpoint.clone(), rounding, seed));
    let mut coord = MigrationCoordinator::new(swaps.to_vec(), plan.stages.len());
    coord.prepare_timeout = Duration::from_millis(cfg.progress_timeout_ms);
    coord.commit_timeout = Duration::from_millis(cfg.progress_timeout_ms);
    let mut tokens: Vec<Vec<usize>> = vec![Vec::with_capacity(n_generate); prompts.len()];
    let sink: MetricsSink =
        Arc::new(parking_lot::Mutex::new(vec![StageMetrics::default(); plan.stages.len()]));
    let mut restarts = 0usize;
    let mut attempt = 0usize;
    loop {
        if let Some(inj) = &injector {
            inj.begin_attempt(attempt);
        }
        coord.begin_attempt();
        let current_plan = coord.attempt_plan(plan).clone();
        let (stage_weights, loader_stats) = load_all_stages(checkpoint, &current_plan, rounding, seed);
        let sup = AttemptSupervision {
            injector: injector.clone(),
            heartbeats: Some(Heartbeats::with_clock(current_plan.stages.len(), clock.clone())),
            heartbeat_timeout: Some(Duration::from_millis(cfg.heartbeat_timeout_ms)),
            progress_timeout: Some(Duration::from_millis(cfg.progress_timeout_ms)),
            tick: Some(Duration::from_millis(cfg.tick_ms.max(1))),
            telemetry: telemetry.clone(),
            queue_cap: cfg.max_queue,
            clock: clock.clone(),
            migration_host: Some(host.clone()),
        };
        let res = run_attempt(
            checkpoint,
            &current_plan,
            prompts,
            &mut tokens,
            n_generate,
            &stage_weights,
            &sup,
            &sink,
            Some(&mut coord),
        );
        match res {
            Ok(()) => {
                // A swap that committed in the final decode steps may
                // still be pending resolution bookkeeping.
                coord.begin_attempt();
                let stage_metrics = sink.lock().clone();
                let final_plan = coord.attempt_plan(plan).clone();
                return Ok(MigrationOutput {
                    output: RuntimeOutput {
                        tokens,
                        loader_stats,
                        wall_s: clock.now().saturating_sub(start).as_secs_f64(),
                        stage_metrics,
                    },
                    restarts,
                    swaps: coord.reports,
                    final_plan,
                });
            }
            Err(e) => {
                if restarts >= cfg.max_restarts {
                    return Err(e);
                }
                checkpoint_lockstep(&mut tokens);
                if let Some(t) = &telemetry {
                    t.note_restart(None);
                }
                clock.sleep(cfg.backoff(restarts));
                restarts += 1;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::RefConfig;
    use llmpq_quant::{quantize_model, BitAssignment};

    #[test]
    fn kv_chunks_round_trip_across_fragmentation() {
        let rows = KV_CHUNK_ROWS * 2 + 3; // forces 3 fragments
        let cols = 4;
        let mk = |salt: u32| Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|i| (i as f32 + salt as f32) * 0.5 - 7.0).collect(),
        };
        let (k, v) = (mk(1), mk(2));
        let chunks = kv_to_chunks(3, 1, 5, &k, &v);
        assert_eq!(chunks.len(), 3);
        let mut asm = KvAssembler::new(3, &[(1, 5)]);
        let mut got = None;
        // Deliver out of order with a duplicate.
        for c in [chunks[2].clone(), chunks[0].clone(), chunks[0].clone(), chunks[1].clone()] {
            if let Some(done) = asm.push(c).expect("consistent chunks") {
                got = Some(done);
            }
        }
        let (seq, layer, k2, v2) = got.expect("slice completes");
        assert!(asm.done());
        assert_eq!((seq, layer), (1, 5));
        let bits = |m: &Matrix| m.data.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&k), bits(&k2), "bit-exact K");
        assert_eq!(bits(&v), bits(&v2), "bit-exact V");
    }

    #[test]
    fn empty_cache_ships_as_one_chunk() {
        let m = Matrix::zeros(0, 4);
        let chunks = kv_to_chunks(1, 0, 0, &m, &m);
        assert_eq!(chunks.len(), 1);
        let mut asm = KvAssembler::new(1, &[(0, 0)]);
        let done = asm.push(chunks[0].clone()).unwrap().expect("completes");
        assert_eq!(done.2.rows, 0);
        assert!(asm.done());
    }

    #[test]
    fn assembler_rejects_inconsistent_chunks() {
        let m = Matrix::zeros(2, 4);
        let mut c = kv_to_chunks(1, 0, 0, &m, &m).remove(0);
        let mut asm = KvAssembler::new(2, &[(0, 0)]);
        assert!(asm.push(c.clone()).is_err(), "wrong epoch");
        let mut asm = KvAssembler::new(1, &[(0, 0)]);
        c.chunk = 9;
        assert!(asm.push(c.clone()).is_err(), "fragment out of range");
        c.chunk = 0;
        c.rows_total = 99;
        assert!(asm.push(c).is_err(), "declared rows mismatch");
    }

    #[test]
    fn stale_epoch_commit_is_refused_with_typed_abort() {
        let mut ws = WorkerSwap::new();
        // Nothing prepared: any future-epoch commit is refused.
        assert!(matches!(ws.decide_commit(1), CommitDecision::Abort(_)));
        // A commit at or below the active epoch is a duplicate, not an
        // error.
        assert_eq!(ws.decide_commit(0), CommitDecision::Ignore);
        ws.active_epoch = 4;
        assert_eq!(ws.decide_commit(3), CommitDecision::Ignore);
        // Prepared epoch 5, commit for 6: typed refusal.
        ws.prepared = Some(PreparedPlan {
            epoch: 5,
            layer_start: 0,
            layer_end: 1,
            weights: Vec::new(),
            plan: ExecutionPlan {
                model: "t".into(),
                cluster: "c".into(),
                stages: Vec::new(),
                microbatch: llmpq_workload::MicrobatchPlan {
                    prefill_size: 1,
                    prefill_count: 1,
                    decode_size: 1,
                    decode_count: 1,
                },
                scheme: "LLM-PQ".into(),
                kv_bits: 16,
            },
        });
        assert!(matches!(ws.decide_commit(6), CommitDecision::Abort(_)));
        assert_eq!(ws.decide_commit(5), CommitDecision::Swap);
        // Abort discards the prepared plan; the old epoch keeps serving.
        ws.on_abort(5);
        assert!(ws.prepared.is_none());
        assert!(matches!(ws.decide_commit(5), CommitDecision::Abort(_)));
    }

    #[test]
    fn coordinator_ready_flags_resist_duplicates() {
        let plan = ExecutionPlan {
            model: "t".into(),
            cluster: "c".into(),
            stages: vec![llm_pq::StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: 2,
                bits: vec![Bitwidth::Int8, Bitwidth::Int8],
            }],
            microbatch: llmpq_workload::MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        let mut c =
            MigrationCoordinator::new(vec![SwapRequest { at_token: 2, plan: plan.clone() }], 2);
        assert!(!c.swap_due(1));
        assert!(c.swap_due(2));
        let (epoch, _) = c.open_proposal().expect("proposal opens");
        assert_eq!(epoch, 1);
        c.on_ready(epoch, 0, false);
        c.on_ready(epoch, 0, false); // duplicated frame
        assert!(!c.all_prepared(), "one stage ready twice is not two stages ready");
        c.on_ready(epoch, 1, false);
        assert!(c.all_prepared());
        c.mark_commit_sent(100);
        c.on_ready(epoch, 0, true);
        c.on_ready(epoch, 1, true);
        assert!(c.all_swapped());
        let r = c.finish_commit(350).expect("commit resolves").clone();
        assert!(r.committed);
        assert_eq!(r.latency_us, 250);
        assert_eq!(c.active_epoch, 1);
        assert_eq!(c.attempt_plan(&plan), &plan);
    }

    #[test]
    fn pre_commit_crash_retries_and_post_commit_crash_keeps_target() {
        let plan_a = ExecutionPlan {
            model: "t".into(),
            cluster: "c".into(),
            stages: vec![llm_pq::StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: 1,
                bits: vec![Bitwidth::Fp16],
            }],
            microbatch: llmpq_workload::MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        let mut plan_b = plan_a.clone();
        plan_b.stages[0].bits = vec![Bitwidth::Int4];
        let mut c =
            MigrationCoordinator::new(vec![SwapRequest { at_token: 1, plan: plan_b.clone() }], 1);
        c.open_proposal().unwrap();
        // Crash before commit: the proposal is dropped and retried.
        c.begin_attempt();
        assert!(c.committed_plan.is_none());
        assert_eq!(c.attempt_plan(&plan_a), &plan_a);
        assert!(c.swap_due(1), "swap still pending after a pre-commit crash");
        // Crash after commit: the target is authoritative.
        c.open_proposal().unwrap();
        c.mark_commit_sent(10);
        c.begin_attempt();
        assert_eq!(c.attempt_plan(&plan_a), &plan_b);
        assert!(c.reports.last().is_some_and(|r| r.committed));
        assert!(!c.swap_due(5), "a committed swap is not retried");
    }

    #[test]
    fn progressive_schedule_scores_later_drops_cheaper() {
        let n_layers = 4;
        let table = llmpq_quant::random_indicator(n_layers, 7, 1.0);
        let base = ExecutionPlan {
            model: "t".into(),
            cluster: "c".into(),
            stages: vec![llm_pq::StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: n_layers,
                bits: vec![Bitwidth::Fp16; n_layers],
            }],
            microbatch: llmpq_workload::MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        let early = ProgressiveSchedule::uniform(n_layers, &[(2, Bitwidth::Int4)]);
        let late = ProgressiveSchedule::uniform(n_layers, &[(8, Bitwidth::Int4)]);
        let n = 10;
        let s_early = early.omega_score(&base, &table, n);
        let s_late = late.omega_score(&base, &table, n);
        assert!(
            s_late < s_early,
            "dropping precision later must cost less ω ({s_late} vs {s_early})"
        );
        // Schedules materialize as swaps against the base partition.
        let swaps = late.swaps(&base);
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].at_token, 8);
        assert_eq!(swaps[0].plan.stages[0].bits, vec![Bitwidth::Int4; n_layers]);
        validate_swaps(&base, &swaps, n_layers).expect("progressive swaps are valid");
    }

    #[test]
    fn hybrid_oracle_degenerates_to_plain_generation() {
        let m = RefModel::new(RefConfig::tiny());
        let q = quantize_model(
            &m,
            &BitAssignment { bits: vec![Bitwidth::Int8, Bitwidth::Int8] },
            Rounding::Deterministic,
            0,
        );
        let prompt = vec![1, 2, 3];
        let plain = q.generate(&prompt, 6, 0.0, 0).tokens;
        // One segment: identical to plain greedy generation.
        assert_eq!(hybrid_oracle_tokens(&[(0, &q)], &prompt, 6, None), plain);
        // Same model on both sides of a swap: still identical.
        assert_eq!(swap_oracle_tokens(&q, &q, &prompt, 3, None, 6), plain);
        // Resume under the same model: still identical (re-prefill is
        // bit-equivalent to continuing the cache).
        assert_eq!(swap_oracle_tokens(&q, &q, &prompt, 3, Some(4), 6), plain);
    }
}
