//! # Wire transport: the multi-process pipeline
//!
//! Everything needed to run the pipeline as one OS process per stage
//! plus a master, over plain TCP (`std::net` only — loopback-friendly,
//! no external dependencies):
//!
//! * [`frame`] — length-prefixed, CRC-32-checksummed framing: every
//!   wire message travels as `magic | len | crc | payload`;
//! * [`wire`] — the versioned binary message codec (hellos, topology,
//!   work items, heartbeats, reports), little-endian and bit-exact for
//!   `f32` activations so distributed tokens match in-process tokens;
//! * [`transport`] — the [`transport::Transport`] trait the engine and
//!   workers are generic over, with an in-process channel
//!   implementation and a TCP implementation (reader pump + framed
//!   writer, optional control-plane heartbeats);
//! * [`fault`] — deterministic transport-level fault injection (delay,
//!   drop, duplicate, corrupt, disconnect) keyed to per-link frame
//!   ordinals;
//! * [`dist`] — the distributed master ([`dist::run_master`]) and stage
//!   server ([`dist::run_stage`]): handshake, topology exchange, data
//!   ring per attempt, supervisor-driven restarts on connection loss,
//!   and end-of-run metric/link-stat reporting.
//!
//! The control plane is a persistent TCP connection per stage to the
//! master's single listener; the data plane is a ring of short-lived
//! connections rebuilt for each attempt, torn down by EOF cascade.

pub mod dist;
pub mod fault;
pub mod frame;
pub mod transport;
pub mod wire;
