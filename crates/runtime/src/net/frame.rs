//! Length-prefixed, checksummed framing over any byte stream.
//!
//! Every message on the wire travels as one frame:
//!
//! ```text
//! +--------+-----------+-----------+---------------------+
//! | magic  | len (u32) | crc (u32) | payload (len bytes) |
//! | "LPQF" |    LE     |    LE     |                     |
//! +--------+-----------+-----------+---------------------+
//! ```
//!
//! The magic word lets a receiver reject a stream that is not speaking
//! the protocol at all (or that lost frame sync); the length prefix is
//! bounded by [`MAX_FRAME_BYTES`] so a corrupt prefix cannot drive an
//! allocation of arbitrary size; the CRC-32 covers the payload so
//! corruption *inside* a frame is detected deterministically rather than
//! surfacing as a garbled activation. All failure modes are typed
//! ([`FrameError`]) — a framing error poisons the connection (TCP
//! guarantees ordering, so there is no way to resynchronize after a bad
//! header) and the caller maps it onto the runtime's disconnect path.
//!
//! Reads use `read_exact`, so partial reads (a frame split across
//! arbitrarily many TCP segments) are reassembled transparently; the
//! property tests drive this with a 1-byte-at-a-time reader.

use std::io::{self, Read, Write};

/// Frame sync word: `"LPQF"` little-endian.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"LPQF");

/// Upper bound on a frame payload. Generously above any activation
/// micro-batch the runtime ships (a 4096-wide hidden state for a
/// 2048-token prefill of 64 sequences is ~2 GiB *per item* only on real
/// models; the stand-in checkpoints are orders of magnitude smaller),
/// while still rejecting a corrupt length prefix immediately.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Bytes of the fixed frame header (magic + len + crc).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed or closed.
    Io(io::Error),
    /// The stream did not start with the frame magic — not our protocol,
    /// or frame sync was lost. Unrecoverable on an ordered stream.
    BadMagic(u32),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] — corrupt or
    /// hostile; rejected before any allocation.
    OversizedFrame(usize),
    /// The payload arrived but its CRC-32 does not match: corruption in
    /// transit (or an injected `CorruptFrame` fault).
    ChecksumMismatch {
        /// CRC the header promised.
        want: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x} (stream out of sync)"),
            FrameError::OversizedFrame(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_BYTES}-byte bound")
            }
            FrameError::ChecksumMismatch { want, got } => {
                write!(f, "frame checksum mismatch: header says {want:#010x}, payload is {got:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a timeout of a read with a deadline (the stream
    /// is fine, just idle) rather than a real failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial) — the ubiquitous
/// Ethernet/zip checksum, computed bytewise without a table so the
/// runtime stays dependency-free. Frame payloads are small enough that
/// the bitwise loop is nowhere near the wire in cost.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize one payload as a frame into a byte vector (header + body).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w`. Returns the total bytes put on the wire.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<usize, FrameError> {
    let frame = encode_frame(payload);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Read one frame's payload from `r`, reassembling partial reads and
/// validating magic, length bound, and checksum.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::OversizedFrame(len));
    }
    let want = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != want {
        return Err(FrameError::ChecksumMismatch { want, got });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello, pipeline".to_vec();
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, &payload).unwrap();
        assert_eq!(n, FRAME_HEADER_BYTES + payload.len());
        let got = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = encode_frame(b"x");
        buf[0] ^= 0xFF;
        assert!(matches!(read_frame(&mut Cursor::new(buf)), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = encode_frame(b"x");
        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::OversizedFrame(_))
        ));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = encode_frame(b"activations");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let buf = encode_frame(b"truncate me");
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut Cursor::new(cut.to_vec())),
            Err(FrameError::Io(_))
        ));
    }

    /// A reader that yields one byte per `read` call: every frame read
    /// must reassemble across maximally fragmented reads.
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn partial_reads_reassemble() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        write_frame(&mut stream, b"second").unwrap();
        let mut r = TrickleReader { data: stream, pos: 0 };
        assert_eq!(read_frame(&mut r).unwrap(), payload);
        assert_eq!(read_frame(&mut r).unwrap(), b"second".to_vec());
    }
}
