//! Binary wire codec for the distributed pipeline.
//!
//! Every inter-process message is a [`WireMsg`] serialized with an
//! explicit little-endian layout (no serde on the hot path: activations
//! are `f32` matrices whose bits must survive the trip untouched so the
//! distributed run stays *bit-identical* to the in-process engine —
//! floats travel as raw IEEE-754 bit patterns via `to_le_bytes`).
//!
//! The first message on every connection is a [`Hello`] carrying the
//! wire-format version, the sender's role and stage id, the attempt
//! number, the [fingerprint](plan_fingerprint) of the execution plan,
//! and the sender's per-layer bitwidth config; the receiver answers with
//! a [`HelloAck`] and tears the connection down on any mismatch, so a
//! master and a stage disagreeing about the plan fail fast with a typed
//! reason instead of corrupting KV caches at step 40.

use super::frame::FrameError;
use crate::migrate::KvChunkMsg;
use crate::telemetry::LinkStats;
use crate::worker::{StageMetrics, WorkItem, WorkerMsg};
use llm_pq::ExecutionPlan;
use llmpq_model::{Matrix, Phase};

/// Version of the wire format. Bumped on any layout change; both ends
/// refuse to talk across versions. Version 2 added the epoch field to
/// `Work` and the live plan-swap messages (`PlanPropose`/`PlanReady`/
/// `PlanCommit`/`PlanAbort`/`KvChunk`). Version 3 added `KvReset`,
/// which the continuous-serving master uses to recycle a worker KV
/// slot when a sequence leaves the batch.
pub const WIRE_VERSION: u16 = 3;

/// Why a message could not be decoded (framing errors are separate — see
/// [`FrameError`]).
#[derive(Debug)]
pub enum WireError {
    /// The frame layer failed (I/O, magic, length, checksum).
    Frame(FrameError),
    /// The payload was a valid frame but not a valid message.
    Decode(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "{e}"),
            WireError::Decode(m) => write!(f, "wire decode: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

/// What a connection is for, declared in its [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Stage → master: handshake, heartbeats, reports. One per stage,
    /// persistent across attempt restarts.
    Control,
    /// Activation flow into a stage (master → stage 0, stage i →
    /// stage i+1). Re-established per attempt.
    Data,
    /// The last stage's activation flow back to the master.
    ReturnData,
}

impl Role {
    /// Wire byte of this role.
    pub fn to_u8(self) -> u8 {
        match self {
            Role::Control => 0,
            Role::Data => 1,
            Role::ReturnData => 2,
        }
    }

    /// Role for a wire byte.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Role::Control),
            1 => Ok(Role::Data),
            2 => Ok(Role::ReturnData),
            _ => Err(WireError::Decode(format!("unknown role {v}"))),
        }
    }
}

/// Connection-opening handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Wire-format version of the sender.
    pub version: u16,
    /// What this connection carries.
    pub role: Role,
    /// Sender's pipeline stage (`u32::MAX` for the master).
    pub stage: u32,
    /// Attempt number this data connection belongs to (0 for control).
    pub attempt: u32,
    /// [`plan_fingerprint`] of the sender's execution plan.
    pub plan_hash: u64,
    /// Address the sender's data listener is bound to (control hellos
    /// only; lets the master assemble the ring without per-process
    /// topology flags).
    pub listen_addr: String,
    /// Per-layer bitwidths of the sender's shard (3/4/8/16), for
    /// human-readable mismatch diagnostics beyond the hash.
    pub bits: Vec<u8>,
}

/// Handshake response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Wire-format version of the responder.
    pub version: u16,
    /// Responder's plan fingerprint.
    pub plan_hash: u64,
    /// Whether the connection is accepted.
    pub accepted: bool,
    /// Refusal reason when not accepted.
    pub reason: String,
}

/// End-of-run report from one stage process.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Reporting stage.
    pub stage: u32,
    /// The stage's execution counters.
    pub metrics: StageMetrics,
    /// Counters of the stage's *upstream* link (link `stage`): the
    /// stage is that link's receiver, so only `rx` fields are filled.
    pub rx_link: LinkStats,
    /// Counters of the stage's *downstream* link (link `stage + 1`):
    /// the stage is that link's sender (`tx` fields + comm time).
    pub tx_link: LinkStats,
}

/// Every message that crosses a wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Connection-opening handshake.
    Hello(Hello),
    /// Handshake response.
    HelloAck(HelloAck),
    /// A pipeline work item (activations).
    Work(WorkItem),
    /// Drain and exit the attempt.
    Shutdown,
    /// A protocol violation travelling toward the master.
    Protocol(String),
    /// Stage liveness signal (control connections).
    Heartbeat {
        /// The beating stage.
        stage: u32,
    },
    /// Master → stage: where to send your output (closes the ring).
    Topology {
        /// Address of the next hop's data listener (or the master's
        /// listener for the last stage).
        next_addr: String,
        /// Role the stage must declare when dialing the next hop.
        next_role: u8,
    },
    /// Master → stage: the run is over, send your report and exit.
    Bye,
    /// Stage → master: final counters, sent in response to `Bye`.
    Report(StageReport),
    /// Stage → master: this stage's device is gone for good (fault
    /// injection or a real health signal); lets the master surface the
    /// typed `DeviceLost` error across process boundaries.
    DeviceLost {
        /// Cluster device id that was lost.
        device: u32,
    },
    /// Stage → master: this stage lost a work item because its
    /// downstream connection dropped mid-attempt — the wire analog of
    /// the in-process `DisconnectBoard`, so the master attributes the
    /// failure as `StageDisconnected(stage)` instead of a generic death.
    Dropped {
        /// Stage that lost the item.
        stage: u32,
    },
    /// Master → stages (rides the data ring): prepare this plan as
    /// `epoch` while the old plan keeps serving. Workers forward it
    /// downstream, requantize their target shard, and answer with
    /// `PlanReady` (prepared) or `PlanAbort`.
    PlanPropose {
        /// Epoch of the proposal (`active + 1`).
        epoch: u64,
        /// JSON of the proposed `ExecutionPlan`.
        plan_json: String,
    },
    /// Stage → master (rides the data ring): this stage finished the
    /// prepare phase (`swapped == false`) or installed the committed
    /// plan (`swapped == true`).
    PlanReady {
        /// Epoch being acknowledged.
        epoch: u64,
        /// Acknowledging stage.
        stage: u32,
        /// False = prepared, true = swapped.
        swapped: bool,
    },
    /// Master → stages at a token boundary: the prepared `epoch` is now
    /// authoritative — ship re-homed KV, install the prepared weights,
    /// answer `PlanReady` (swapped).
    PlanCommit {
        /// Epoch being committed.
        epoch: u64,
    },
    /// Any node → the ring: tear down the proposal for `epoch` and keep
    /// serving the old plan. Carries a typed reason for diagnostics.
    PlanAbort {
        /// Epoch being aborted.
        epoch: u64,
        /// Why the proposal died.
        reason: String,
    },
    /// One fragment of a `(sequence, layer)` KV slice migrating to the
    /// stage that owns the layer under the committed plan. Floats travel
    /// as raw IEEE-754 bits, so the handoff is bit-exact.
    KvChunk(KvChunkMsg),
    /// Master → stages (rides the data ring): sequence slot `seq` is
    /// retired — clear its KV cache so the slot can be reused by a new
    /// request. Workers forward it around the ring; the master sinks
    /// the echo.
    KvReset {
        /// Worker-side sequence slot to clear.
        seq: u64,
    },
}

// --- encoding -----------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    out.extend_from_slice(&(m.rows as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols as u32).to_le_bytes());
    for v in &m.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn phase_to_u8(p: Phase) -> u8 {
    match p {
        Phase::Prefill => 0,
        Phase::Decode => 1,
    }
}

fn phase_from_u8(v: u8) -> Result<Phase, WireError> {
    match v {
        0 => Ok(Phase::Prefill),
        1 => Ok(Phase::Decode),
        _ => Err(WireError::Decode(format!("unknown phase {v}"))),
    }
}

impl WireMsg {
    /// Serialize to the wire layout (the frame layer adds header +
    /// checksum around this payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireMsg::Hello(h) => {
                out.push(0x01);
                out.extend_from_slice(&h.version.to_le_bytes());
                out.push(h.role.to_u8());
                out.extend_from_slice(&h.stage.to_le_bytes());
                out.extend_from_slice(&h.attempt.to_le_bytes());
                out.extend_from_slice(&h.plan_hash.to_le_bytes());
                put_str(&mut out, &h.listen_addr);
                put_bytes(&mut out, &h.bits);
            }
            WireMsg::HelloAck(a) => {
                out.push(0x02);
                out.extend_from_slice(&a.version.to_le_bytes());
                out.extend_from_slice(&a.plan_hash.to_le_bytes());
                out.push(a.accepted as u8);
                put_str(&mut out, &a.reason);
            }
            WireMsg::Work(item) => {
                out.push(0x03);
                out.extend_from_slice(&item.step.to_le_bytes());
                out.extend_from_slice(&item.epoch.to_le_bytes());
                out.extend_from_slice(&(item.microbatch as u64).to_le_bytes());
                out.push(phase_to_u8(item.phase));
                out.extend_from_slice(&item.sent_us.to_le_bytes());
                out.extend_from_slice(&(item.seqs.len() as u32).to_le_bytes());
                for (seq, m) in &item.seqs {
                    out.extend_from_slice(&(*seq as u64).to_le_bytes());
                    put_matrix(&mut out, m);
                }
            }
            WireMsg::Shutdown => out.push(0x04),
            WireMsg::Protocol(s) => {
                out.push(0x05);
                put_str(&mut out, s);
            }
            WireMsg::Heartbeat { stage } => {
                out.push(0x06);
                out.extend_from_slice(&stage.to_le_bytes());
            }
            WireMsg::Topology { next_addr, next_role } => {
                out.push(0x07);
                put_str(&mut out, next_addr);
                out.push(*next_role);
            }
            WireMsg::Bye => out.push(0x08),
            WireMsg::Report(r) => {
                out.push(0x09);
                out.extend_from_slice(&r.stage.to_le_bytes());
                out.extend_from_slice(&(r.metrics.items as u64).to_le_bytes());
                out.extend_from_slice(&(r.metrics.seq_forwards as u64).to_le_bytes());
                out.extend_from_slice(&r.metrics.busy_s.to_le_bytes());
                for l in [&r.rx_link, &r.tx_link] {
                    for v in [l.bytes_tx, l.bytes_rx, l.frames_tx, l.frames_rx, l.comm_us, l.corrupt_frames] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            WireMsg::DeviceLost { device } => {
                out.push(0x0A);
                out.extend_from_slice(&device.to_le_bytes());
            }
            WireMsg::Dropped { stage } => {
                out.push(0x0B);
                out.extend_from_slice(&stage.to_le_bytes());
            }
            WireMsg::PlanPropose { epoch, plan_json } => {
                out.push(0x0C);
                out.extend_from_slice(&epoch.to_le_bytes());
                put_str(&mut out, plan_json);
            }
            WireMsg::PlanReady { epoch, stage, swapped } => {
                out.push(0x0D);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&stage.to_le_bytes());
                out.push(*swapped as u8);
            }
            WireMsg::PlanCommit { epoch } => {
                out.push(0x0E);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            WireMsg::PlanAbort { epoch, reason } => {
                out.push(0x0F);
                out.extend_from_slice(&epoch.to_le_bytes());
                put_str(&mut out, reason);
            }
            WireMsg::KvChunk(c) => {
                out.push(0x10);
                out.extend_from_slice(&c.epoch.to_le_bytes());
                out.extend_from_slice(&c.seq.to_le_bytes());
                out.extend_from_slice(&c.layer.to_le_bytes());
                out.extend_from_slice(&c.chunk.to_le_bytes());
                out.extend_from_slice(&c.n_chunks.to_le_bytes());
                out.extend_from_slice(&c.rows_total.to_le_bytes());
                put_matrix(&mut out, &c.k);
                put_matrix(&mut out, &c.v);
            }
            WireMsg::KvReset { seq } => {
                out.push(0x11);
                out.extend_from_slice(&seq.to_le_bytes());
            }
        }
        out
    }

    /// Decode one message from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<WireMsg, WireError> {
        let mut d = Dec { buf, pos: 0 };
        let tag = d.u8()?;
        let msg = match tag {
            0x01 => WireMsg::Hello(Hello {
                version: d.u16()?,
                role: Role::from_u8(d.u8()?)?,
                stage: d.u32()?,
                attempt: d.u32()?,
                plan_hash: d.u64()?,
                listen_addr: d.string()?,
                bits: d.bytes()?,
            }),
            0x02 => WireMsg::HelloAck(HelloAck {
                version: d.u16()?,
                plan_hash: d.u64()?,
                accepted: d.u8()? != 0,
                reason: d.string()?,
            }),
            0x03 => {
                let step = d.u64()?;
                let epoch = d.u64()?;
                let microbatch = d.u64()? as usize;
                let phase = phase_from_u8(d.u8()?)?;
                let sent_us = d.u64()?;
                let n = d.u32()? as usize;
                if n > 1_000_000 {
                    return Err(WireError::Decode(format!("work item claims {n} sequences")));
                }
                let mut seqs = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = d.u64()? as usize;
                    seqs.push((seq, d.matrix()?));
                }
                WireMsg::Work(WorkItem { step, epoch, microbatch, phase, sent_us, seqs })
            }
            0x04 => WireMsg::Shutdown,
            0x05 => WireMsg::Protocol(d.string()?),
            0x06 => WireMsg::Heartbeat { stage: d.u32()? },
            0x07 => WireMsg::Topology { next_addr: d.string()?, next_role: d.u8()? },
            0x08 => WireMsg::Bye,
            0x09 => {
                let stage = d.u32()?;
                let metrics = StageMetrics {
                    items: d.u64()? as usize,
                    seq_forwards: d.u64()? as usize,
                    busy_s: d.f64()?,
                };
                let mut links = [LinkStats::default(); 2];
                for l in &mut links {
                    *l = LinkStats {
                        bytes_tx: d.u64()?,
                        bytes_rx: d.u64()?,
                        frames_tx: d.u64()?,
                        frames_rx: d.u64()?,
                        comm_us: d.u64()?,
                        corrupt_frames: d.u64()?,
                    };
                }
                WireMsg::Report(StageReport { stage, metrics, rx_link: links[0], tx_link: links[1] })
            }
            0x0A => WireMsg::DeviceLost { device: d.u32()? },
            0x0B => WireMsg::Dropped { stage: d.u32()? },
            0x0C => WireMsg::PlanPropose { epoch: d.u64()?, plan_json: d.string()? },
            0x0D => WireMsg::PlanReady {
                epoch: d.u64()?,
                stage: d.u32()?,
                swapped: d.u8()? != 0,
            },
            0x0E => WireMsg::PlanCommit { epoch: d.u64()? },
            0x0F => WireMsg::PlanAbort { epoch: d.u64()?, reason: d.string()? },
            0x10 => {
                let epoch = d.u64()?;
                let seq = d.u32()?;
                let layer = d.u32()?;
                let chunk = d.u32()?;
                let n_chunks = d.u32()?;
                let rows_total = d.u32()?;
                let k = d.matrix()?;
                let v = d.matrix()?;
                WireMsg::KvChunk(KvChunkMsg { epoch, seq, layer, chunk, n_chunks, rows_total, k, v })
            }
            0x11 => WireMsg::KvReset { seq: d.u64()? },
            _ => return Err(WireError::Decode(format!("unknown message tag {tag:#04x}"))),
        };
        if d.pos != buf.len() {
            return Err(WireError::Decode(format!(
                "{} trailing bytes after message tag {tag:#04x}",
                buf.len() - d.pos
            )));
        }
        Ok(msg)
    }

    /// Wire payload size of this message without serializing it —
    /// exact for `Work` (the dominant traffic), used by the in-process
    /// channel transport so per-link byte counters mean the same thing
    /// under both transports.
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMsg::Work(item) => work_item_wire_bytes(item),
            WireMsg::KvChunk(c) => kv_chunk_wire_bytes(c),
            other => other.encode().len(),
        }
    }
}

/// Exact serialized payload size of a work item.
pub fn work_item_wire_bytes(item: &WorkItem) -> usize {
    // tag, step, epoch, microbatch, phase, sent_us, count
    let mut n = 1 + 8 + 8 + 8 + 1 + 8 + 4;
    for (_, m) in &item.seqs {
        n += 8 + 4 + 4 + 4 * m.rows * m.cols;
    }
    n
}

/// Exact serialized payload size of a KV migration chunk.
pub fn kv_chunk_wire_bytes(c: &KvChunkMsg) -> usize {
    // tag, epoch, seq, layer, chunk, n_chunks, rows_total, 2 matrices
    1 + 8 + 4 * 5 + 2 * (4 + 4) + 4 * (c.k.rows * c.k.cols + c.v.rows * c.v.cols)
}

/// Exact serialized payload size of a data-plane [`WorkerMsg`] without
/// serializing it — lets the in-process channel transport account the
/// same per-link byte counts a TCP link would observe.
pub fn worker_msg_wire_bytes(msg: &WorkerMsg) -> usize {
    match msg {
        WorkerMsg::Work(i) => work_item_wire_bytes(i),
        WorkerMsg::Shutdown => 1,
        WorkerMsg::Protocol(s) => 1 + 4 + s.len(),
        WorkerMsg::PlanPropose { plan_json, .. } => 1 + 8 + 4 + plan_json.len(),
        WorkerMsg::PlanReady { .. } => 1 + 8 + 4 + 1,
        WorkerMsg::PlanCommit { .. } => 1 + 8,
        WorkerMsg::PlanAbort { reason, .. } => 1 + 8 + 4 + reason.len(),
        WorkerMsg::KvChunk(c) => kv_chunk_wire_bytes(c),
        WorkerMsg::KvReset { .. } => 1 + 8,
    }
}

/// Map a pipeline [`WorkerMsg`] onto the wire (the variants the data
/// plane carries: activations, teardown, violations, and the plan-swap
/// protocol).
pub fn worker_msg_to_wire(msg: WorkerMsg) -> WireMsg {
    match msg {
        WorkerMsg::Work(i) => WireMsg::Work(i),
        WorkerMsg::Shutdown => WireMsg::Shutdown,
        WorkerMsg::Protocol(s) => WireMsg::Protocol(s),
        WorkerMsg::PlanPropose { epoch, plan_json } => WireMsg::PlanPropose { epoch, plan_json },
        WorkerMsg::PlanReady { epoch, stage, swapped } => {
            WireMsg::PlanReady { epoch, stage, swapped }
        }
        WorkerMsg::PlanCommit { epoch } => WireMsg::PlanCommit { epoch },
        WorkerMsg::PlanAbort { epoch, reason } => WireMsg::PlanAbort { epoch, reason },
        WorkerMsg::KvChunk(c) => WireMsg::KvChunk(c),
        WorkerMsg::KvReset { seq } => WireMsg::KvReset { seq: seq as u64 },
    }
}

/// Map a wire message back onto the data plane, if it belongs there —
/// the single mapping both the TCP pump and the simulated transport use,
/// so the set of data-plane messages cannot drift between transports.
pub fn wire_to_worker_msg(msg: WireMsg) -> Option<WorkerMsg> {
    match msg {
        WireMsg::Work(i) => Some(WorkerMsg::Work(i)),
        WireMsg::Shutdown => Some(WorkerMsg::Shutdown),
        WireMsg::Protocol(s) => Some(WorkerMsg::Protocol(s)),
        WireMsg::PlanPropose { epoch, plan_json } => {
            Some(WorkerMsg::PlanPropose { epoch, plan_json })
        }
        WireMsg::PlanReady { epoch, stage, swapped } => {
            Some(WorkerMsg::PlanReady { epoch, stage, swapped })
        }
        WireMsg::PlanCommit { epoch } => Some(WorkerMsg::PlanCommit { epoch }),
        WireMsg::PlanAbort { epoch, reason } => Some(WorkerMsg::PlanAbort { epoch, reason }),
        WireMsg::KvChunk(c) => Some(WorkerMsg::KvChunk(c)),
        WireMsg::KvReset { seq } => Some(WorkerMsg::KvReset { seq: seq as usize }),
        _ => None,
    }
}

/// FNV-1a 64-bit over the plan's canonical JSON: both ends of every
/// connection must present the same fingerprint during the handshake.
pub fn plan_fingerprint(plan: &ExecutionPlan) -> u64 {
    let json = plan.to_json();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in json.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian cursor over a decode buffer.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Decode(format!(
                "message truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|e| WireError::Decode(format!("bad utf-8 string: {e}")))
    }

    fn matrix(&mut self) -> Result<Matrix, WireError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n <= super::frame::MAX_FRAME_BYTES / 4)
            .ok_or_else(|| WireError::Decode(format!("matrix {rows}x{cols} too large")))?;
        let raw = self.take(4 * n)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> WorkItem {
        WorkItem {
            step: 7,
            epoch: 3,
            microbatch: 2,
            phase: Phase::Decode,
            sent_us: 123_456,
            seqs: vec![
                (0, Matrix::from_vec(1, 3, vec![1.0, -2.5, f32::MIN_POSITIVE])),
                (4, Matrix::from_vec(2, 2, vec![0.0, -0.0, f32::MAX, 1e-30])),
            ],
        }
    }

    #[test]
    fn work_item_round_trips_bit_exactly() {
        let msg = WireMsg::Work(item());
        let buf = msg.encode();
        assert_eq!(buf.len(), msg.encoded_len());
        let back = WireMsg::decode(&buf).unwrap();
        let WireMsg::Work(got) = back else { panic!("work expected") };
        let want = item();
        assert_eq!(got.step, want.step);
        assert_eq!(got.epoch, want.epoch);
        assert_eq!(got.phase, want.phase);
        for ((s0, m0), (s1, m1)) in want.seqs.iter().zip(&got.seqs) {
            assert_eq!(s0, s1);
            // Bit-exact: compare the raw f32 bit patterns, not values
            // (−0.0 == 0.0 would pass a value compare).
            let a: Vec<u32> = m0.data.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = m1.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn control_messages_round_trip() {
        let msgs = vec![
            WireMsg::Hello(Hello {
                version: WIRE_VERSION,
                role: Role::Control,
                stage: 3,
                attempt: 1,
                plan_hash: 0xDEAD_BEEF_CAFE_F00D,
                listen_addr: "127.0.0.1:7001".into(),
                bits: vec![4, 8, 16],
            }),
            WireMsg::HelloAck(HelloAck {
                version: WIRE_VERSION,
                plan_hash: 42,
                accepted: false,
                reason: "plan hash mismatch".into(),
            }),
            WireMsg::Shutdown,
            WireMsg::Protocol("stage 1: seq out of range".into()),
            WireMsg::Heartbeat { stage: 2 },
            WireMsg::Topology { next_addr: "127.0.0.1:7002".into(), next_role: 2 },
            WireMsg::Bye,
            WireMsg::Report(StageReport {
                stage: 1,
                metrics: StageMetrics { items: 10, seq_forwards: 20, busy_s: 0.25 },
                rx_link: LinkStats { bytes_rx: 900, frames_rx: 11, corrupt_frames: 1, ..Default::default() },
                tx_link: LinkStats { bytes_tx: 1000, frames_tx: 12, comm_us: 333, ..Default::default() },
            }),
            WireMsg::DeviceLost { device: 5 },
            WireMsg::Dropped { stage: 0 },
            WireMsg::PlanPropose { epoch: 9, plan_json: "{\"stages\":[]}".into() },
            WireMsg::PlanReady { epoch: 9, stage: 2, swapped: true },
            WireMsg::PlanReady { epoch: 9, stage: 0, swapped: false },
            WireMsg::PlanCommit { epoch: 9 },
            WireMsg::PlanAbort { epoch: 9, reason: "stage 1: prepare timeout".into() },
            WireMsg::KvReset { seq: 0 },
            WireMsg::KvReset { seq: u64::MAX },
        ];
        for m in msgs {
            let back = WireMsg::decode(&m.encode()).unwrap();
            assert_eq!(back, m, "round trip of {m:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = WireMsg::Shutdown.encode();
        buf.push(0);
        assert!(matches!(WireMsg::decode(&buf), Err(WireError::Decode(_))));
    }

    #[test]
    fn truncated_message_is_rejected() {
        let buf = WireMsg::Work(item()).encode();
        for cut in [1usize, 5, buf.len() - 1] {
            assert!(
                matches!(WireMsg::decode(&buf[..cut]), Err(WireError::Decode(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(WireMsg::decode(&[0xFF]), Err(WireError::Decode(_))));
        assert!(matches!(WireMsg::decode(&[]), Err(WireError::Decode(_))));
    }

    #[test]
    fn kv_chunk_round_trips_bit_exactly() {
        let c = KvChunkMsg {
            epoch: 4,
            seq: 1,
            layer: 6,
            chunk: 2,
            n_chunks: 3,
            rows_total: 37,
            k: Matrix::from_vec(2, 2, vec![0.0, -0.0, f32::MIN_POSITIVE, -1.5]),
            v: Matrix::from_vec(2, 2, vec![f32::MAX, 1e-30, -3.25, 42.0]),
        };
        let msg = WireMsg::KvChunk(c.clone());
        let buf = msg.encode();
        assert_eq!(buf.len(), msg.encoded_len(), "exact size accounting");
        let WireMsg::KvChunk(got) = WireMsg::decode(&buf).unwrap() else {
            panic!("kv chunk expected")
        };
        assert_eq!((got.epoch, got.seq, got.layer, got.chunk, got.n_chunks, got.rows_total),
                   (c.epoch, c.seq, c.layer, c.chunk, c.n_chunks, c.rows_total));
        for (a, b) in [(&got.k, &c.k), (&got.v, &c.v)] {
            let x: Vec<u32> = a.data.iter().map(|v| v.to_bits()).collect();
            let y: Vec<u32> = b.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(x, y, "bit-exact KV payload");
        }
    }

    #[test]
    fn plan_fingerprint_tracks_plan_content() {
        use llm_pq::StagePlan;
        use llmpq_quant::Bitwidth;
        use llmpq_workload::MicrobatchPlan;
        let plan = ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: 2,
                bits: vec![Bitwidth::Int8, Bitwidth::Fp16],
            }],
            microbatch: MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        let h = plan_fingerprint(&plan);
        assert_eq!(h, plan_fingerprint(&plan), "deterministic");
        let mut other = plan.clone();
        other.stages[0].bits[0] = Bitwidth::Int4;
        assert_ne!(h, plan_fingerprint(&other), "bit config must change the hash");
    }
}
