//! Multi-process pipeline: one OS process per stage plus a master,
//! connected over TCP.
//!
//! Topology (n stages → n+2 processes, n+1 data links):
//!
//! ```text
//!            control (persistent, per stage): hello/ack, topology,
//!            heartbeats, dropped/device-lost notes, bye/report
//!          ┌───────────────────────────────────────────────┐
//!          ▼                                               │
//!   master ── data link 0 ──▶ stage 0 ── link 1 ──▶ … ──▶ stage n−1
//!      ▲                                                       │
//!      └──────────────── return data (link n) ─────────────────┘
//! ```
//!
//! The master owns one listener. At startup every stage dials it with a
//! `Control` hello (carrying the address its own data listener bound —
//! stages may bind port 0) and the master answers the ring topology.
//! Data connections are *per attempt*: the master dials stage 0, each
//! stage dials its successor on first use, and the last stage dials the
//! master's listener back with a `ReturnData` hello. A failed attempt is
//! torn down by dropping the master's endpoints — the EOF cascades down
//! the ring, every worker loop exits, and the stages circle back to
//! accepting the next attempt, which resumes from the lock-step token
//! checkpoint exactly like the in-process recoverable engine.
//!
//! The generation loop itself is the engine's `drive_generation` — the
//! same code the in-process engine runs, pointed at a TCP transport
//! instead of a channel pair. That, plus the bit-exact activation
//! codec, is why a loopback multi-process run emits byte-identical
//! tokens.

use super::fault::{WireFaultInjector, WireFaultPlan, MASTER_STAGE};
use super::transport::{
    connect_retry, read_wire_msg, write_wire_msg, TcpTransport, TcpTransportConfig, Transport,
};
use super::wire::{plan_fingerprint, Hello, HelloAck, Role, StageReport, WireMsg, WIRE_VERSION};
use crate::clock::{real_clock, Clock};
use crate::engine::{
    bits_label, checkpoint_lockstep, drive_generation, validate_inputs, AttemptSupervision, Master,
    RuntimeError,
};
use crate::fault::Heartbeats;
use crate::loader::load_stage_weights;
use crate::migrate::MigrationHost;
use crate::overload::{AdmissionConfig, AdmissionController, AdmissionPolicy, AdmissionStats, Request};
use crate::supervisor::SupervisorConfig;
use crate::telemetry::{LinkStats, Telemetry};
use crate::worker::{disconnect_board, run_worker_transport, MetricsSink, StageMetrics, WorkerCtx};
use llm_pq::ExecutionPlan;
use llmpq_model::RefModel;
use llmpq_quant::Rounding;
use parking_lot::Mutex;
use std::cell::Cell;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::time::Duration;

/// How long handshakes (control collection, per-attempt data hellos) may
/// take before the peer is declared unreachable.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Interval between heartbeat frames a stage puts on its control
/// connection (rate limit; the worker offers beats far more often).
const HEARTBEAT_WIRE_INTERVAL: Duration = Duration::from_millis(50);

/// How long the master waits for stage reports after `Bye`.
const REPORT_TIMEOUT: Duration = Duration::from_secs(5);

/// Master-side configuration for a distributed run.
#[derive(Clone, Default)]
pub struct DistMasterConfig {
    /// Supervision knobs: heartbeat/progress timeouts, restart budget,
    /// reconnect backoff.
    pub supervisor: SupervisorConfig,
    /// Wire faults this process should inject (events targeting
    /// [`MASTER_STAGE`]).
    pub wire_faults: WireFaultPlan,
    /// Observability hub; also receives the stages' reported link
    /// counters at the end of the run.
    pub telemetry: Option<Arc<Telemetry>>,
}

/// Result of a distributed run, master side.
#[derive(Debug, Clone)]
pub struct DistOutput {
    /// Generated tokens per input sequence.
    pub tokens: Vec<Vec<usize>>,
    /// Wall-clock seconds, handshake to last token.
    pub wall_s: f64,
    /// Attempt restarts taken (0 = clean run).
    pub restarts: usize,
    /// Per-stage execution counters, from the stage reports (default for
    /// a stage whose report never arrived).
    pub stage_metrics: Vec<StageMetrics>,
    /// Per-link wire counters: the master's own two links merged with
    /// every reported stage link; index i is the edge *into* stage i
    /// (index `n_stages` = return link).
    pub link_stats: Vec<LinkStats>,
    /// Admission accounting of the batch — the conservation invariant
    /// (`offered == served + shed + expired + pending`) is checked
    /// before returning.
    pub admission: AdmissionStats,
}

/// Stage-side configuration.
#[derive(Clone)]
pub struct DistStageConfig {
    /// This process's pipeline stage.
    pub stage: usize,
    /// Address to bind the data listener on (port 0 is fine — the real
    /// address is reported to the master in the control hello).
    pub listen: String,
    /// The master's listener address.
    pub master: String,
    /// Quantizer rounding (must match the master's run).
    pub rounding: Rounding,
    /// Quantizer seed (must match the master's run).
    pub seed: u64,
    /// Wire faults this process should inject.
    pub wire_faults: WireFaultPlan,
    /// Worker receive/retry granularity.
    pub tick: Duration,
}

/// What a stage process did, for logs and tests.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Data connections served (1 = no restarts).
    pub attempts_served: usize,
    /// Final execution counters.
    pub metrics: StageMetrics,
    /// Upstream-link counters (link `stage`, rx side).
    pub rx_link: LinkStats,
    /// Downstream-link counters (link `stage + 1`, tx side).
    pub tx_link: LinkStats,
}

/// Accept one connection, polling so the deadline (and nothing else)
/// bounds the wait — std has no native accept timeout. The deadline is
/// in `clock`'s timeline (see [`Clock::deadline`]).
fn accept_deadline(
    listener: &TcpListener,
    clock: &dyn Clock,
    deadline: Duration,
) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    let res = loop {
        match listener.accept() {
            Ok((s, _)) => break Ok(s),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if clock.expired(deadline) {
                    break Err(io::Error::new(io::ErrorKind::TimedOut, "accept deadline passed"));
                }
                clock.sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    let _ = listener.set_nonblocking(false);
    if let Ok(s) = &res {
        s.set_nonblocking(false)?;
    }
    res
}

/// Accept until a connection arrives or `stop` is raised.
fn accept_until_stopped(
    listener: &TcpListener,
    clock: &dyn Clock,
    stop: &AtomicBool,
) -> Option<TcpStream> {
    if listener.set_nonblocking(true).is_err() {
        return None;
    }
    let res = loop {
        if stop.load(Ordering::Acquire) {
            break None;
        }
        match listener.accept() {
            Ok((s, _)) => break Some(s),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                clock.sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break None,
        }
    };
    let _ = listener.set_nonblocking(false);
    if let Some(s) = &res {
        if s.set_nonblocking(false).is_err() {
            return None;
        }
    }
    res
}

fn wire_io(what: &str, e: impl std::fmt::Display) -> RuntimeError {
    RuntimeError::WorkerDied(format!("{what}: {e}"))
}

/// Master-side shared state fed by the per-stage control readers.
///
/// `reports` lives under a std mutex (not parking_lot) because the
/// report wait in `run_master` parks on the paired [`Condvar`] — the
/// vendored parking_lot has no condvar, and a poisoned lock just means
/// a reader panicked mid-store, which the wait tolerates.
struct ControlShared {
    hb: Arc<Heartbeats>,
    dropped: Mutex<Vec<usize>>,
    reports: std::sync::Mutex<Vec<Option<StageReport>>>,
    /// Notified on every report arrival and on control-reader exit, so
    /// the master's report wait parks instead of polling.
    reports_cv: Condvar,
    device_lost: Mutex<Option<usize>>,
}

fn control_reader(mut stream: TcpStream, shared: Arc<ControlShared>, n_stages: usize) {
    loop {
        match read_wire_msg(&mut stream) {
            Ok(WireMsg::Heartbeat { stage }) if (stage as usize) < n_stages => {
                shared.hb.beat(stage as usize);
            }
            Ok(WireMsg::Dropped { stage }) => shared.dropped.lock().push(stage as usize),
            Ok(WireMsg::DeviceLost { device }) => {
                *shared.device_lost.lock() = Some(device as usize);
            }
            Ok(WireMsg::Report(r)) if (r.stage as usize) < n_stages => {
                let s = r.stage as usize;
                shared.reports.lock().unwrap_or_else(PoisonError::into_inner)[s] = Some(r);
                shared.reports_cv.notify_all();
            }
            Ok(_) => {}
            Err(_) => {
                // EOF / poisoned control — supervision notices; wake the
                // report wait so it re-checks rather than sleeping out
                // its full timeout.
                shared.reports_cv.notify_all();
                return;
            }
        }
    }
}

/// Run the master of a distributed pipeline over an already-bound
/// listener (bind `127.0.0.1:0` and print `local_addr` to let stages
/// find you). Blocks until all `plan.stages.len()` stage processes have
/// checked in, then drives generation with per-attempt data rings,
/// restarting (with backoff, up to `supervisor.max_restarts`) on any
/// failed attempt — including injected or real mid-run connection drops.
pub fn run_master(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    listener: &TcpListener,
    cfg: &DistMasterConfig,
) -> Result<DistOutput, RuntimeError> {
    validate_inputs(checkpoint, plan, prompts, n_generate, None)?;
    let n_stages = plan.stages.len();
    let fp = plan_fingerprint(plan);
    let clock = real_clock();
    let start = clock.now();
    let master_addr = listener
        .local_addr()
        .map_err(|e| wire_io("master listener has no local address", e))?
        .to_string();

    // Admission accounting: the whole batch is offered, dispatched, and
    // served through the controller so the conservation invariant is
    // checked on the distributed path too.
    let mut admission = AdmissionController::new(AdmissionConfig {
        policy: AdmissionPolicy::Reject,
        max_queue: prompts.len().max(1),
        ..AdmissionConfig::default()
    });
    for (i, p) in prompts.iter().enumerate() {
        let req = Request {
            id: i,
            arrival_s: 0.0,
            prompt: p.clone(),
            n_generate,
            deadline_s: None,
            priority: 0,
        };
        if !admission.offer(req, 0.0) {
            return Err(RuntimeError::BadPlan("admission rejected a batch prompt".into()));
        }
    }
    while admission.take().is_some() {} // dispatch the whole batch

    let ControlPlane { stage_addrs, shared, writers: control_writers } =
        establish_control_plane(plan, listener, fp, &master_addr, &clock)?;

    // --- Phase 4: attempts ----------------------------------------------
    let sup_cfg = &cfg.supervisor;
    let injector = WireFaultInjector::new(&cfg.wire_faults, MASTER_STAGE);
    let mut tokens: Vec<Vec<usize>> = vec![Vec::with_capacity(n_generate); prompts.len()];
    let mut attempt = 0usize;
    let result = loop {
        shared.dropped.lock().clear();
        for s in 0..n_stages {
            shared.hb.beat(s); // restart staleness clocks for the attempt
        }
        let res = master_attempt(
            checkpoint, plan, prompts, &mut tokens, n_generate, listener, cfg, fp,
            attempt, &stage_addrs[0], &shared, injector.clone(), &clock,
        );
        match res {
            Ok(()) => break Ok(()),
            Err(e) => {
                if let Some(d) = *shared.device_lost.lock() {
                    break Err(RuntimeError::DeviceLost(d));
                }
                // Root-cause attribution: a wire `Dropped` note names the
                // stage whose downstream link died.
                let e = match (&e, shared.dropped.lock().first().copied()) {
                    (RuntimeError::WorkerDied(_) | RuntimeError::Stalled(_), Some(s)) => {
                        RuntimeError::StageDisconnected(s)
                    }
                    _ => e,
                };
                if attempt >= sup_cfg.max_restarts {
                    break Err(e);
                }
                checkpoint_lockstep(&mut tokens);
                clock.sleep(sup_cfg.backoff(attempt));
                attempt += 1;
            }
        }
    };
    // --- Phase 5: bye, reports, teardown --------------------------------
    for w in &control_writers {
        let _ = write_wire_msg(&mut *w.lock(), &WireMsg::Bye);
    }
    if result.is_ok() {
        wait_for_reports(&shared, clock.as_ref(), REPORT_TIMEOUT);
    }
    for w in &control_writers {
        let _ = w.lock().shutdown(Shutdown::Both);
    }
    result?;

    let reports = shared.reports.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(t) = &cfg.telemetry {
        for r in reports.iter().flatten() {
            if let Some(l) = t.link(r.stage as usize) {
                l.merge(&r.rx_link);
            }
            if let Some(l) = t.link(r.stage as usize + 1) {
                l.merge(&r.tx_link);
            }
        }
    }
    let link_stats: Vec<LinkStats> = match &cfg.telemetry {
        Some(t) => t.link_stats(),
        None => {
            // No hub: assemble the picture from the reports alone.
            let mut links = vec![LinkStats::default(); n_stages + 1];
            for r in reports.iter().flatten() {
                let (s, bump_rx, bump_tx) = (r.stage as usize, r.rx_link, r.tx_link);
                merge_plain(&mut links[s], &bump_rx);
                merge_plain(&mut links[s + 1], &bump_tx);
            }
            links
        }
    };
    admission.note_served(prompts.len());
    let stats = admission.stats();
    debug_assert!(
        stats.conserves(admission.pending()),
        "admission conservation violated: {stats:?} pending={}",
        admission.pending()
    );
    if !stats.conserves(admission.pending()) {
        return Err(RuntimeError::Protocol(format!(
            "admission conservation violated: {stats:?} pending={}",
            admission.pending()
        )));
    }
    Ok(DistOutput {
        tokens,
        wall_s: clock.now().saturating_sub(start).as_secs_f64(),
        restarts: attempt,
        stage_metrics: (0..n_stages)
            .map(|s| reports[s].as_ref().map(|r| r.metrics).unwrap_or_default())
            .collect(),
        link_stats,
        admission: stats,
    })
}

/// Master-side control plane: the persistent per-stage connections plus
/// the shared state their reader threads feed. Built once per run by
/// [`establish_control_plane`]; shared by [`run_master`] and the
/// serving-path [`TcpServingRing`].
struct ControlPlane {
    /// Data-listener address each stage reported in its control hello.
    stage_addrs: Vec<String>,
    shared: Arc<ControlShared>,
    writers: Vec<Arc<Mutex<TcpStream>>>,
}

/// Phases 1–3 of the master bring-up: collect one control connection
/// per stage (validating version, plan hash, and bit config), answer
/// the ring topology, then split each connection into a reader thread
/// and a shared writer.
fn establish_control_plane(
    plan: &ExecutionPlan,
    listener: &TcpListener,
    fp: u64,
    master_addr: &str,
    clock: &Arc<dyn Clock>,
) -> Result<ControlPlane, RuntimeError> {
    let n_stages = plan.stages.len();

    // --- Phase 1: collect one control connection per stage -------------
    let mut controls: Vec<Option<(TcpStream, String)>> = (0..n_stages).map(|_| None).collect();
    let deadline = clock.deadline(HANDSHAKE_TIMEOUT);
    while controls.iter().any(Option::is_none) {
        let mut c = accept_deadline(listener, clock.as_ref(), deadline)
            .map_err(|e| wire_io("waiting for stage control connections", e))?;
        let _ = c.set_read_timeout(Some(Duration::from_secs(3)));
        let hello = match read_wire_msg(&mut c) {
            Ok(WireMsg::Hello(h)) if h.role == Role::Control => h,
            _ => continue, // stray or damaged connection: drop it
        };
        let s = hello.stage as usize;
        let want_bits: Vec<u8> =
            plan.stages.get(s).map_or(Vec::new(), |sp| sp.bits.iter().map(|b| b.bits() as u8).collect());
        let refusal = if hello.version != WIRE_VERSION {
            Some(format!("wire version mismatch: master {WIRE_VERSION}, stage {}", hello.version))
        } else if s >= n_stages {
            Some(format!("stage {s} out of range (plan has {n_stages})"))
        } else if hello.plan_hash != fp {
            Some(format!("plan hash mismatch: master {fp:#018x}, stage {:#018x}", hello.plan_hash))
        } else if hello.bits != want_bits {
            Some(format!("bitwidth config mismatch at stage {s}: master expects {want_bits:?}, stage has {:?}", hello.bits))
        } else if controls[s].is_some() {
            Some(format!("stage {s} already connected"))
        } else {
            None
        };
        let ack = HelloAck {
            version: WIRE_VERSION,
            plan_hash: fp,
            accepted: refusal.is_none(),
            reason: refusal.clone().unwrap_or_default(),
        };
        let _ = write_wire_msg(&mut c, &WireMsg::HelloAck(ack));
        match refusal {
            // A misconfigured fleet is not going to heal: fail fast with
            // the same typed reason the stage saw.
            Some(r) => return Err(RuntimeError::BadPlan(r)),
            None => controls[s] = Some((c, hello.listen_addr)),
        }
    }

    // The collection loop above only exits once every slot is filled;
    // surface a logic regression as a typed error instead of a panic.
    let mut controls: Vec<(TcpStream, String)> = controls
        .into_iter()
        .enumerate()
        .map(|(s, c)| {
            c.ok_or_else(|| {
                RuntimeError::Protocol(format!("stage {s} control connection never collected"))
            })
        })
        .collect::<Result<_, _>>()?;

    // --- Phase 2: answer the ring topology ------------------------------
    let stage_addrs: Vec<String> = controls.iter().map(|(_, a)| a.clone()).collect();
    for s in 0..n_stages {
        let (next_addr, next_role) = if s + 1 < n_stages {
            (stage_addrs[s + 1].clone(), Role::Data.to_u8())
        } else {
            (master_addr.to_string(), Role::ReturnData.to_u8())
        };
        let (c, _) = &mut controls[s];
        write_wire_msg(c, &WireMsg::Topology { next_addr, next_role })
            .map_err(|e| wire_io("sending topology", e))?;
    }

    // --- Phase 3: split controls into reader threads + shared writers ---
    let shared = Arc::new(ControlShared {
        hb: Heartbeats::with_clock(n_stages, clock.clone()),
        dropped: Mutex::new(Vec::new()),
        reports: std::sync::Mutex::new(vec![None; n_stages]),
        reports_cv: Condvar::new(),
        device_lost: Mutex::new(None),
    });
    let mut control_writers: Vec<Arc<Mutex<TcpStream>>> = Vec::new();
    for (c, _) in controls {
        let _ = c.set_read_timeout(None);
        let reader = c.try_clone().map_err(|e| wire_io("cloning control stream", e))?;
        control_writers.push(Arc::new(Mutex::new(c)));
        let sh = shared.clone();
        std::thread::spawn(move || control_reader(reader, sh, n_stages));
    }

    Ok(ControlPlane { stage_addrs, shared, writers: control_writers })
}

/// Park on the report condvar until every stage report arrived or the
/// timeout lapsed. The control readers notify on every report arrival
/// (and when a reader exits), so no core burns in the wait.
fn wait_for_reports(shared: &ControlShared, clock: &dyn Clock, timeout: Duration) {
    let deadline = clock.deadline(timeout);
    let mut guard = shared.reports.lock().unwrap_or_else(PoisonError::into_inner);
    while guard.iter().any(Option::is_none) {
        let left = deadline.saturating_sub(clock.now());
        if left.is_zero() {
            break;
        }
        guard = shared
            .reports_cv
            .wait_timeout(guard, left)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

/// Plain-value counterpart of [`crate::telemetry::LinkRecorder::merge`].
fn merge_plain(into: &mut LinkStats, add: &LinkStats) {
    into.bytes_tx += add.bytes_tx;
    into.bytes_rx += add.bytes_rx;
    into.frames_tx += add.frames_tx;
    into.frames_rx += add.frames_rx;
    into.comm_us += add.comm_us;
    into.corrupt_frames += add.corrupt_frames;
}

/// One distributed attempt: build the data ring (dial stage 0, accept
/// the last stage's return connection), run the shared generation loop,
/// tear the ring down by dropping the endpoints.
#[allow(clippy::too_many_arguments)]
fn master_attempt(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    tokens: &mut [Vec<usize>],
    n_generate: usize,
    listener: &TcpListener,
    cfg: &DistMasterConfig,
    fp: u64,
    attempt: usize,
    s0_addr: &str,
    shared: &Arc<ControlShared>,
    injector: Arc<WireFaultInjector>,
    clock: &Arc<dyn Clock>,
) -> Result<(), RuntimeError> {
    let n_stages = plan.stages.len();
    let done = tokens.iter().map(Vec::len).min().unwrap_or(0);
    if done >= n_generate {
        return Ok(());
    }
    let sup_cfg = &cfg.supervisor;
    let (ret, down) = dial_data_ring(listener, s0_addr, fp, attempt, sup_cfg, clock)?;

    let transport = TcpTransport::spawn(
        ret,
        down,
        TcpTransportConfig {
            faults: Some(injector),
            telemetry: cfg.telemetry.clone(),
            rx_link: n_stages,
            tx_link: 0,
            tid: 0,
            clock: clock.clone(),
        },
    );
    let master = Master {
        model: checkpoint,
        link: transport,
        last_step: Cell::new(None),
        telemetry: cfg.telemetry.clone(),
        local_gauges: false,
    };
    let sup = AttemptSupervision {
        injector: None,
        heartbeats: Some(shared.hb.clone()),
        heartbeat_timeout: Some(Duration::from_millis(sup_cfg.heartbeat_timeout_ms)),
        progress_timeout: Some(Duration::from_millis(sup_cfg.progress_timeout_ms)),
        tick: Some(Duration::from_millis(sup_cfg.tick_ms.max(1))),
        telemetry: cfg.telemetry.clone(),
        queue_cap: None,
        clock: clock.clone(),
        migration_host: None,
    };
    drive_generation(&master, plan, prompts, tokens, n_generate, &sup)
    // `master` (and its transport) drops here: both data endpoints
    // close, the EOF cascades down the ring, and the stages circle back
    // to accepting the next attempt.
}

/// Build one attempt's data ring: dial stage 0 (retrying along the
/// supervisor's backoff curve — the stage may still be tearing the
/// previous attempt down), then accept the last stage's return
/// connection, refusing stray or stale dials. Returns the
/// `(return, downstream)` endpoint pair for [`TcpTransport::spawn`].
fn dial_data_ring(
    listener: &TcpListener,
    s0_addr: &str,
    fp: u64,
    attempt: usize,
    sup_cfg: &SupervisorConfig,
    clock: &Arc<dyn Clock>,
) -> Result<(TcpStream, TcpStream), RuntimeError> {
    // Jitter seeded by the attempt so redial timing stays deterministic
    // per topology.
    let mut down = connect_retry(
        s0_addr,
        16,
        Duration::from_millis(sup_cfg.backoff_base_ms.max(1)),
        sup_cfg.backoff_factor.max(1.0),
        Duration::from_millis(sup_cfg.backoff_cap_ms.max(1)),
        attempt as u64,
    )
    .map_err(|e| wire_io(&format!("dialing stage 0 at {s0_addr}"), e))?;
    let _ = down.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let hello = Hello {
        version: WIRE_VERSION,
        role: Role::Data,
        stage: 0,
        attempt: attempt as u32,
        plan_hash: fp,
        listen_addr: String::new(),
        bits: Vec::new(),
    };
    write_wire_msg(&mut down, &WireMsg::Hello(hello))
        .map_err(|e| wire_io("sending data hello to stage 0", e))?;
    match read_wire_msg(&mut down) {
        Ok(WireMsg::HelloAck(a)) if a.accepted => {}
        Ok(WireMsg::HelloAck(a)) => return Err(RuntimeError::BadPlan(a.reason)),
        Ok(m) => {
            return Err(RuntimeError::Protocol(format!("expected hello-ack from stage 0, got {m:?}")))
        }
        Err(e) => return Err(wire_io("reading stage 0 hello-ack", e)),
    }

    // Accept the last stage's return connection. Stray or stale dials
    // (e.g. a previous attempt's late return) are acked away and the
    // accept continues until the deadline.
    let ret = loop {
        let mut c = accept_deadline(listener, clock.as_ref(), clock.deadline(HANDSHAKE_TIMEOUT))
            .map_err(|e| wire_io("waiting for the return data connection", e))?;
        let _ = c.set_read_timeout(Some(Duration::from_secs(3)));
        match read_wire_msg(&mut c) {
            Ok(WireMsg::Hello(h))
                if h.role == Role::ReturnData
                    && h.attempt == attempt as u32
                    && h.plan_hash == fp =>
            {
                let ack = HelloAck {
                    version: WIRE_VERSION,
                    plan_hash: fp,
                    accepted: true,
                    reason: String::new(),
                };
                write_wire_msg(&mut c, &WireMsg::HelloAck(ack))
                    .map_err(|e| wire_io("acking the return connection", e))?;
                break c;
            }
            Ok(WireMsg::Hello(_)) => {
                let ack = HelloAck {
                    version: WIRE_VERSION,
                    plan_hash: fp,
                    accepted: false,
                    reason: "stale or mismatched return connection".into(),
                };
                let _ = write_wire_msg(&mut c, &WireMsg::HelloAck(ack));
            }
            _ => {} // damaged stray; drop and keep accepting
        }
    };
    Ok((ret, down))
}

/// Multi-process serving ring: the TCP counterpart of
/// [`ChannelRing`](crate::serve_dist::ChannelRing), backing a
/// [`DistStepEngine`](crate::serve_dist::DistStepEngine) with one
/// [`run_stage`] process per pipeline stage.
///
/// The control plane (stage check-in, topology, heartbeats, reports) is
/// established once; each `dial` builds a fresh per-attempt data ring
/// exactly like [`run_master`]'s attempt loop. Teardown is the EOF
/// cascade: the engine drops the master link, every stage's worker loop
/// exits, and the stages circle back to accepting the next attempt —
/// so `teardown` itself has nothing to do. Stages always serve the
/// *boot* plan on a fresh attempt; the engine replays any committed
/// live-swap on top before resuming traffic.
pub struct TcpServingRing {
    listener: TcpListener,
    fp: u64,
    n_stages: usize,
    s0_addr: String,
    supervisor: SupervisorConfig,
    injector: Arc<WireFaultInjector>,
    clock: Arc<dyn Clock>,
    shared: Arc<ControlShared>,
    writers: Vec<Arc<Mutex<TcpStream>>>,
}

impl TcpServingRing {
    /// Collect the stage fleet on an already-bound listener (bind
    /// `127.0.0.1:0` and publish `local_addr` to let stages find you)
    /// and answer the ring topology. Blocks until every stage of
    /// `boot` has checked in or the handshake deadline lapses.
    pub fn establish(
        boot: &ExecutionPlan,
        listener: TcpListener,
        cfg: &DistMasterConfig,
    ) -> Result<Self, RuntimeError> {
        let fp = plan_fingerprint(boot);
        let clock = real_clock();
        let master_addr = listener
            .local_addr()
            .map_err(|e| wire_io("master listener has no local address", e))?
            .to_string();
        let cp = establish_control_plane(boot, &listener, fp, &master_addr, &clock)?;
        Ok(Self {
            listener,
            fp,
            n_stages: boot.stages.len(),
            s0_addr: cp.stage_addrs[0].clone(),
            supervisor: cfg.supervisor,
            injector: WireFaultInjector::new(&cfg.wire_faults, MASTER_STAGE),
            clock,
            shared: cp.shared,
            writers: cp.writers,
        })
    }

    /// Per-stage reports collected after the ring said `Bye` (drop the
    /// ring to trigger that); `None` for a stage whose report never
    /// arrived.
    pub fn reports(&self) -> Vec<Option<StageReport>> {
        self.shared.reports.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

impl crate::serve_dist::ServingRing for TcpServingRing {
    fn dial(&mut self, attempt: usize) -> Result<Box<dyn Transport + Send>, String> {
        let (ret, down) = dial_data_ring(
            &self.listener,
            &self.s0_addr,
            self.fp,
            attempt,
            &self.supervisor,
            &self.clock,
        )
        .map_err(|e| e.to_string())?;
        Ok(Box::new(TcpTransport::spawn(
            ret,
            down,
            TcpTransportConfig {
                faults: Some(self.injector.clone()),
                telemetry: None,
                rx_link: self.n_stages,
                tx_link: 0,
                tid: 0,
                clock: self.clock.clone(),
            },
        )))
    }

    fn teardown(&mut self) {
        // Nothing to join: the engine dropping the master link closes
        // both data endpoints, the EOF cascades down the ring, and each
        // stage circles back to accepting the next attempt.
    }

    fn n_stages(&self) -> usize {
        self.n_stages
    }
}

impl Drop for TcpServingRing {
    fn drop(&mut self) {
        for w in &self.writers {
            let _ = write_wire_msg(&mut *w.lock(), &WireMsg::Bye);
        }
        wait_for_reports(&self.shared, self.clock.as_ref(), REPORT_TIMEOUT);
        for w in &self.writers {
            let _ = w.lock().shutdown(Shutdown::Both);
        }
    }
}

/// Run one stage process: bind the data listener, check in with the
/// master, then serve data connections — one per attempt — until the
/// master says `Bye` (graceful: answer with a [`StageReport`]) or the
/// control connection dies (orphaned: exit with an error so process
/// supervisors notice). Blocks for the whole run.
pub fn run_stage(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    n_seqs: usize,
    cfg: &DistStageConfig,
) -> Result<StageSummary, RuntimeError> {
    let s = cfg.stage;
    let n_stages = plan.stages.len();
    let clock = real_clock();
    plan.validate(checkpoint.cfg.n_layers).map_err(RuntimeError::BadPlan)?;
    let sp = plan
        .stages
        .get(s)
        .ok_or_else(|| RuntimeError::BadPlan(format!("stage {s} out of range ({n_stages} stages)")))?;
    let fp = plan_fingerprint(plan);
    let (weights, _loader_stats) =
        load_stage_weights(checkpoint, sp.layer_start, &sp.bits, cfg.rounding, cfg.seed);

    let listener =
        TcpListener::bind(&cfg.listen).map_err(|e| wire_io(&format!("binding {}", cfg.listen), e))?;
    let data_addr = listener
        .local_addr()
        .map_err(|e| wire_io("data listener has no local address", e))?
        .to_string();

    // Check in with the master over the persistent control connection.
    // Jitter seeded by the stage id: a fleet restarting together fans
    // its dials out instead of stampeding the master's listener.
    let mut control = connect_retry(
        &cfg.master,
        40,
        Duration::from_millis(25),
        1.5,
        Duration::from_millis(500),
        s as u64,
    )
    .map_err(|e| wire_io(&format!("dialing master at {}", cfg.master), e))?;
    let _ = control.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let hello = Hello {
        version: WIRE_VERSION,
        role: Role::Control,
        stage: s as u32,
        attempt: 0,
        plan_hash: fp,
        listen_addr: data_addr,
        bits: sp.bits.iter().map(|b| b.bits() as u8).collect(),
    };
    write_wire_msg(&mut control, &WireMsg::Hello(hello))
        .map_err(|e| wire_io("sending control hello", e))?;
    match read_wire_msg(&mut control) {
        Ok(WireMsg::HelloAck(a)) if a.accepted => {}
        Ok(WireMsg::HelloAck(a)) => return Err(RuntimeError::BadPlan(a.reason)),
        Ok(m) => return Err(RuntimeError::Protocol(format!("expected hello-ack, got {m:?}"))),
        Err(e) => return Err(wire_io("reading hello-ack", e)),
    }
    let (next_addr, next_role) = match read_wire_msg(&mut control) {
        Ok(WireMsg::Topology { next_addr, next_role }) => (
            next_addr,
            Role::from_u8(next_role).map_err(|e| RuntimeError::Protocol(e.to_string()))?,
        ),
        Ok(m) => return Err(RuntimeError::Protocol(format!("expected topology, got {m:?}"))),
        Err(e) => return Err(wire_io("reading topology", e)),
    };
    let _ = control.set_read_timeout(None);

    // Control reader: Bye → graceful stop; EOF → orphaned (the master
    // process died — stop too, but say so).
    let stop = Arc::new(AtomicBool::new(false));
    let orphaned = Arc::new(AtomicBool::new(false));
    let mut reader = control.try_clone().map_err(|e| wire_io("cloning control stream", e))?;
    {
        let (stop, orphaned) = (stop.clone(), orphaned.clone());
        std::thread::spawn(move || loop {
            match read_wire_msg(&mut reader) {
                Ok(WireMsg::Bye) => {
                    stop.store(true, Ordering::Release);
                    return;
                }
                Ok(_) => {}
                Err(_) => {
                    orphaned.store(true, Ordering::Release);
                    stop.store(true, Ordering::Release);
                    return;
                }
            }
        });
    }
    let control_w = Arc::new(Mutex::new(control));

    // Local telemetry: this process owns link `s`'s rx side and link
    // `s + 1`'s tx side; both are reported to the master at the end.
    let telemetry = Telemetry::new(n_stages);
    let sink: MetricsSink = Arc::new(Mutex::new(vec![StageMetrics::default(); n_stages]));
    let board = disconnect_board();
    let injector = WireFaultInjector::new(&cfg.wire_faults, s);
    let ctx = WorkerCtx {
        stage: s,
        device: sp.device,
        n_heads: checkpoint.cfg.n_heads,
        hidden: checkpoint.cfg.hidden,
        alibi: checkpoint.cfg.alibi,
        n_seqs,
        injector: None,
        heartbeats: None,
        sink: Some(sink.clone()),
        telemetry: Some(telemetry.clone()),
        bits: bits_label(sp),
        tick: cfg.tick,
        disconnects: Some(board.clone()),
        clock: clock.clone(),
        layer_start: sp.layer_start,
        // Live-swap support: each stage can requantize its own shard from
        // the checkpoint when a PlanPropose arrives (no-op for plain
        // batch runs, which never send one).
        migration: Some(Arc::new(MigrationHost::new(
            checkpoint.clone(),
            cfg.rounding,
            cfg.seed,
        ))),
    };

    let mut attempts_served = 0usize;
    while !stop.load(Ordering::Acquire) {
        // One data connection per attempt.
        let Some(mut up) = accept_until_stopped(&listener, clock.as_ref(), &stop) else { break };
        let _ = up.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let hello = match read_wire_msg(&mut up) {
            Ok(WireMsg::Hello(h)) => h,
            _ => continue, // stray/dead dial; keep serving
        };
        let refusal = if hello.version != WIRE_VERSION {
            Some("wire version mismatch".to_string())
        } else if hello.role != Role::Data {
            Some(format!("unexpected role {:?} on a data listener", hello.role))
        } else if hello.stage as usize != s {
            Some(format!("data connection for stage {} reached stage {s}", hello.stage))
        } else if hello.plan_hash != fp {
            Some("plan hash mismatch".to_string())
        } else {
            None
        };
        let ack = HelloAck {
            version: WIRE_VERSION,
            plan_hash: fp,
            accepted: refusal.is_none(),
            reason: refusal.clone().unwrap_or_default(),
        };
        if write_wire_msg(&mut up, &WireMsg::HelloAck(ack)).is_err() || refusal.is_some() {
            continue;
        }

        // Dial the next hop; its stage may also still be tearing down.
        // Jitter seed mixes stage and attempt so concurrent redials
        // decorrelate while staying reproducible.
        let Ok(mut down) = connect_retry(
            &next_addr,
            40,
            Duration::from_millis(10),
            2.0,
            Duration::from_millis(250),
            ((s as u64) << 32) | hello.attempt as u64,
        ) else {
            continue; // dropping `up` tells upstream this attempt is dead
        };
        let _ = down.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let fwd = Hello {
            version: WIRE_VERSION,
            role: next_role,
            stage: (s + 1) as u32,
            attempt: hello.attempt,
            plan_hash: fp,
            listen_addr: String::new(),
            bits: Vec::new(),
        };
        if write_wire_msg(&mut down, &WireMsg::Hello(fwd)).is_err() {
            continue;
        }
        match read_wire_msg(&mut down) {
            Ok(WireMsg::HelloAck(a)) if a.accepted => {}
            _ => continue,
        }

        let transport = TcpTransport::spawn(
            up,
            down,
            TcpTransportConfig {
                faults: Some(injector.clone()),
                telemetry: Some(telemetry.clone()),
                rx_link: s,
                tx_link: s + 1,
                tid: s + 1,
                clock: clock.clone(),
            },
        )
        .with_control(control_w.clone(), s as u32, HEARTBEAT_WIRE_INTERVAL);
        run_worker_transport(&weights, &ctx, &transport);
        attempts_served += 1;

        // Dropped-item attribution across the process boundary: the wire
        // analog of the in-process disconnect board.
        let drops: Vec<usize> = std::mem::take(&mut *board.lock());
        if !drops.is_empty() {
            let _ = write_wire_msg(&mut *control_w.lock(), &WireMsg::Dropped { stage: s as u32 });
        }
        // `transport` drops here: the downstream connection closes, so
        // the EOF keeps cascading even if this stage saw it first.
    }

    let metrics = sink.lock()[s];
    let rx_link = telemetry.link(s).map(|l| l.snapshot()).unwrap_or_default();
    let tx_link = telemetry.link(s + 1).map(|l| l.snapshot()).unwrap_or_default();
    if orphaned.load(Ordering::Acquire) {
        return Err(RuntimeError::WorkerDied(format!(
            "stage {s}: master control connection lost"
        )));
    }
    let report =
        StageReport { stage: s as u32, metrics, rx_link, tx_link };
    let _ = write_wire_msg(&mut *control_w.lock(), &WireMsg::Report(report));
    let _ = control_w.lock().shutdown(Shutdown::Both);
    Ok(StageSummary { attempts_served, metrics, rx_link, tx_link })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_pipeline;
    use llm_pq::StagePlan;
    use llmpq_model::RefConfig;
    use llmpq_quant::Bitwidth;
    use llmpq_workload::MicrobatchPlan;

    fn model() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    fn plan3() -> ExecutionPlan {
        ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: 1, bits: vec![Bitwidth::Int8] },
                StagePlan { device: 1, layer_start: 1, layer_end: 2, bits: vec![Bitwidth::Fp16] },
            ],
            microbatch: MicrobatchPlan {
                prefill_size: 2,
                prefill_count: 1,
                decode_size: 2,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    fn spawn_stages(
        plan: &ExecutionPlan,
        master_addr: &str,
        n_seqs: usize,
        wire_faults: &WireFaultPlan,
    ) -> Vec<std::thread::JoinHandle<Result<StageSummary, RuntimeError>>> {
        (0..plan.stages.len())
            .map(|s| {
                let plan = plan.clone();
                let cfg = DistStageConfig {
                    stage: s,
                    listen: "127.0.0.1:0".into(),
                    master: master_addr.to_string(),
                    rounding: Rounding::Deterministic,
                    seed: 0,
                    wire_faults: wire_faults.clone(),
                    tick: Duration::from_millis(2),
                };
                std::thread::spawn(move || run_stage(&model(), &plan, n_seqs, &cfg))
            })
            .collect()
    }

    #[test]
    fn distributed_loopback_matches_in_process_tokens() {
        let plan = plan3();
        let prompts = vec![vec![1, 2, 3], vec![9, 8]];
        let n_generate = 5;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stages = spawn_stages(&plan, &addr, prompts.len(), &WireFaultPlan::none());
        let telemetry = Telemetry::new(plan.stages.len());
        let cfg = DistMasterConfig { telemetry: Some(telemetry.clone()), ..Default::default() };
        let out = run_master(&model(), &plan, &prompts, n_generate, &listener, &cfg)
            .expect("distributed run");
        let local = run_pipeline(
            &model(), &plan, &prompts, n_generate, Rounding::Deterministic, 0, None,
        )
        .expect("in-process run");
        assert_eq!(out.tokens, local.tokens, "must be bit-identical to the in-process engine");
        assert_eq!(out.restarts, 0);
        assert!(out.admission.conserves(0), "{:?}", out.admission);
        // Both sides of every link were accounted: the master counted
        // link 0 tx + link n rx itself, the stage reports filled the rest.
        for (i, l) in out.link_stats.iter().enumerate() {
            assert!(l.bytes_tx > 0, "link {i} tx never counted: {l:?}");
            assert!(l.bytes_rx > 0, "link {i} rx never counted: {l:?}");
        }
        // Stage metrics made it across the wire.
        for (i, m) in out.stage_metrics.iter().enumerate() {
            assert!(m.items > 0, "stage {i} reported no items");
        }
        for h in stages {
            let summary = h.join().unwrap().expect("stage exits cleanly");
            assert_eq!(summary.attempts_served, 1);
        }
    }

    #[test]
    fn injected_disconnect_recovers_with_identical_tokens() {
        let plan = plan3();
        let prompts = vec![vec![4, 5, 6], vec![7, 8]];
        let n_generate = 6;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Stage 0's downstream link dies after 4 data frames, mid-run.
        let faults = WireFaultPlan::disconnect_tx(0, 4);
        let stages = spawn_stages(&plan, &addr, prompts.len(), &faults);
        let cfg = DistMasterConfig::default();
        let out = run_master(&model(), &plan, &prompts, n_generate, &listener, &cfg)
            .expect("recovers from the injected drop");
        assert_eq!(out.restarts, 1, "exactly one restart");
        let local = run_pipeline(
            &model(), &plan, &prompts, n_generate, Rounding::Deterministic, 0, None,
        )
        .unwrap();
        assert_eq!(out.tokens, local.tokens, "recovery must not perturb tokens");
        assert!(out.admission.conserves(0), "{:?}", out.admission);
        for h in stages {
            let summary = h.join().unwrap().expect("stage exits cleanly");
            assert!(summary.attempts_served >= 1);
        }
    }

    #[test]
    fn plan_mismatch_is_refused_at_handshake() {
        let plan = plan3();
        let mut other = plan.clone();
        other.stages[0].bits = vec![Bitwidth::Int4]; // different quant config
        let prompts = vec![vec![1, 2]];
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Stage 0 runs the *other* plan.
        let handles: Vec<_> = vec![{
            let cfg = DistStageConfig {
                stage: 0,
                listen: "127.0.0.1:0".into(),
                master: addr.clone(),
                rounding: Rounding::Deterministic,
                seed: 0,
                wire_faults: WireFaultPlan::none(),
                tick: Duration::from_millis(2),
            };
            std::thread::spawn(move || run_stage(&model(), &other, 1, &cfg))
        }];
        let cfg = DistMasterConfig::default();
        let res = run_master(&model(), &plan, &prompts, 3, &listener, &cfg);
        assert!(matches!(res, Err(RuntimeError::BadPlan(_))), "{res:?}");
        for h in handles {
            let res = h.join().unwrap();
            assert!(matches!(res, Err(RuntimeError::BadPlan(_))), "{res:?}");
        }
    }
}

