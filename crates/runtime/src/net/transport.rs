//! The transport abstraction that makes the pipeline engine
//! transport-agnostic.
//!
//! A [`Transport`] is one stage's (or the master's) view of the
//! pipeline: an inbound edge to receive [`WorkerMsg`]s from and an
//! outbound edge to send them to, with crossbeam-channel semantics —
//! bounded-timeout receive (so supervised workers can heartbeat while
//! idle), timeout-aware send that hands the message back for retry
//! under backpressure, and disconnect as a first-class outcome. Two
//! implementations exist:
//!
//! * [`ChannelTransport`] — the original in-process crossbeam pair,
//!   now also accounting per-link byte/frame counters so single-process
//!   runs report the same link telemetry a wire would;
//! * [`TcpTransport`] — real sockets: outbound messages are serialized
//!   into checksummed frames and written directly; inbound frames are
//!   read by a pump thread that validates, decodes and feeds a local
//!   channel, so EOF and poisoned streams surface as exactly the
//!   channel-disconnect the engine already understands.

use super::fault::{WireFaultAction, WireFaultInjector};
use super::frame::{encode_frame, read_frame, FrameError, FRAME_HEADER_BYTES};
use super::wire::{wire_to_worker_msg, worker_msg_to_wire, worker_msg_wire_bytes, WireMsg};
use crate::clock::{real_clock, Clock};
use crate::telemetry::{Span, Telemetry};
use crate::worker::WorkerMsg;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Why a receive produced no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportRecvError {
    /// Nothing arrived within the timeout; the link is still up.
    Timeout,
    /// The upstream endpoint is gone.
    Disconnected,
}

/// Why a send did not complete.
#[derive(Debug)]
pub enum TransportSendError {
    /// No queue space within the timeout — the message is handed back
    /// so the caller can heartbeat and retry without cloning.
    Timeout(WorkerMsg),
    /// The downstream endpoint is gone; the message is lost.
    Disconnected,
}

/// One pipeline endpoint's bidirectional message channel.
pub trait Transport {
    /// Receive the next inbound message, waiting at most `timeout`.
    fn recv_msg(&self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError>;

    /// Send `msg` downstream, waiting at most `timeout` for space.
    fn send_msg(&self, msg: WorkerMsg, timeout: Duration) -> Result<(), TransportSendError>;

    /// Liveness hook, called whenever the owning worker heartbeats. TCP
    /// transports forward it over the control connection (rate-limited);
    /// in-process transports need nothing — the shared heartbeat board
    /// already covers them.
    fn beat(&self) {}
}

// All trait methods take `&self`, so a borrowed transport is itself a
// transport — lets callers thread one link through helpers (e.g. a
// temporary `Master` built for a single swap barrier) without giving up
// ownership.
impl<T: Transport + ?Sized> Transport for &T {
    fn recv_msg(&self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        (**self).recv_msg(timeout)
    }

    fn send_msg(&self, msg: WorkerMsg, timeout: Duration) -> Result<(), TransportSendError> {
        (**self).send_msg(msg, timeout)
    }

    fn beat(&self) {
        (**self).beat()
    }
}

/// The in-process transport: a crossbeam receiver/sender pair, plus
/// optional per-link accounting against a [`Telemetry`] hub so channel
/// runs and TCP runs report comparable link counters.
pub struct ChannelTransport {
    input: Receiver<WorkerMsg>,
    output: Sender<WorkerMsg>,
    telemetry: Option<Arc<Telemetry>>,
    rx_link: usize,
    tx_link: usize,
    clock: Arc<dyn Clock>,
}

impl ChannelTransport {
    /// Plain pair without link accounting.
    pub fn new(input: Receiver<WorkerMsg>, output: Sender<WorkerMsg>) -> Self {
        Self { input, output, telemetry: None, rx_link: 0, tx_link: 0, clock: real_clock() }
    }

    /// Pair with link accounting: received messages count against link
    /// `rx_link`'s rx side, sent messages against `tx_link`'s tx side.
    pub fn observed(
        input: Receiver<WorkerMsg>,
        output: Sender<WorkerMsg>,
        telemetry: Option<Arc<Telemetry>>,
        rx_link: usize,
        tx_link: usize,
    ) -> Self {
        Self { input, output, telemetry, rx_link, tx_link, clock: real_clock() }
    }
}

/// Frame bytes `msg` would occupy on a wire (header + payload).
fn framed_bytes(msg: &WorkerMsg) -> u64 {
    (FRAME_HEADER_BYTES + worker_msg_wire_bytes(msg)) as u64
}

impl Transport for ChannelTransport {
    fn recv_msg(&self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        match self.input.recv_timeout(timeout) {
            Ok(m) => {
                if let Some(l) = self.telemetry.as_ref().and_then(|t| t.link(self.rx_link)) {
                    l.on_rx(framed_bytes(&m));
                }
                Ok(m)
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportRecvError::Disconnected),
        }
    }

    fn send_msg(&self, msg: WorkerMsg, timeout: Duration) -> Result<(), TransportSendError> {
        let bytes = framed_bytes(&msg);
        let t0 = self.clock.now();
        match self.output.send_timeout(msg, timeout) {
            Ok(()) => {
                if let Some(l) = self.telemetry.as_ref().and_then(|t| t.link(self.tx_link)) {
                    l.on_tx(bytes);
                    l.add_comm_us(self.clock.now().saturating_sub(t0).as_micros() as u64);
                }
                Ok(())
            }
            Err(SendTimeoutError::Timeout(m)) => Err(TransportSendError::Timeout(m)),
            Err(SendTimeoutError::Disconnected(_)) => Err(TransportSendError::Disconnected),
        }
    }
}

/// Configuration for a [`TcpTransport`].
pub struct TcpTransportConfig {
    /// Wire-fault injection for this process, if under test.
    pub faults: Option<Arc<WireFaultInjector>>,
    /// Telemetry hub for link counters and comm spans, if observed.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Link index of the inbound edge.
    pub rx_link: usize,
    /// Link index of the outbound edge.
    pub tx_link: usize,
    /// Trace thread id for `"comm"` spans (0 master, stage *s* is `s+1`).
    pub tid: usize,
    /// Time source for injected delays, comm timing and the heartbeat
    /// rate limit.
    pub clock: Arc<dyn Clock>,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self {
            faults: None,
            telemetry: None,
            rx_link: 0,
            tx_link: 0,
            tid: 0,
            clock: real_clock(),
        }
    }
}

struct ControlBeat {
    stream: Arc<Mutex<TcpStream>>,
    stage: u32,
    interval: Duration,
    last: Mutex<Duration>,
}

/// The wire transport: upstream frames are pumped off a socket by a
/// reader thread into a local channel; downstream messages are framed
/// and written directly. Dropping the transport closes the outbound
/// stream, which is how attempt teardown propagates (EOF cascade).
pub struct TcpTransport {
    rx: Receiver<WorkerMsg>,
    tx: Mutex<TcpStream>,
    cfg: TcpTransportConfig,
    control: Option<ControlBeat>,
}

impl TcpTransport {
    /// Wrap an (upstream, downstream) stream pair, spawning the reader
    /// pump for the upstream side. Both streams should be past their
    /// handshake. `Shutdown` and `Protocol` frames arriving upstream are
    /// delivered like any data message; other wire messages on a data
    /// stream are a protocol error and poison the connection.
    pub fn spawn(upstream: TcpStream, downstream: TcpStream, cfg: TcpTransportConfig) -> Self {
        let _ = upstream.set_nodelay(true);
        let _ = downstream.set_nodelay(true);
        let _ = upstream.set_read_timeout(None);
        let (pump_tx, rx) = unbounded();
        let faults = cfg.faults.clone();
        let telemetry = cfg.telemetry.clone();
        let rx_link = cfg.rx_link;
        let clock = cfg.clock.clone();
        std::thread::spawn(move || {
            run_pump(upstream, pump_tx, faults, telemetry, rx_link, clock);
        });
        Self { rx, tx: Mutex::new(downstream), cfg, control: None }
    }

    /// Attach a shared control stream: every rate-limited [`beat`]
    /// writes a `Heartbeat { stage }` frame to it.
    ///
    /// [`beat`]: Transport::beat
    pub fn with_control(
        mut self,
        stream: Arc<Mutex<TcpStream>>,
        stage: u32,
        interval: Duration,
    ) -> Self {
        let last = Mutex::new(self.cfg.clock.now());
        self.control = Some(ControlBeat { stream, stage, interval, last });
        self
    }
}

/// Reader pump: blocking frame reads → validated, decoded messages into
/// the local channel. Exits (dropping the channel sender, i.e. a
/// disconnect for the consumer) on EOF, any framing error, an injected
/// rx `Disconnect`/`Corrupt` fault, or a dead consumer.
fn run_pump(
    mut stream: TcpStream,
    out: Sender<WorkerMsg>,
    faults: Option<Arc<WireFaultInjector>>,
    telemetry: Option<Arc<Telemetry>>,
    rx_link: usize,
    clock: Arc<dyn Clock>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) => {
                if !matches!(e, FrameError::Io(_)) {
                    // Header/checksum damage, not a plain close.
                    if let Some(l) = telemetry.as_ref().and_then(|t| t.link(rx_link)) {
                        l.on_corrupt();
                    }
                }
                return;
            }
        };
        let mut deliveries = 1;
        match faults.as_ref().map_or(WireFaultAction::None, |f| f.on_rx()) {
            WireFaultAction::None => {}
            WireFaultAction::Delay(d) => clock.sleep(d),
            WireFaultAction::Drop => continue,
            WireFaultAction::Duplicate => deliveries = 2,
            WireFaultAction::Corrupt => {
                if let Some(l) = telemetry.as_ref().and_then(|t| t.link(rx_link)) {
                    l.on_corrupt();
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            WireFaultAction::Disconnect => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
        if let Some(l) = telemetry.as_ref().and_then(|t| t.link(rx_link)) {
            l.on_rx((FRAME_HEADER_BYTES + payload.len()) as u64);
        }
        let msg = match WireMsg::decode(&payload).map(wire_to_worker_msg) {
            Ok(Some(m)) => m,
            Ok(None) | Err(_) => {
                // Not a data-plane message: the stream is confused or
                // damaged; poison it.
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        // Mirror the in-process enqueue gauge: the sender lives in
        // another process, so arrival is where this stage's input-queue
        // depth grows.
        if let Some(r) = telemetry.as_ref().and_then(|t| t.stage(rx_link)) {
            for _ in 0..deliveries {
                r.on_enqueue();
            }
        }
        for _ in 0..deliveries {
            if out.send(msg.clone()).is_err() {
                return;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn recv_msg(&self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(TransportRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportRecvError::Disconnected),
        }
    }

    fn send_msg(&self, msg: WorkerMsg, _timeout: Duration) -> Result<(), TransportSendError> {
        // Tags for the comm span, captured before the message is moved.
        let work_tags = match &msg {
            WorkerMsg::Work(i) => Some((i.step, i.microbatch, i.phase)),
            _ => None,
        };
        let t0 = self.cfg.clock.now();
        let start_us = self.cfg.telemetry.as_ref().map(|t| t.now_us());
        let mut frame = encode_frame(&worker_msg_to_wire(msg).encode());
        let mut writes = 1;
        match self.cfg.faults.as_ref().map_or(WireFaultAction::None, |f| f.on_tx()) {
            WireFaultAction::None => {}
            WireFaultAction::Delay(d) => self.cfg.clock.sleep(d),
            WireFaultAction::Drop => return Ok(()), // lost in transit
            WireFaultAction::Duplicate => writes = 2,
            WireFaultAction::Corrupt => {
                // Flip a payload byte *after* checksumming, so the
                // receiver's CRC catches it.
                let last = frame.len() - 1;
                frame[last] ^= 0x01;
            }
            WireFaultAction::Disconnect => {
                let _ = self.tx.lock().shutdown(Shutdown::Both);
                return Err(TransportSendError::Disconnected);
            }
        }
        {
            let mut stream = self.tx.lock();
            for _ in 0..writes {
                if stream.write_all(&frame).and_then(|()| stream.flush()).is_err() {
                    return Err(TransportSendError::Disconnected);
                }
            }
        }
        if let Some(t) = &self.cfg.telemetry {
            let dur_us = self.cfg.clock.now().saturating_sub(t0).as_micros() as u64;
            if let Some(l) = t.link(self.cfg.tx_link) {
                l.on_tx(frame.len() as u64 * writes as u64);
                l.add_comm_us(dur_us);
            }
            if let (Some((step, microbatch, phase)), Some(ts_us)) = (work_tags, start_us) {
                t.record_span(Span {
                    tid: self.cfg.tid,
                    name: "comm",
                    phase,
                    ts_us,
                    dur_us,
                    step,
                    microbatch,
                    bits: Arc::from(""),
                });
            }
        }
        Ok(())
    }

    fn beat(&self) {
        let Some(c) = &self.control else { return };
        {
            let now = self.cfg.clock.now();
            let mut last = c.last.lock();
            if now.saturating_sub(*last) < c.interval {
                return;
            }
            *last = now;
        }
        let frame = encode_frame(&WireMsg::Heartbeat { stage: c.stage }.encode());
        let mut stream = c.stream.lock();
        // A dead control link is not this transport's failure to report:
        // the data path will surface it.
        let _ = stream.write_all(&frame).and_then(|()| stream.flush());
    }
}

/// Write one wire message as a frame. Returns bytes put on the wire.
pub fn write_wire_msg<W: Write>(w: &mut W, msg: &WireMsg) -> Result<usize, super::wire::WireError> {
    let frame = encode_frame(&msg.encode());
    w.write_all(&frame).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)?;
    Ok(frame.len())
}

/// Read one wire message from a framed stream.
pub fn read_wire_msg<R: io::Read>(r: &mut R) -> Result<WireMsg, super::wire::WireError> {
    WireMsg::decode(&read_frame(r)?)
}

/// Dial `addr` with retry and jittered exponential backoff: up to
/// `attempts` tries; between them the nominal delay grows `base ×
/// factor^k` (capped at `cap`) but the actual sleep is *equal-jitter* —
/// `delay/2` plus a seeded pseudo-random slice of the other half — so
/// many stages redialing a restarted master spread out instead of
/// stampeding in lockstep. The jitter is a deterministic function of
/// `jitter_seed` (callers derive it from stage/attempt identity), which
/// keeps retry timing reproducible for a given topology — no unseeded
/// randomness, per the simulation determinism contract. Returns the
/// last error if every try fails.
pub fn connect_retry(
    addr: &str,
    attempts: usize,
    base: Duration,
    factor: f64,
    cap: Duration,
    jitter_seed: u64,
) -> io::Result<TcpStream> {
    // SplitMix64: tiny, seedable, good enough to decorrelate dialers.
    let mut state = jitter_seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut delay = base;
    let mut last_err = io::Error::new(io::ErrorKind::InvalidInput, "zero connect attempts");
    for i in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last_err = e,
        }
        if i + 1 < attempts.max(1) {
            let half = delay / 2;
            let span_us = half.as_micros() as u64 + 1;
            std::thread::sleep(half + Duration::from_micros(next() % span_us));
            delay = delay.mul_f64(factor).min(cap);
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::fault::{WireFaultEvent, WireFaultKind, WireFaultPlan, WireDir};
    use crate::worker::WorkItem;
    use llmpq_model::{Matrix, Phase};
    use std::net::TcpListener;

    fn work(step: u64) -> WorkerMsg {
        WorkerMsg::Work(WorkItem {
            step,
            microbatch: 0,
            phase: Phase::Decode,
            sent_us: 0,
            epoch: 0,
            seqs: vec![(0, Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]))],
        })
    }

    fn tick() -> Duration {
        Duration::from_millis(200)
    }

    /// Loopback socket pair (a → b).
    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn channel_transport_counts_link_bytes() {
        let tel = Telemetry::new(1);
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let t = ChannelTransport::observed(rx0, tx1, Some(tel.clone()), 0, 1);
        tx0.send(work(0)).unwrap();
        let got = t.recv_msg(tick()).unwrap();
        assert!(matches!(got, WorkerMsg::Work(_)));
        t.send_msg(work(1), tick()).unwrap();
        assert!(matches!(rx1.recv().unwrap(), WorkerMsg::Work(_)));
        let s0 = tel.link(0).unwrap().snapshot();
        let s1 = tel.link(1).unwrap().snapshot();
        assert_eq!(s0.frames_rx, 1);
        assert_eq!(s1.frames_tx, 1);
        assert_eq!(s0.bytes_rx, s1.bytes_tx, "same message shape both ways");
        assert!(s0.bytes_rx > FRAME_HEADER_BYTES as u64);
        drop(tx0);
        assert!(matches!(t.recv_msg(tick()), Err(TransportRecvError::Disconnected)));
    }

    #[test]
    fn tcp_transport_round_trips_messages() {
        // a ── work ──▶ b (echo server over raw frames) ── back ──▶ a
        let (up_a, down_b) = pair(); // b writes, a's pump reads
        let (down_a, up_b) = pair(); // a writes, b reads raw
        let tel = Telemetry::new(1);
        let t = TcpTransport::spawn(
            up_a,
            down_a,
            TcpTransportConfig { telemetry: Some(tel.clone()), rx_link: 0, tx_link: 1, ..Default::default() },
        );
        // Echo thread: raw frame read on b, write back unchanged.
        std::thread::spawn(move || {
            let mut r = up_b;
            let mut w = down_b;
            while let Ok(p) = read_frame(&mut r) {
                let _ = w.write_all(&encode_frame(&p));
            }
        });
        t.send_msg(work(7), tick()).unwrap();
        let got = t.recv_msg(Duration::from_secs(5)).expect("echoed back");
        let WorkerMsg::Work(i) = got else { panic!("work expected") };
        assert_eq!(i.step, 7);
        let s1 = tel.link(1).unwrap().snapshot();
        let s0 = tel.link(0).unwrap().snapshot();
        assert_eq!(s1.frames_tx, 1);
        assert_eq!(s0.frames_rx, 1);
        assert_eq!(s1.bytes_tx, s0.bytes_rx);
        // One comm span was traced for the Work send.
        assert!(tel.spans().iter().any(|s| s.name == "comm" && s.step == 7));
    }

    #[test]
    fn tcp_eof_surfaces_as_disconnect() {
        let (up_a, down_b) = pair();
        let (down_a, _up_b) = pair();
        let t = TcpTransport::spawn(up_a, down_a, TcpTransportConfig::default());
        drop(down_b); // peer closes → pump EOF → channel disconnect
        let mut waited = Duration::ZERO;
        loop {
            match t.recv_msg(tick()) {
                Err(TransportRecvError::Disconnected) => break,
                Err(TransportRecvError::Timeout) => {
                    waited += tick();
                    assert!(waited < Duration::from_secs(10), "disconnect never surfaced");
                }
                Ok(m) => panic!("unexpected message {m:?}"),
            }
        }
    }

    #[test]
    fn corrupt_tx_fault_is_detected_by_receiver_crc() {
        let (up_a, down_b) = pair();
        let (down_a, mut up_b) = pair();
        let plan = WireFaultPlan {
            events: vec![WireFaultEvent {
                stage: 2,
                dir: WireDir::Tx,
                after_frames: 0,
                kind: WireFaultKind::CorruptFrame,
            }],
        };
        let t = TcpTransport::spawn(
            up_a,
            down_a,
            TcpTransportConfig { faults: Some(WireFaultInjector::new(&plan, 2)), ..Default::default() },
        );
        drop(down_b);
        t.send_msg(work(0), tick()).unwrap(); // corrupted on the wire
        let err = read_frame(&mut up_b).expect_err("CRC must fail");
        assert!(matches!(err, FrameError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn duplicate_rx_fault_delivers_twice() {
        let (up_a, mut down_b) = pair();
        let (down_a, _up_b) = pair();
        let plan = WireFaultPlan {
            events: vec![WireFaultEvent {
                stage: 0,
                dir: WireDir::Rx,
                after_frames: 0,
                kind: WireFaultKind::DuplicateFrame,
            }],
        };
        let t = TcpTransport::spawn(
            up_a,
            down_a,
            TcpTransportConfig { faults: Some(WireFaultInjector::new(&plan, 0)), ..Default::default() },
        );
        down_b.write_all(&encode_frame(&worker_msg_to_wire(work(3)).encode())).unwrap();
        for copy in 0..2 {
            let got = t.recv_msg(Duration::from_secs(5)).unwrap_or_else(|e| panic!("copy {copy}: {e:?}"));
            assert!(matches!(got, WorkerMsg::Work(i) if i.step == 3));
        }
    }

    #[test]
    fn connect_retry_eventually_reaches_late_listener() {
        // Reserve a port, close it, re-bind it shortly after — the dial
        // must survive the gap via its backoff loop.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept();
        });
        let got = connect_retry(
            &addr.to_string(),
            50,
            Duration::from_millis(5),
            2.0,
            Duration::from_millis(40),
            7,
        );
        assert!(got.is_ok(), "{got:?}");
        handle.join().unwrap();
    }

    #[test]
    fn connect_retry_reports_last_error() {
        // A port nothing listens on (bound then dropped; immediate
        // refusals, bounded retries).
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        let got =
            connect_retry(&addr, 3, Duration::from_millis(1), 2.0, Duration::from_millis(4), 7);
        assert!(got.is_err());
    }
}
