//! Deterministic transport-level fault injection.
//!
//! The process-level [`FaultPlan`](crate::fault::FaultPlan) breaks
//! *stages* (crash, hang, straggler); this module breaks the *wire*
//! between them: frames can be delayed, dropped, duplicated, corrupted
//! in flight (and then caught by the frame CRC), or the connection cut
//! outright. Events fire on a per-process frame ordinal and are
//! consumed exactly once, so an injected mid-run disconnect produces one
//! failed attempt and the retry goes through clean — the recovery
//! scenario the distributed integration test exercises.
//!
//! Plans serialize to JSON (`llmpq-dist --wire-fault wire.json`); every
//! process of a distributed run can be handed the same file and picks
//! out the events targeting its own stage.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stage id wire-fault events use to target the master process.
pub const MASTER_STAGE: usize = usize::MAX;

/// Which side of the process's transport the fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireDir {
    /// Outbound (downstream data) frames.
    Tx,
    /// Inbound (upstream data) frames.
    Rx,
}

/// What goes wrong on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WireFaultKind {
    /// The frame is held back for `ms` milliseconds before proceeding.
    Delay {
        /// Added latency in milliseconds.
        ms: u64,
    },
    /// The frame vanishes in transit: the pipeline stalls until the
    /// supervisor's progress timeout notices.
    DropFrame,
    /// The frame is delivered twice; receivers deduplicate by step id.
    DuplicateFrame,
    /// One payload byte is flipped after checksumming: the receiver's
    /// CRC-32 rejects the frame and poisons the connection.
    CorruptFrame,
    /// The connection is shut down mid-stream — the EOF cascades through
    /// the pipeline and surfaces as a disconnect at the master.
    Disconnect,
}

/// One scheduled wire fault: fires in the process running `stage` when
/// its `dir`-side data-frame counter reaches `after_frames`
/// (handshake frames are not counted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireFaultEvent {
    /// Target process: a pipeline stage index, or [`MASTER_STAGE`].
    pub stage: usize,
    /// Transport side the fault applies to.
    pub dir: WireDir,
    /// 0-based data-frame ordinal at which the fault fires.
    pub after_frames: u64,
    /// The failure mode.
    pub kind: WireFaultKind,
}

/// A deterministic schedule of wire faults for one distributed run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireFaultPlan {
    /// The scheduled faults, each consumed at most once.
    pub events: Vec<WireFaultEvent>,
}

impl WireFaultPlan {
    /// Plan with no wire faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Cut `stage`'s downstream connection after it has sent `frames`
    /// data frames — the canonical mid-run connection-drop scenario.
    pub fn disconnect_tx(stage: usize, frames: u64) -> Self {
        Self {
            events: vec![WireFaultEvent {
                stage,
                dir: WireDir::Tx,
                after_frames: frames,
                kind: WireFaultKind::Disconnect,
            }],
        }
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the `--wire-fault` JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("wire-fault plans are serializable")
    }

    /// Parse a `--wire-fault` file.
    pub fn from_json(s: &str) -> Result<WireFaultPlan, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// What the transport must do with the frame at hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFaultAction {
    /// Business as usual.
    None,
    /// Sleep this long first, then transfer normally.
    Delay(Duration),
    /// Discard the frame silently.
    Drop,
    /// Transfer the frame twice.
    Duplicate,
    /// Flip a payload byte (tx) / treat the frame as corrupt (rx).
    Corrupt,
    /// Shut the connection down.
    Disconnect,
}

/// Per-process wire-fault state: holds the events targeting one stage
/// and the tx/rx data-frame counters they key on. Counters persist
/// across attempt restarts (they are per *process*, like a real flaky
/// NIC), and each event is one-shot.
#[derive(Debug)]
pub struct WireFaultInjector {
    events: Vec<WireFaultEvent>,
    consumed: Vec<AtomicBool>,
    tx_frames: AtomicU64,
    rx_frames: AtomicU64,
}

impl WireFaultInjector {
    /// Injector over the events of `plan` that target `stage`.
    pub fn new(plan: &WireFaultPlan, stage: usize) -> Arc<Self> {
        let events: Vec<WireFaultEvent> =
            plan.events.iter().filter(|e| e.stage == stage).copied().collect();
        Arc::new(Self {
            consumed: events.iter().map(|_| AtomicBool::new(false)).collect(),
            events,
            tx_frames: AtomicU64::new(0),
            rx_frames: AtomicU64::new(0),
        })
    }

    fn on(&self, dir: WireDir, counter: &AtomicU64) -> WireFaultAction {
        let ordinal = counter.fetch_add(1, Ordering::SeqCst);
        for (i, e) in self.events.iter().enumerate() {
            if e.dir != dir || e.after_frames != ordinal {
                continue;
            }
            if self.consumed[i].swap(true, Ordering::SeqCst) {
                continue;
            }
            return match e.kind {
                WireFaultKind::Delay { ms } => WireFaultAction::Delay(Duration::from_millis(ms)),
                WireFaultKind::DropFrame => WireFaultAction::Drop,
                WireFaultKind::DuplicateFrame => WireFaultAction::Duplicate,
                WireFaultKind::CorruptFrame => WireFaultAction::Corrupt,
                WireFaultKind::Disconnect => WireFaultAction::Disconnect,
            };
        }
        WireFaultAction::None
    }

    /// Decide the fate of the outbound data frame about to be written.
    pub fn on_tx(&self) -> WireFaultAction {
        self.on(WireDir::Tx, &self.tx_frames)
    }

    /// Decide the fate of the inbound data frame just read.
    pub fn on_rx(&self) -> WireFaultAction {
        self.on(WireDir::Rx, &self.rx_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_at_their_ordinal() {
        let plan = WireFaultPlan::disconnect_tx(1, 2);
        let inj = WireFaultInjector::new(&plan, 1);
        assert_eq!(inj.on_tx(), WireFaultAction::None); // frame 0
        assert_eq!(inj.on_rx(), WireFaultAction::None, "rx counter is separate");
        assert_eq!(inj.on_tx(), WireFaultAction::None); // frame 1
        assert_eq!(inj.on_tx(), WireFaultAction::Disconnect); // frame 2
        assert_eq!(inj.on_tx(), WireFaultAction::None, "one-shot");
    }

    #[test]
    fn events_for_other_stages_are_filtered_out() {
        let plan = WireFaultPlan::disconnect_tx(1, 0);
        let inj = WireFaultInjector::new(&plan, 0);
        assert_eq!(inj.on_tx(), WireFaultAction::None);
    }

    #[test]
    fn all_kinds_map_to_actions() {
        let kinds = [
            (WireFaultKind::Delay { ms: 7 }, WireFaultAction::Delay(Duration::from_millis(7))),
            (WireFaultKind::DropFrame, WireFaultAction::Drop),
            (WireFaultKind::DuplicateFrame, WireFaultAction::Duplicate),
            (WireFaultKind::CorruptFrame, WireFaultAction::Corrupt),
            (WireFaultKind::Disconnect, WireFaultAction::Disconnect),
        ];
        for (kind, want) in kinds {
            let plan = WireFaultPlan {
                events: vec![WireFaultEvent { stage: 3, dir: WireDir::Rx, after_frames: 0, kind }],
            };
            let inj = WireFaultInjector::new(&plan, 3);
            assert_eq!(inj.on_rx(), want, "{kind:?}");
        }
    }

    #[test]
    fn json_round_trip() {
        let plan = WireFaultPlan {
            events: vec![
                WireFaultEvent {
                    stage: MASTER_STAGE,
                    dir: WireDir::Tx,
                    after_frames: 5,
                    kind: WireFaultKind::Delay { ms: 20 },
                },
                WireFaultEvent {
                    stage: 1,
                    dir: WireDir::Rx,
                    after_frames: 0,
                    kind: WireFaultKind::CorruptFrame,
                },
            ],
        };
        let back = WireFaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }
}
