//! Elastic fleet control: an autoscaling loop that watches cluster
//! membership (device join / leave / degrade), decides *whether and
//! when* to replan through a pluggable [`ReplanPolicy`], and applies the
//! new plan through the two-phase live-migration barrier
//! ([`crate::migrate`]) — scale-out and scale-in without a restart.
//!
//! The [`FleetController`] is a synchronous state machine so the same
//! code runs under the deterministic simulation harness
//! ([`crate::simnet`] `--elastic` mode), the root `tests/elastic.rs`
//! integration scenarios and a real supervised deployment:
//!
//! ```text
//!          fleet event                debounce/cooldown pass
//!  Idle ──────────────▶ Debouncing ─────────────────────▶ Planning
//!    ▲                      │  flap suppressed                │ planner Ok
//!    │◀─────────────────────┘  (alarm, hold old plan)         ▼
//!    │   abort (alarm) ◀──────────────────────────────── Migrating
//!    │◀─ Cooldown ◀── commit ────────────────────────────────┘
//! ```
//!
//! * **Debouncing** batches near-simultaneous deltas (a rack powering
//!   on delivers N joins in one replan, not N migrations).
//! * **Cooldown + hysteresis** defend against flapping: a device that
//!   keeps toggling join/leave inside the flap window is quarantined —
//!   its events stop triggering replans (counted in
//!   [`FleetAlarms::flap_suppressed`]) until it holds still.
//! * **Planning** is delegated to an [`ElasticPlanner`]: the structural
//!   [`EvenSplitPlanner`] for simulation, or the warm-started
//!   incremental Algorithm-1 planner (`llm_pq::IncrementalPlanner`)
//!   wired in by the CLI. A planner failure is *typed*
//!   ([`PlanFailure`]): the controller holds the old, still-serving
//!   plan and raises [`FleetAlarms::infeasible_fleet`] — it never
//!   panics and never commits a plan referencing a dead device.
//! * **Migrating** hands the target plan to the driver, which runs the
//!   §14 prepare/commit barrier. A device lost mid-migration makes the
//!   controller emit [`ControllerCommand::AbortMigration`]; the old
//!   plan keeps serving and the loss joins the next debounce batch.

use llm_pq::ExecutionPlan;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// One observed change in cluster membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetEventKind {
    /// A device became available for placement.
    Join,
    /// A device left (graceful drain or permanent failure — the
    /// controller treats both as "not placeable").
    Leave,
    /// A device is still alive but running at reduced capability
    /// (thermal throttle, ECC degradation): replan, don't evict.
    Degrade,
}

/// A membership event, stamped with the (virtual or wall) time it was
/// observed at, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Stable cluster device id.
    pub device: usize,
    /// What happened.
    pub kind: FleetEventKind,
    /// Observation time, µs.
    pub at_us: u64,
}

/// Typed planner failure. The controller maps every variant to
/// "hold the old plan + raise an alarm"; the variants exist so
/// telemetry and operators can tell *why* the fleet can't be replanned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanFailure {
    /// No live devices remain.
    NoDevices,
    /// The survivors cannot hold the model even at the lowest
    /// quantization rung.
    Infeasible {
        /// Live devices the planner had to work with.
        devices: usize,
        /// Solver/heuristic diagnostics.
        reason: String,
    },
    /// Any other planner error (bad config, internal failure).
    Other(String),
}

impl std::fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanFailure::NoDevices => write!(f, "no live devices to plan on"),
            PlanFailure::Infeasible { devices, reason } => {
                write!(f, "infeasible on {devices} device(s): {reason}")
            }
            PlanFailure::Other(e) => write!(f, "planner error: {e}"),
        }
    }
}

/// The controller's view of the fleet, handed to the planner.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// Devices currently placeable.
    pub live: &'a BTreeSet<usize>,
    /// Subset of `live` running degraded.
    pub degraded: &'a BTreeSet<usize>,
    /// The committed plan still serving.
    pub current: &'a ExecutionPlan,
}

/// Produces an execution plan for the current fleet. Implementations
/// range from the structural [`EvenSplitPlanner`] (no cost model, used
/// by the simulation) to the warm-started incremental Algorithm-1
/// planner the CLI injects (`llm_pq::IncrementalPlanner` — kept behind
/// this trait so the runtime crate stays decoupled from the cost
/// database plumbing).
pub trait ElasticPlanner {
    /// Plan onto exactly the live devices in `view`. The returned
    /// plan's device ids must be a subset of `view.live` — the
    /// controller re-checks and refuses to migrate otherwise.
    fn plan(&mut self, view: &FleetView<'_>) -> Result<ExecutionPlan, PlanFailure>;
}

/// What the policy wants done with the pending delta batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Not yet — re-ask at (or after) `until_us`.
    Wait {
        /// Earliest time the verdict can change, µs.
        until_us: u64,
    },
    /// The batch is stable and out of cooldown: plan now.
    Replan,
    /// `device` is flapping: drop its pending events, re-examine the
    /// fleet at `recheck_us` if nothing else triggers first.
    Suppress {
        /// The quarantined device.
        device: usize,
        /// When its quarantine window expires, µs.
        recheck_us: u64,
    },
}

/// Decides *when* a batch of membership deltas becomes a replan.
/// Stateful: sees every event, is told about commits (for cooldown),
/// and is polled by the controller's `tick`.
pub trait ReplanPolicy {
    /// Observe one membership event (called before `decide`).
    fn observe(&mut self, ev: &FleetEvent);
    /// Decide what to do with the currently pending events.
    fn decide(&mut self, pending: &[FleetEvent], now_us: u64) -> PolicyVerdict;
    /// A replan committed: start the cooldown clock.
    fn note_committed(&mut self, now_us: u64);
    /// End of the current cooldown window, µs (0 = not cooling down).
    fn cooldown_until(&self) -> u64;
}

/// The default policy: debounce + cooldown + per-device flap
/// hysteresis.
#[derive(Debug, Clone)]
pub struct DebouncedPolicy {
    /// Quiet period after the *last* event before planning — batches
    /// near-simultaneous deltas into one replan.
    pub debounce_us: u64,
    /// Minimum spacing after a committed replan before the next one.
    pub cooldown_us: u64,
    /// Sliding window for flap detection.
    pub flap_window_us: u64,
    /// Join/leave toggles within the window that quarantine a device.
    pub flap_max_toggles: u32,
    last_event_us: u64,
    cooldown_until_us: u64,
    toggles: HashMap<usize, VecDeque<u64>>,
}

impl DebouncedPolicy {
    /// Policy with the given windows (all µs).
    pub fn new(debounce_us: u64, cooldown_us: u64, flap_window_us: u64, flap_max_toggles: u32) -> Self {
        Self {
            debounce_us,
            cooldown_us,
            flap_window_us,
            flap_max_toggles,
            last_event_us: 0,
            cooldown_until_us: 0,
            toggles: HashMap::new(),
        }
    }

    /// Defaults tuned for the simulation harness: 20 ms debounce,
    /// 200 ms cooldown, 500 ms flap window, 3 toggles.
    pub fn sim_default() -> Self {
        Self::new(20_000, 200_000, 500_000, 3)
    }

    fn flapping(&self, device: usize, now_us: u64) -> Option<u64> {
        let t = self.toggles.get(&device)?;
        let cutoff = now_us.saturating_sub(self.flap_window_us);
        let recent = t.iter().filter(|&&at| at >= cutoff).count() as u32;
        if recent >= self.flap_max_toggles {
            // Quarantine until the window has slid past the latest toggle.
            t.back().map(|&last| last + self.flap_window_us)
        } else {
            None
        }
    }
}

impl ReplanPolicy for DebouncedPolicy {
    fn observe(&mut self, ev: &FleetEvent) {
        self.last_event_us = self.last_event_us.max(ev.at_us);
        if matches!(ev.kind, FleetEventKind::Join | FleetEventKind::Leave) {
            let t = self.toggles.entry(ev.device).or_default();
            t.push_back(ev.at_us);
            while t.len() > 16 {
                t.pop_front();
            }
        }
    }

    fn decide(&mut self, pending: &[FleetEvent], now_us: u64) -> PolicyVerdict {
        // Hysteresis first: a flapping device must not hold the whole
        // fleet hostage — suppress it, then re-decide on the rest.
        for ev in pending {
            if let Some(recheck_us) = self.flapping(ev.device, now_us) {
                return PolicyVerdict::Suppress { device: ev.device, recheck_us };
            }
        }
        let gate = (self.last_event_us + self.debounce_us).max(self.cooldown_until_us);
        if now_us < gate {
            PolicyVerdict::Wait { until_us: gate }
        } else {
            PolicyVerdict::Replan
        }
    }

    fn note_committed(&mut self, now_us: u64) {
        self.cooldown_until_us = now_us + self.cooldown_us;
    }

    fn cooldown_until(&self) -> u64 {
        self.cooldown_until_us
    }
}

/// Fleet-health alarm counters — the operator-facing signal that the
/// control loop is holding the old plan instead of migrating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetAlarms {
    /// Replans refused because the survivors cannot hold the model even
    /// at the lowest rung (typed [`PlanFailure::Infeasible`] /
    /// [`PlanFailure::NoDevices`]); the old plan stays in force.
    pub infeasible_fleet: u64,
    /// Migrations aborted back to the still-serving old plan (device
    /// lost mid-barrier, or the driver reported a barrier failure).
    pub aborted_migrations: u64,
    /// Pending events dropped because their device was flapping.
    pub flap_suppressed: u64,
    /// Planner errors that were neither infeasibility nor emptiness.
    pub planner_errors: u64,
}

/// Where the controller is in its replan lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerState {
    /// No pending membership deltas.
    Idle,
    /// Deltas pending; the policy hasn't released them yet.
    Debouncing,
    /// Planner running (transient: `tick` enters and leaves it in one
    /// call, but the state is distinct so drivers and the decision log
    /// can observe it).
    Planning,
    /// A target plan is in the two-phase barrier; awaiting
    /// [`FleetController::migration_resolved`].
    Migrating,
    /// A replan just committed; the policy's cooldown gates the next.
    Cooldown,
}

/// An instruction to the driver that owns the data plane.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerCommand {
    /// Run the two-phase migration barrier to `target`; report the
    /// outcome via [`FleetController::migration_resolved`].
    BeginMigration {
        /// The plan to migrate to (devices ⊆ live set).
        target: ExecutionPlan,
    },
    /// Abort the in-flight migration (a device it needed was lost);
    /// the driver must resolve with `committed = false`.
    AbortMigration {
        /// The device whose loss poisoned the barrier.
        device: usize,
    },
}

/// The autoscaling control loop (module docs above). Drive it with
/// [`on_event`](Self::on_event) as membership changes arrive and
/// [`tick`](Self::tick) on a timer; execute the returned
/// [`ControllerCommand`]s against the data plane and report migration
/// outcomes back via [`migration_resolved`](Self::migration_resolved).
pub struct FleetController {
    planner: Box<dyn ElasticPlanner>,
    policy: Box<dyn ReplanPolicy>,
    live: BTreeSet<usize>,
    degraded: BTreeSet<usize>,
    plan: ExecutionPlan,
    state: ControllerState,
    pending: Vec<FleetEvent>,
    inflight: Option<ExecutionPlan>,
    alarms: FleetAlarms,
    commits: u64,
    /// Live set snapshot at the moment each plan committed — the
    /// elasticity invariant ("committed plans reference only live
    /// devices") is checked against these.
    planned_live: BTreeSet<usize>,
    recheck_at_us: Option<u64>,
    log: Vec<String>,
}

impl FleetController {
    /// Controller serving `initial_plan` on the devices in `live`.
    pub fn new(
        planner: Box<dyn ElasticPlanner>,
        policy: Box<dyn ReplanPolicy>,
        live: impl IntoIterator<Item = usize>,
        initial_plan: ExecutionPlan,
    ) -> Self {
        let live: BTreeSet<usize> = live.into_iter().collect();
        Self {
            planner,
            policy,
            planned_live: live.clone(),
            live,
            degraded: BTreeSet::new(),
            plan: initial_plan,
            state: ControllerState::Idle,
            pending: Vec::new(),
            inflight: None,
            alarms: FleetAlarms::default(),
            commits: 0,
            recheck_at_us: None,
            log: Vec::new(),
        }
    }

    /// The committed plan currently in force.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Devices currently placeable.
    pub fn live(&self) -> &BTreeSet<usize> {
        &self.live
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ControllerState {
        self.state
    }

    /// Fleet-health alarms raised so far.
    pub fn alarms(&self) -> FleetAlarms {
        self.alarms
    }

    /// Replans committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Decision log (human-readable, for tests and operator dumps).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// The elasticity invariant: every device the committed plan uses
    /// was live at commit time *and* is live now.
    pub fn plan_is_live(&self) -> bool {
        self.plan
            .stages
            .iter()
            .all(|s| self.planned_live.contains(&s.device) && self.live.contains(&s.device))
    }

    /// Whether the plan's devices were all live at the moment it
    /// committed (the half of the invariant that must *always* hold —
    /// devices may legitimately die after commit, which is what the
    /// next replan is for).
    pub fn plan_was_live_at_commit(&self) -> bool {
        self.plan.stages.iter().all(|s| self.planned_live.contains(&s.device))
    }

    fn note(&mut self, at_us: u64, msg: String) {
        self.log.push(format!("[{at_us}us] {msg}"));
    }

    /// Feed one membership event. Returns a command when the event
    /// poisons an in-flight migration.
    pub fn on_event(&mut self, ev: FleetEvent) -> Option<ControllerCommand> {
        match ev.kind {
            FleetEventKind::Join => {
                self.live.insert(ev.device);
                self.degraded.remove(&ev.device);
            }
            FleetEventKind::Leave => {
                self.live.remove(&ev.device);
                self.degraded.remove(&ev.device);
            }
            FleetEventKind::Degrade => {
                if self.live.contains(&ev.device) {
                    self.degraded.insert(ev.device);
                }
            }
        }
        self.policy.observe(&ev);
        self.pending.push(ev);
        self.note(ev.at_us, format!("event: {:?} device {}", ev.kind, ev.device));
        if self.state == ControllerState::Migrating {
            if ev.kind == FleetEventKind::Leave {
                let poisoned = self
                    .inflight
                    .as_ref()
                    .is_some_and(|t| t.stages.iter().any(|s| s.device == ev.device))
                    || self.plan.stages.iter().any(|s| s.device == ev.device);
                if poisoned {
                    self.note(
                        ev.at_us,
                        format!("device {} lost mid-migration: aborting the barrier", ev.device),
                    );
                    return Some(ControllerCommand::AbortMigration { device: ev.device });
                }
            }
            return None;
        }
        if matches!(self.state, ControllerState::Idle | ControllerState::Cooldown) {
            self.state = ControllerState::Debouncing;
        }
        None
    }

    /// Poll the policy and, when it releases the pending batch, run the
    /// planner and hand back a migration command. Call on a timer (or
    /// after every event in an event-driven harness).
    pub fn tick(&mut self, now_us: u64) -> Option<ControllerCommand> {
        // A quarantine expired: if membership drifted from what the
        // committed plan was built for, synthesize a recheck so the
        // stabilized device is finally integrated (or routed around).
        if let Some(at) = self.recheck_at_us {
            if now_us >= at
                && matches!(self.state, ControllerState::Idle | ControllerState::Cooldown)
            {
                self.recheck_at_us = None;
                if self.live != self.planned_live {
                    self.note(now_us, "flap quarantine expired with drifted membership: recheck".into());
                    self.state = ControllerState::Debouncing;
                }
            }
        }
        if self.state == ControllerState::Cooldown
            && now_us >= self.policy.cooldown_until()
        {
            self.state = if self.pending.is_empty() {
                ControllerState::Idle
            } else {
                ControllerState::Debouncing
            };
        }
        if self.state != ControllerState::Debouncing {
            return None;
        }
        loop {
            match self.policy.decide(&self.pending, now_us) {
                PolicyVerdict::Wait { .. } => return None,
                PolicyVerdict::Suppress { device, recheck_us } => {
                    let before = self.pending.len();
                    self.pending.retain(|e| e.device != device);
                    self.alarms.flap_suppressed += (before - self.pending.len()) as u64;
                    self.recheck_at_us =
                        Some(self.recheck_at_us.map_or(recheck_us, |r| r.max(recheck_us)));
                    self.note(
                        now_us,
                        format!("device {device} is flapping: suppressed its pending events"),
                    );
                    if self.pending.is_empty() {
                        self.state = ControllerState::Idle;
                        return None;
                    }
                }
                PolicyVerdict::Replan => return self.run_planner(now_us),
            }
        }
    }

    fn run_planner(&mut self, now_us: u64) -> Option<ControllerCommand> {
        self.state = ControllerState::Planning;
        let view = FleetView {
            live: &self.live,
            degraded: &self.degraded,
            current: &self.plan,
        };
        match self.planner.plan(&view) {
            Ok(target) => {
                if !target.stages.iter().all(|s| self.live.contains(&s.device)) {
                    self.alarms.planner_errors += 1;
                    self.note(now_us, "planner returned a plan using a dead device: held old plan".into());
                    self.pending.clear();
                    self.state = ControllerState::Idle;
                    return None;
                }
                self.pending.clear();
                self.inflight = Some(target.clone());
                self.state = ControllerState::Migrating;
                self.note(
                    now_us,
                    format!("planned onto {} device(s): migrating", target.stages.len()),
                );
                Some(ControllerCommand::BeginMigration { target })
            }
            Err(failure) => {
                match &failure {
                    PlanFailure::NoDevices | PlanFailure::Infeasible { .. } => {
                        self.alarms.infeasible_fleet += 1;
                    }
                    PlanFailure::Other(_) => self.alarms.planner_errors += 1,
                }
                self.note(now_us, format!("replan failed ({failure}): holding old plan"));
                self.pending.clear();
                self.state = ControllerState::Idle;
                None
            }
        }
    }

    /// The driver finished (or aborted) the migration barrier.
    /// `committed = true` installs the in-flight target as the plan in
    /// force; `false` keeps the old plan serving and raises the abort
    /// alarm. Either way, deltas that arrived mid-barrier go back into
    /// the debounce batch.
    pub fn migration_resolved(&mut self, committed: bool, now_us: u64) {
        debug_assert_eq!(self.state, ControllerState::Migrating);
        if committed {
            if let Some(target) = self.inflight.take() {
                self.plan = target;
                self.planned_live = self.live.clone();
                self.commits += 1;
                self.policy.note_committed(now_us);
                self.note(now_us, format!("migration committed (replan #{})", self.commits));
            }
            self.state = ControllerState::Cooldown;
        } else {
            self.inflight = None;
            self.alarms.aborted_migrations += 1;
            self.note(now_us, "migration aborted: old plan still serving".into());
            self.state = if self.pending.is_empty() {
                ControllerState::Idle
            } else {
                ControllerState::Debouncing
            };
        }
    }
}

impl std::fmt::Debug for FleetController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetController")
            .field("state", &self.state)
            .field("live", &self.live)
            .field("pending", &self.pending.len())
            .field("commits", &self.commits)
            .field("alarms", &self.alarms)
            .finish_non_exhaustive()
    }
}

/// Structural planner for the simulation harness and controller tests:
/// splits `n_layers` evenly across the live devices (in id order),
/// capping each device at [`max_layers_per_device`] layers — degraded
/// devices count half capacity and serve their layers at Int4 instead
/// of Int8. No cost model, deterministic, typed-infeasible when the
/// fleet can't hold the model even with every cap applied.
///
/// [`max_layers_per_device`]: EvenSplitPlanner::max_layers_per_device
#[derive(Debug, Clone)]
pub struct EvenSplitPlanner {
    /// Layers of the (abstract) model being placed.
    pub n_layers: usize,
    /// Lowest-rung capacity of a healthy device, in layers.
    pub max_layers_per_device: usize,
}

impl ElasticPlanner for EvenSplitPlanner {
    fn plan(&mut self, view: &FleetView<'_>) -> Result<ExecutionPlan, PlanFailure> {
        use llmpq_quant::Bitwidth;
        if view.live.is_empty() {
            return Err(PlanFailure::NoDevices);
        }
        let cap_of = |d: &usize| {
            if view.degraded.contains(d) {
                (self.max_layers_per_device / 2).max(1)
            } else {
                self.max_layers_per_device
            }
        };
        let total_cap: usize = view.live.iter().map(cap_of).sum();
        if total_cap < self.n_layers {
            return Err(PlanFailure::Infeasible {
                devices: view.live.len(),
                reason: format!(
                    "{} layer(s) exceed the fleet's lowest-rung capacity of {total_cap}",
                    self.n_layers
                ),
            });
        }
        // Even split in id order, honoring per-device caps; devices
        // beyond the layer count stay idle (stage count ≤ n_layers).
        let devices: Vec<usize> = view.live.iter().copied().collect();
        let mut remaining = self.n_layers;
        let mut stages = Vec::new();
        let mut start = 0usize;
        for (i, &d) in devices.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let left = devices.len() - i;
            let even = remaining.div_ceil(left);
            let take = even.min(cap_of(&d)).min(remaining);
            if take == 0 {
                continue;
            }
            let bits = if view.degraded.contains(&d) {
                Bitwidth::Int4
            } else {
                Bitwidth::Int8
            };
            stages.push(llm_pq::StagePlan {
                device: d,
                layer_start: start,
                layer_end: start + take,
                bits: vec![bits; take],
            });
            start += take;
            remaining -= take;
        }
        if remaining > 0 {
            // Caps can strand layers when early devices are degraded;
            // a second pass would rebalance, but for the structural
            // planner this is simply infeasible-as-split.
            return Err(PlanFailure::Infeasible {
                devices: view.live.len(),
                reason: format!("{remaining} layer(s) left unplaced by the even split"),
            });
        }
        Ok(ExecutionPlan {
            stages,
            cluster: view.current.cluster.clone(),
            model: view.current.model.clone(),
            microbatch: view.current.microbatch,
            scheme: view.current.scheme.clone(),
            kv_bits: view.current.kv_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_pq::{MicrobatchPlan, StagePlan};
    use llmpq_quant::Bitwidth;

    fn base_plan(devices: &[usize], n_layers: usize) -> ExecutionPlan {
        let per = n_layers / devices.len();
        let rem = n_layers % devices.len();
        let mut stages = Vec::new();
        let mut start = 0usize;
        for (i, &d) in devices.iter().enumerate() {
            let take = per + usize::from(i < rem);
            stages.push(StagePlan {
                device: d,
                layer_start: start,
                layer_end: start + take,
                bits: vec![Bitwidth::Int8; take],
            });
            start += take;
        }
        ExecutionPlan {
            model: "tiny".into(),
            cluster: "elastic".into(),
            stages,
            microbatch: MicrobatchPlan {
                prefill_size: 1,
                prefill_count: 1,
                decode_size: 1,
                decode_count: 1,
            },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    fn controller(devices: &[usize], n_layers: usize) -> FleetController {
        FleetController::new(
            Box::new(EvenSplitPlanner { n_layers, max_layers_per_device: 4 }),
            Box::new(DebouncedPolicy::new(10_000, 50_000, 200_000, 3)),
            devices.iter().copied(),
            base_plan(devices, n_layers),
        )
    }

    fn ev(device: usize, kind: FleetEventKind, at_us: u64) -> FleetEvent {
        FleetEvent { device, kind, at_us }
    }

    #[test]
    fn join_debounces_then_migrates_and_commits() {
        let mut c = controller(&[0, 1], 8);
        assert_eq!(c.state(), ControllerState::Idle);
        assert!(c.on_event(ev(2, FleetEventKind::Join, 1_000)).is_none());
        assert_eq!(c.state(), ControllerState::Debouncing);
        // Inside the debounce window: nothing yet.
        assert!(c.tick(5_000).is_none());
        let cmd = c.tick(12_000).expect("debounce expired");
        let ControllerCommand::BeginMigration { target } = cmd else {
            panic!("expected BeginMigration, got {cmd:?}")
        };
        assert!(target.stages.iter().any(|s| s.device == 2), "scale-out uses the joiner");
        assert_eq!(c.state(), ControllerState::Migrating);
        c.migration_resolved(true, 15_000);
        assert_eq!(c.state(), ControllerState::Cooldown);
        assert_eq!(c.commits(), 1);
        assert!(c.plan_is_live());
        assert!(c.plan().stages.iter().any(|s| s.device == 2));
    }

    #[test]
    fn near_simultaneous_joins_batch_into_one_replan() {
        let mut c = controller(&[0, 1], 8);
        c.on_event(ev(2, FleetEventKind::Join, 1_000));
        c.on_event(ev(3, FleetEventKind::Join, 3_000));
        c.on_event(ev(4, FleetEventKind::Join, 5_000));
        let cmd = c.tick(16_000).expect("one batched replan");
        let ControllerCommand::BeginMigration { target } = cmd else { panic!() };
        let devs: BTreeSet<usize> = target.stages.iter().map(|s| s.device).collect();
        assert!(devs.contains(&2) && devs.contains(&3) && devs.contains(&4));
        c.migration_resolved(true, 20_000);
        assert_eq!(c.commits(), 1, "three deltas, one migration");
        assert!(c.tick(300_000).is_none(), "nothing left to do");
    }

    #[test]
    fn cooldown_defers_the_next_replan() {
        let mut c = controller(&[0, 1], 8);
        c.on_event(ev(2, FleetEventKind::Join, 0));
        let _ = c.tick(11_000).expect("first replan");
        c.migration_resolved(true, 12_000);
        // Immediately another join: the policy must hold it until the
        // 50 ms cooldown from commit has passed.
        c.on_event(ev(3, FleetEventKind::Join, 13_000));
        assert!(c.tick(30_000).is_none(), "still cooling down");
        let cmd = c.tick(63_000).expect("cooldown over");
        assert!(matches!(cmd, ControllerCommand::BeginMigration { .. }));
    }

    #[test]
    fn scale_in_replans_off_the_leaver() {
        let mut c = controller(&[0, 1, 2], 6);
        c.on_event(ev(2, FleetEventKind::Leave, 1_000));
        let cmd = c.tick(20_000).expect("replan");
        let ControllerCommand::BeginMigration { target } = cmd else { panic!() };
        assert!(target.stages.iter().all(|s| s.device != 2));
        c.migration_resolved(true, 25_000);
        assert!(c.plan_is_live());
    }

    #[test]
    fn device_loss_mid_migration_aborts_to_old_plan() {
        let mut c = controller(&[0, 1], 8);
        let old = c.plan().clone();
        c.on_event(ev(2, FleetEventKind::Join, 0));
        let _ = c.tick(11_000).expect("begin migration");
        // The joiner dies while the barrier is running.
        let cmd = c.on_event(ev(2, FleetEventKind::Leave, 12_000));
        assert!(
            matches!(cmd, Some(ControllerCommand::AbortMigration { device: 2 })),
            "{cmd:?}"
        );
        c.migration_resolved(false, 13_000);
        assert_eq!(c.plan(), &old, "old plan still serving");
        assert_eq!(c.alarms().aborted_migrations, 1);
        assert!(c.plan_is_live());
        // The leave is still pending; once debounced it replans onto
        // the survivors (same membership as the old plan → even split).
        let cmd = c.tick(30_000).expect("post-abort replan");
        let ControllerCommand::BeginMigration { target } = cmd else { panic!() };
        assert!(target.stages.iter().all(|s| s.device != 2));
    }

    #[test]
    fn infeasible_fleet_raises_alarm_and_holds_plan() {
        let mut c = controller(&[0, 1], 8);
        let old = c.plan().clone();
        // One survivor can hold at most 4 layers of the 8-layer model.
        c.on_event(ev(1, FleetEventKind::Leave, 1_000));
        assert!(c.tick(20_000).is_none(), "no migration command");
        assert_eq!(c.alarms().infeasible_fleet, 1);
        assert_eq!(c.plan(), &old, "old plan held");
        assert_eq!(c.state(), ControllerState::Idle);
        // Everything lost: typed NoDevices, second alarm, still no panic.
        c.on_event(ev(0, FleetEventKind::Leave, 30_000));
        assert!(c.tick(50_000).is_none());
        assert_eq!(c.alarms().infeasible_fleet, 2);
    }

    #[test]
    fn flapping_device_is_suppressed_and_counted() {
        let mut c = controller(&[0, 1], 8);
        // Device 2 toggles 4 times inside the 200 ms flap window.
        c.on_event(ev(2, FleetEventKind::Join, 1_000));
        c.on_event(ev(2, FleetEventKind::Leave, 2_000));
        c.on_event(ev(2, FleetEventKind::Join, 3_000));
        c.on_event(ev(2, FleetEventKind::Leave, 4_000));
        assert!(c.tick(20_000).is_none(), "flapper must not trigger a migration");
        assert!(c.alarms().flap_suppressed >= 4, "{:?}", c.alarms());
        assert_eq!(c.state(), ControllerState::Idle);
        assert_eq!(c.commits(), 0);
    }

    #[test]
    fn stabilized_flapper_is_integrated_after_quarantine() {
        let mut c = controller(&[0, 1], 8);
        c.on_event(ev(2, FleetEventKind::Join, 1_000));
        c.on_event(ev(2, FleetEventKind::Leave, 2_000));
        c.on_event(ev(2, FleetEventKind::Join, 3_000));
        c.on_event(ev(2, FleetEventKind::Join, 4_000));
        assert!(c.tick(20_000).is_none(), "quarantined");
        // Quarantine window (200 ms after the last toggle) expires with
        // device 2 stably joined: the recheck integrates it.
        assert!(c.tick(150_000).is_none(), "still inside quarantine");
        let cmd = c.tick(250_000).expect("recheck after quarantine");
        let ControllerCommand::BeginMigration { target } = cmd else { panic!() };
        assert!(target.stages.iter().any(|s| s.device == 2));
    }

    #[test]
    fn degrade_replans_without_evicting() {
        let mut c = controller(&[0, 1, 2], 8);
        c.on_event(ev(1, FleetEventKind::Degrade, 1_000));
        let cmd = c.tick(20_000).expect("degrade triggers a replan");
        let ControllerCommand::BeginMigration { target } = cmd else { panic!() };
        // Device 1 still serves, at half capacity and the low rung.
        let s1 = target.stages.iter().find(|s| s.device == 1).expect("still placed");
        assert!(s1.bits.iter().all(|&b| b == Bitwidth::Int4));
        assert!(s1.bits.len() <= 2, "degraded cap is half");
    }

    #[test]
    fn even_split_planner_is_typed_never_panicking() {
        let mut p = EvenSplitPlanner { n_layers: 8, max_layers_per_device: 4 };
        let empty = BTreeSet::new();
        let degraded = BTreeSet::new();
        let current = base_plan(&[0], 8);
        let err = p
            .plan(&FleetView { live: &empty, degraded: &degraded, current: &current })
            .unwrap_err();
        assert_eq!(err, PlanFailure::NoDevices);
        let one: BTreeSet<usize> = [0].into();
        let err = p
            .plan(&FleetView { live: &one, degraded: &degraded, current: &current })
            .unwrap_err();
        assert!(matches!(err, PlanFailure::Infeasible { devices: 1, .. }), "{err:?}");
        assert!(err.to_string().contains("infeasible on 1 device(s)"));
    }
}
