//! # llmpq-runtime
//!
//! The distributed-style inference runtime (paper §3 and §5), realized
//! with OS threads standing in for GPU-hosted worker processes:
//!
//! * a **master engine** that owns pre-/post-processing — embedding
//!   lookup, logits projection, token sampling — and the micro-batch
//!   manager with per-phase micro-batch sizes;
//! * one **stage worker** per pipeline stage, each owning only its shard
//!   of (quantized) decoder layers plus the pre-allocated KV caches for
//!   every in-flight sequence, connected by asynchronous crossbeam
//!   channels;
//! * an **on-the-fly quantizer** that loads checkpoints module by
//!   module, quantizing each linear operator as it streams in, so the
//!   staging (CPU-RAM) footprint stays bounded by one module instead of
//!   the whole model (§5, "On-The-Fly Quantizer");
//! * a **supervisor** ([`supervisor`]) that detects crashed or hung
//!   stages via heartbeats and restarts or replans the pipeline, with
//!   deterministic fault injection ([`fault`]) for resilience tests;
//! * a **telemetry hub** ([`telemetry`]) of lock-free per-stage metric
//!   recorders (latency histograms, queue depths, KV occupancy, restart
//!   counters) and span-style micro-batch lifecycle traces, exportable
//!   as a Chrome `trace_event` JSON or a plain-text metrics snapshot;
//! * an **overload-control layer** ([`overload`]): bounded inter-stage
//!   queues with backpressure to the master, an admission controller
//!   (reject / deadline-shed / queue-timeout), a KV-cache pressure
//!   guard that preempts-and-requeues rather than overrunning memory,
//!   and a graceful-degradation controller that walks a precomputed
//!   quantization ladder under sustained pressure.
//!
//! The runtime executes the *real* reference transformer: its tokens are
//! bit-identical to single-threaded execution of the same quantized
//! model, which the tests assert.

pub mod clock;
pub mod elastic;
pub mod engine;
pub mod fault;
pub mod http;
pub mod kvpool;
pub mod loader;
pub mod migrate;
pub mod net;
pub mod overload;
pub mod serve;
pub mod serve_dist;
pub mod simnet;
pub mod supervisor;
pub mod telemetry;
pub mod worker;

pub use clock::{real_clock, Clock, RealClock};
pub use elastic::{
    ControllerCommand, ControllerState, DebouncedPolicy, ElasticPlanner, EvenSplitPlanner,
    FleetAlarms, FleetController, FleetEvent, FleetEventKind, FleetView, PlanFailure,
    PolicyVerdict, ReplanPolicy,
};
pub use engine::{
    run_pipeline, run_pipeline_observed, run_pipeline_recoverable, RuntimeError, RuntimeOutput,
};
pub use fault::{FaultAction, FaultEvent, FaultInjector, FaultKind, FaultPlan, Heartbeats};
pub use http::{
    parse_completion, read_request, run_http_server, CompletionRequest, HttpLimits, HttpParseError,
    HttpRequest, HttpServer, HttpServerConfig, HttpServerStats, ServeHandle, ServeStatus,
    StreamEvent, SubmitOutcome,
};
pub use kvpool::{KvPool, KvPoolConfig, KvPoolError, KvPoolStats, PagedKvStore};
pub use loader::{load_stage_weights, LoaderStats, OnTheFlyQuantizer};
pub use migrate::{
    hybrid_oracle_tokens, kv_to_chunks, run_pipeline_with_swap, swap_oracle_tokens,
    CommitDecision, KvAssembler, KvChunkMsg, MigrationCoordinator, MigrationHost, MigrationOutput,
    ProgressiveSchedule, ProgressiveStep, SwapReport, SwapRequest, WorkerSwap,
};
pub use net::dist::{
    run_master, run_stage, DistMasterConfig, DistOutput, DistStageConfig, StageSummary,
    TcpServingRing,
};
pub use net::fault::{WireDir, WireFaultEvent, WireFaultKind, WireFaultPlan};
pub use net::transport::{ChannelTransport, TcpTransport, Transport};
pub use net::wire::plan_fingerprint;
pub use overload::{
    poisson_requests, serve, AdmissionConfig, AdmissionController, AdmissionPolicy, AdmissionStats,
    BatchEngine, DegradationConfig, DegradationController, KvGuardConfig, PipelineEngine, Request,
    RungTransition, ServeConfig, ServeReport, SimEngine,
};
pub use serve::{
    serve_continuous, serve_static, sim_oracle_tokens, ContinuousConfig, ContinuousReport,
    ContinuousScheduler, FinishedRequest, IterCost, LatencySummary, ModelStepEngine, PhasePolicy,
    SimStepEngine, StepEngine, StepError,
};
pub use serve::{RungSwap, StepOutcome};
pub use serve_dist::{ChannelRing, DistServeConfig, DistStepEngine, ServingRing};
pub use simnet::{
    elastic_arrivals, elastic_churn_plan, elastic_seed_sweep, run_elastic, run_serving_chaos,
    run_sim, seed_sweep, serving_fault_plan, serving_seed_sweep, serving_swap, shrink_elastic_plan,
    shrink_fault_plan, shrink_serving_plan, wire_exchange, ChurnEvent, ElasticChurnPlan,
    ElasticRun, ElasticSimConfig, ElasticSweepFailure, ElasticSweepReport, ServingChaosConfig,
    ServingChaosRun, ServingSweepFailure, ServingSweepReport, SimConfig, SimCrash, SimDeviceJoin,
    SimFaultKind, SimFaultPlan, SimLinkEvent, SimPartition, SimReport, SweepFailure, SweepReport,
    VirtualClock, WireExchange, WireExchangeConfig,
};
pub use supervisor::{
    run_pipeline_supervised, run_pipeline_supervised_observed, FoldReplanner, RecoveryAction,
    RecoveryEvent, RecoveryPolicy, Replanner, SupervisedOutput, SupervisorConfig,
};
pub use telemetry::{
    HistogramSnapshot, LatencyHistogram, Span, StageRecorder, Telemetry,
};
pub use worker::{
    disconnect_board, run_worker, run_worker_ctx, DisconnectBoard, MetricsSink, StageMetrics,
    StageSpec, WorkItem, WorkerCtx, WorkerMsg,
};
