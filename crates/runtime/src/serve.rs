//! Iteration-level continuous batching (Orca/vLLM-style) — the serving
//! engine behind `llmpq-serve`.
//!
//! The offline runtime executes one fixed batch per pipeline run; a
//! server admits a *stream*. This module replaces run-at-a-time
//! execution with an **iteration loop**: every iteration the scheduler
//! re-forms the micro-batch from whatever is in flight, so requests
//! join the moment KV blocks are free and leave the moment their last
//! token is sampled — no waiting for stragglers, no padding to the
//! longest sequence.
//!
//! Three pieces:
//!
//! * [`StepEngine`] — the per-iteration execution backend. Two
//!   implementations: [`SimStepEngine`] (analytic cost, oracle tokens;
//!   drives 10k-concurrent virtual-clock sweeps) and
//!   [`ModelStepEngine`] (the real quantized reference transformer over
//!   a [`PagedKvStore`], bit-identical to the offline engine).
//! * [`ContinuousScheduler`] — join/leave rules, the **phase-aware
//!   interleaver** ([`PhasePolicy`]) that packs prefill chunks and
//!   decode steps into one token budget, KV-pressure preemption, and
//!   the wiring into the existing admission ([`AdmissionController`])
//!   and degradation ([`DegradationController`]) machinery.
//! * Drivers: [`serve_continuous`] replays a request trace on the
//!   virtual clock; [`serve_static`] runs the same trace, same engine,
//!   same admission under *static* batching (accumulate, pad, run to
//!   the longest) — the baseline `ablation_serving` compares against.
//!   The live HTTP front door ([`crate::http`]) drives the scheduler
//!   from a real clock instead.
//!
//! Phase-awareness is the paper's core asymmetry made a *scheduling*
//! decision: prefill is throughput-bound and batches beautifully,
//! decode is latency-bound and cheap per token. [`PhasePolicy`] decides
//! which side of that trade each iteration's budget favors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::kvpool::{KvPool, KvPoolConfig, PagedKvStore};
use crate::overload::{
    AdmissionConfig, AdmissionController, AdmissionStats, DegradationConfig,
    DegradationController, Request,
};
use crate::telemetry::Telemetry;
use llmpq_model::RefModel;
use llmpq_quant::{quantize_model, BitAssignment, Rounding};
use serde::{Deserialize, Serialize};

/// Why an engine step failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// KV pool out of blocks. The scheduler pre-reserves, so reaching
    /// this from [`ContinuousScheduler::step`] indicates a bookkeeping
    /// bug — it is surfaced, never swallowed.
    KvExhausted { needed: usize, free: usize },
    /// A distributed engine lost its ring (stage crash, wire fault) and
    /// will rebuild it on the next call. All engine-side sequence state
    /// is gone; the scheduler requeues every in-flight sequence for
    /// recompute — recoverable, never fatal.
    RingRestarted,
    /// Anything else (unknown sequence, model error).
    Engine(String),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::KvExhausted { needed, free } => {
                write!(f, "kv exhausted mid-iteration: need {needed} blocks, {free} free")
            }
            StepError::RingRestarted => {
                write!(f, "pipeline ring lost; in-flight sequences requeued for recompute")
            }
            StepError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Affine per-iteration cost at one degradation rung:
/// `base + per_prefill_token·p + per_decode_token·d` virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterCost {
    /// Fixed launch overhead per iteration.
    pub base_s: f64,
    /// Marginal cost of one prefill token.
    pub per_prefill_token_s: f64,
    /// Marginal cost of one decode token (attention over the cache
    /// dominates, so decode tokens are the expensive ones).
    pub per_decode_token_s: f64,
}

impl IterCost {
    /// Cost of an iteration with `p` prefill and `d` decode tokens.
    pub fn cost(&self, p: usize, d: usize) -> f64 {
        self.base_s + self.per_prefill_token_s * p as f64 + self.per_decode_token_s * d as f64
    }

    /// A degradation ladder of `n` rungs: rung 0 is full precision,
    /// each further rung ~20% cheaper (lower bits → faster GEMMs).
    pub fn default_ladder(n: usize) -> Vec<IterCost> {
        (0..n.max(1))
            .map(|r| {
                let f = 0.8f64.powi(r as i32);
                IterCost {
                    base_s: 2e-3,
                    per_prefill_token_s: 2e-5 * f,
                    per_decode_token_s: 1.2e-4 * f,
                }
            })
            .collect()
    }
}

/// The per-iteration execution backend the scheduler drives.
///
/// Object-safe: the CLI boxes one of the two implementations behind
/// `Box<dyn StepEngine + Send>`.
pub trait StepEngine {
    /// The KV allocator — the scheduler reads it for join/preempt
    /// decisions.
    fn pool(&self) -> &KvPool;
    /// Register a sequence (owns no KV yet).
    fn register(&mut self, seq: u64) -> Result<(), StepError>;
    /// Run a prefill chunk (`tokens` at absolute positions starting at
    /// `pos0`). When `is_last`, sample and return the first generated
    /// token.
    fn prefill_chunk(
        &mut self,
        seq: u64,
        tokens: &[usize],
        pos0: usize,
        is_last: bool,
    ) -> Result<Option<usize>, StepError>;
    /// One decode step: feed `last` (the previously sampled token, at
    /// absolute position `pos`) and sample the next.
    fn decode_one(&mut self, seq: u64, last: usize, pos: usize) -> Result<usize, StepError>;
    /// Drop a sequence and free its KV (finish or preempt).
    fn release(&mut self, seq: u64);
    /// Virtual seconds one iteration costs at `rung`.
    fn iteration_cost_s(&self, rung: usize, prefill_tokens: usize, decode_tokens: usize) -> f64;
    /// Rungs available to the degradation controller.
    fn n_rungs(&self) -> usize {
        1
    }
    /// Hot precision swap (the live-migration analog on the serving
    /// path); returns the stall in virtual seconds.
    fn set_rung(&mut self, _rung: usize) -> f64 {
        0.0
    }
    /// Current rung.
    fn rung(&self) -> usize {
        0
    }
    /// Longest prompt+generation the backend can hold (model context).
    fn max_seq(&self) -> usize {
        usize::MAX
    }
    /// Committed live-swap epoch (ring generation). Local engines have
    /// no ring and stay at 0; the front door reports this in `/healthz`.
    fn epoch(&self) -> u64 {
        0
    }
    /// Supervisor restarts absorbed so far (0 for local engines).
    fn restarts(&self) -> u64 {
        0
    }
}

impl<T: StepEngine + ?Sized> StepEngine for Box<T> {
    fn pool(&self) -> &KvPool {
        (**self).pool()
    }
    fn register(&mut self, seq: u64) -> Result<(), StepError> {
        (**self).register(seq)
    }
    fn prefill_chunk(
        &mut self,
        seq: u64,
        tokens: &[usize],
        pos0: usize,
        is_last: bool,
    ) -> Result<Option<usize>, StepError> {
        (**self).prefill_chunk(seq, tokens, pos0, is_last)
    }
    fn decode_one(&mut self, seq: u64, last: usize, pos: usize) -> Result<usize, StepError> {
        (**self).decode_one(seq, last, pos)
    }
    fn release(&mut self, seq: u64) {
        (**self).release(seq)
    }
    fn iteration_cost_s(&self, rung: usize, p: usize, d: usize) -> f64 {
        (**self).iteration_cost_s(rung, p, d)
    }
    fn n_rungs(&self) -> usize {
        (**self).n_rungs()
    }
    fn set_rung(&mut self, rung: usize) -> f64 {
        (**self).set_rung(rung)
    }
    fn rung(&self) -> usize {
        (**self).rung()
    }
    fn max_seq(&self) -> usize {
        (**self).max_seq()
    }
    fn epoch(&self) -> u64 {
        (**self).epoch()
    }
    fn restarts(&self) -> u64 {
        (**self).restarts()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn absorb(h: u64, tok: usize, pos: usize) -> u64 {
    splitmix64(h ^ (tok as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (((pos as u64) << 1) | 1))
}

fn emit(h: u64, vocab: usize) -> usize {
    ((h >> 17) % vocab.max(1) as u64) as usize
}

/// The closed-form token oracle [`SimStepEngine`] implements: what the
/// simulated model generates for `prompt`, independent of batch
/// composition, preemption, or chunking. Sweeps recompute this to check
/// the scheduler never mixes sequences up.
pub fn sim_oracle_tokens(seed: u64, vocab: usize, prompt: &[usize], n_generate: usize) -> Vec<usize> {
    let mut h = seed;
    for (i, &t) in prompt.iter().enumerate() {
        h = absorb(h, t, i);
    }
    let mut out = Vec::with_capacity(n_generate);
    if n_generate == 0 {
        return out;
    }
    out.push(emit(h, vocab));
    for k in 1..n_generate {
        h = absorb(h, out[k - 1], prompt.len() + k - 1);
        out.push(emit(h, vocab));
    }
    out
}

#[derive(Debug, Clone, Default)]
struct SimSeq {
    hash: u64,
    len: usize,
}

/// Analytic-cost engine: KV accounting through a real [`KvPool`], token
/// generation by the [`sim_oracle_tokens`] hash chain, per-rung affine
/// iteration costs. Fast enough for 10k+ concurrent requests under the
/// virtual clock.
#[derive(Debug, Clone)]
pub struct SimStepEngine {
    pool: KvPool,
    costs: Vec<IterCost>,
    vocab: usize,
    seed: u64,
    rung: usize,
    swap_stall_s: f64,
    max_seq: usize,
    seqs: HashMap<u64, SimSeq>,
}

impl SimStepEngine {
    /// Engine over `pool_cfg` blocks with the given per-rung costs.
    pub fn new(pool_cfg: KvPoolConfig, costs: Vec<IterCost>, vocab: usize, seed: u64) -> Self {
        assert!(!costs.is_empty(), "need at least one rung");
        Self {
            pool: KvPool::new(pool_cfg),
            costs,
            vocab: vocab.max(1),
            seed,
            rung: 0,
            swap_stall_s: 5e-3,
            max_seq: usize::MAX,
            seqs: HashMap::new(),
        }
    }

    /// Cap sequence length (prompt + generation) like a model context.
    pub fn with_max_seq(mut self, max_seq: usize) -> Self {
        self.max_seq = max_seq;
        self
    }

    /// Override the virtual stall charged per precision swap.
    pub fn with_swap_stall(mut self, s: f64) -> Self {
        self.swap_stall_s = s;
        self
    }
}

impl StepEngine for SimStepEngine {
    fn pool(&self) -> &KvPool {
        &self.pool
    }

    fn register(&mut self, seq: u64) -> Result<(), StepError> {
        self.pool.alloc(seq, 0).map_err(|e| StepError::Engine(e.to_string()))?;
        self.seqs.insert(seq, SimSeq { hash: self.seed, len: 0 });
        Ok(())
    }

    fn prefill_chunk(
        &mut self,
        seq: u64,
        tokens: &[usize],
        pos0: usize,
        is_last: bool,
    ) -> Result<Option<usize>, StepError> {
        match self.pool.extend(seq, tokens.len()) {
            Err(crate::kvpool::KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        let s = self.seqs.get_mut(&seq).ok_or_else(|| StepError::Engine(format!("seq {seq}")))?;
        debug_assert_eq!(s.len, pos0, "prefill chunks must be contiguous");
        for (i, &t) in tokens.iter().enumerate() {
            s.hash = absorb(s.hash, t, pos0 + i);
        }
        s.len += tokens.len();
        Ok(if is_last { Some(emit(s.hash, self.vocab)) } else { None })
    }

    fn decode_one(&mut self, seq: u64, last: usize, pos: usize) -> Result<usize, StepError> {
        match self.pool.extend(seq, 1) {
            Err(crate::kvpool::KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        let s = self.seqs.get_mut(&seq).ok_or_else(|| StepError::Engine(format!("seq {seq}")))?;
        s.hash = absorb(s.hash, last, pos);
        s.len += 1;
        Ok(emit(s.hash, self.vocab))
    }

    fn release(&mut self, seq: u64) {
        self.pool.free(seq);
        self.seqs.remove(&seq);
    }

    fn iteration_cost_s(&self, rung: usize, p: usize, d: usize) -> f64 {
        self.costs[rung.min(self.costs.len() - 1)].cost(p, d)
    }

    fn n_rungs(&self) -> usize {
        self.costs.len()
    }

    fn set_rung(&mut self, rung: usize) -> f64 {
        self.rung = rung.min(self.costs.len() - 1);
        self.swap_stall_s
    }

    fn rung(&self) -> usize {
        self.rung
    }

    fn max_seq(&self) -> usize {
        self.max_seq
    }
}

/// The real thing: the quantized reference transformer executing over a
/// [`PagedKvStore`]. Greedy decoding is per-sequence independent, so
/// tokens are **bit-identical** to the offline
/// `quantize_model(...).generate(prompt, n, 0.0, 0)` path no matter how
/// the scheduler batches, chunks, or preempts — `tests/serving.rs`
/// asserts exactly that.
pub struct ModelStepEngine {
    models: Vec<RefModel>,
    store: PagedKvStore,
    costs: Vec<IterCost>,
    rung: usize,
    swaps: u64,
}

impl ModelStepEngine {
    /// Quantize `checkpoint` once per rung of `ladder` (rung 0 first,
    /// served until a swap) over a paged store of `pool_cfg` blocks.
    pub fn new(
        checkpoint: &RefModel,
        ladder: &[BitAssignment],
        rounding: Rounding,
        seed: u64,
        pool_cfg: KvPoolConfig,
    ) -> Result<Self, String> {
        if ladder.is_empty() {
            return Err("need at least one rung in the bit ladder".into());
        }
        let models: Vec<RefModel> =
            ladder.iter().map(|a| quantize_model(checkpoint, a, rounding, seed)).collect();
        let cfg = &models[0].cfg;
        let store = PagedKvStore::new(pool_cfg, cfg.n_layers, cfg.hidden);
        let costs = IterCost::default_ladder(ladder.len());
        Ok(Self { models, store, costs, rung: 0, swaps: 0 })
    }

    /// Like [`ModelStepEngine::new`], but size the KV pool from a
    /// unified device memory budget instead of a fixed block count:
    /// whatever `mem_budget_bytes` leaves after the *packed* resident
    /// weights is carved into KV blocks of `block_tokens` positions.
    /// Lower-bit ladders keep fewer weight bytes resident, so
    /// quantization directly buys KV headroom — the serve-path guard
    /// (`pool().feasible`/`can_fit`) then admits more concurrent
    /// sequences.
    pub fn new_with_budget(
        checkpoint: &RefModel,
        ladder: &[BitAssignment],
        rounding: Rounding,
        seed: u64,
        block_tokens: usize,
        mem_budget_bytes: usize,
    ) -> Result<Self, String> {
        if block_tokens == 0 {
            return Err("block_tokens must be at least 1".into());
        }
        // Quantize first; the real packed footprint decides the split.
        let probe = Self::new(
            checkpoint,
            ladder,
            rounding,
            seed,
            KvPoolConfig { n_blocks: 1, block_tokens },
        )?;
        let weights = probe.weight_resident_bytes();
        let block_bytes = Self::kv_block_bytes(&checkpoint.cfg, block_tokens);
        let left = mem_budget_bytes.saturating_sub(weights);
        let n_blocks = left / block_bytes;
        if n_blocks == 0 {
            return Err(format!(
                "memory budget {mem_budget_bytes} B cannot hold {weights} B of resident \
                 weights plus one {block_bytes} B KV block"
            ));
        }
        let cfg = &probe.models[0].cfg;
        let store =
            PagedKvStore::new(KvPoolConfig { n_blocks, block_tokens }, cfg.n_layers, cfg.hidden);
        Ok(Self { store, ..probe })
    }

    /// Bytes of one KV block: `block_tokens` positions × hidden × (K+V)
    /// × 4 bytes, across every layer.
    pub fn kv_block_bytes(cfg: &llmpq_model::RefConfig, block_tokens: usize) -> usize {
        block_tokens * cfg.hidden * 2 * 4 * cfg.n_layers
    }

    /// Bytes the engine keeps resident for weights, summed over every
    /// rung of the ladder (all rungs stay loaded for hot swapping).
    /// Packed rungs count their true bits-scaled footprint.
    pub fn weight_resident_bytes(&self) -> usize {
        self.models
            .iter()
            .map(|m| m.layers.iter().map(|l| l.resident_weight_bytes()).sum::<usize>())
            .sum()
    }

    /// The paged store (tests inspect block usage).
    pub fn store(&self) -> &PagedKvStore {
        &self.store
    }

    /// Precision swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    fn model(&self) -> &RefModel {
        &self.models[self.rung]
    }

    fn argmax(logits: &[f32]) -> usize {
        // Same expression as `sample_from_logits` at temperature 0, so
        // tie-breaking (last max wins under `max_by`) matches `generate`
        // bit-for-bit without a dependency on the rng machinery.
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }
}

impl StepEngine for ModelStepEngine {
    fn pool(&self) -> &KvPool {
        self.store.pool()
    }

    fn register(&mut self, seq: u64) -> Result<(), StepError> {
        self.store.register(seq).map_err(|e| StepError::Engine(e.to_string()))
    }

    fn prefill_chunk(
        &mut self,
        seq: u64,
        tokens: &[usize],
        pos0: usize,
        is_last: bool,
    ) -> Result<Option<usize>, StepError> {
        let mut cache = self.store.gather(seq).map_err(|e| StepError::Engine(e.to_string()))?;
        debug_assert_eq!(cache.len(), pos0, "prefill chunks must be contiguous");
        let model = &self.models[self.rung];
        let mut x = model.embed_tokens(tokens, pos0);
        for l in 0..model.cfg.n_layers {
            x = model.forward_layer(l, &x, &mut cache);
        }
        match self.store.append(seq, &cache, pos0) {
            Err(crate::kvpool::KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        if !is_last {
            return Ok(None);
        }
        let logits = self.model().project_logits(&x);
        Ok(Some(Self::argmax(logits.row(logits.rows - 1))))
    }

    fn decode_one(&mut self, seq: u64, last: usize, pos: usize) -> Result<usize, StepError> {
        let mut cache = self.store.gather(seq).map_err(|e| StepError::Engine(e.to_string()))?;
        debug_assert_eq!(cache.len(), pos, "decode position must follow the cache");
        let model = &self.models[self.rung];
        let mut x = model.embed_tokens(&[last], pos);
        for l in 0..model.cfg.n_layers {
            x = model.forward_layer(l, &x, &mut cache);
        }
        match self.store.append(seq, &cache, pos) {
            Err(crate::kvpool::KvPoolError::Exhausted { needed, free }) => {
                return Err(StepError::KvExhausted { needed, free })
            }
            Err(e) => return Err(StepError::Engine(e.to_string())),
            Ok(()) => {}
        }
        let logits = self.model().project_logits(&x);
        Ok(Self::argmax(logits.row(logits.rows - 1)))
    }

    fn release(&mut self, seq: u64) {
        self.store.release(seq);
    }

    fn iteration_cost_s(&self, rung: usize, p: usize, d: usize) -> f64 {
        self.costs[rung.min(self.costs.len() - 1)].cost(p, d)
    }

    fn n_rungs(&self) -> usize {
        self.models.len()
    }

    fn set_rung(&mut self, rung: usize) -> f64 {
        let r = rung.min(self.models.len() - 1);
        if r != self.rung {
            self.rung = r;
            self.swaps += 1;
        }
        0.0
    }

    fn rung(&self) -> usize {
        self.rung
    }

    fn max_seq(&self) -> usize {
        self.model().cfg.max_seq
    }
}

/// How the interleaver splits the per-iteration token budget between
/// phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhasePolicy {
    /// Decode steps first (protects TPOT / inter-token latency), then
    /// fill what remains with prefill chunks. The default.
    DecodeFirst,
    /// Prefill first (protects TTFT under bursts of new requests), then
    /// decodes.
    PrefillFirst,
    /// Reserve at most `prefill_frac` of the budget for prefill; unused
    /// reservations spill to the other phase.
    Mixed {
        /// Fraction of the budget reserved for prefill, in `[0, 1]`.
        prefill_frac: f64,
    },
}

impl std::str::FromStr for PhasePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "decode-first" => Ok(PhasePolicy::DecodeFirst),
            "prefill-first" => Ok(PhasePolicy::PrefillFirst),
            "mixed" => Ok(PhasePolicy::Mixed { prefill_frac: 0.5 }),
            other => match other.strip_prefix("mixed:") {
                Some(f) => {
                    let frac: f64 =
                        f.parse().map_err(|_| format!("bad mixed fraction {f:?}"))?;
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(format!("mixed fraction {frac} outside [0, 1]"));
                    }
                    Ok(PhasePolicy::Mixed { prefill_frac: frac })
                }
                None => Err(format!(
                    "unknown phase policy {other:?} (decode-first | prefill-first | mixed[:frac])"
                )),
            },
        }
    }
}

/// A scheduled precision swap: after the scheduler completes iteration
/// `at_iteration`, move the engine to `rung`. On a distributed engine
/// this drives a live plan migration at the iteration boundary; on a
/// local engine it swaps the quantized weights in place — both paths
/// take effect at the same deterministic point, which is what makes
/// swap-under-load runs comparable token-for-token across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RungSwap {
    /// Iteration count after which the swap fires (the swap happens at
    /// the end of the first non-idle iteration with `iterations >= at`).
    pub at_iteration: u64,
    /// Target degradation rung.
    pub rung: usize,
}

/// Continuous-batching scheduler parameters.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Admission queue policy (shared with the batch serving loop).
    pub admission: AdmissionConfig,
    /// Per-iteration token budget (prefill tokens + decode steps).
    pub token_budget: usize,
    /// Max sequences in flight at once.
    pub max_batch: usize,
    /// Longest prefill chunk per sequence per iteration (chunked
    /// prefill keeps one huge prompt from starving decodes).
    pub prefill_chunk: usize,
    /// Phase interleaving policy.
    pub policy: PhasePolicy,
    /// Optional graceful degradation (precision rungs swap hot).
    pub degradation: Option<DegradationConfig>,
    /// Scheduled precision swaps (sorted by `at_iteration`; applied in
    /// order at iteration boundaries). Empty = never.
    pub swaps: Vec<RungSwap>,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            token_budget: 256,
            max_batch: 32,
            prefill_chunk: 64,
            policy: PhasePolicy::DecodeFirst,
            degradation: None,
            swaps: Vec::new(),
        }
    }
}

/// A completed request, with everything the front door and the bench
/// need to answer/aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinishedRequest {
    /// Request id.
    pub id: usize,
    /// Generated tokens (length = requested `n_generate`).
    pub tokens: Vec<usize>,
    /// Arrival → first token, seconds.
    pub ttft_s: f64,
    /// Completion timestamp.
    pub finish_s: f64,
    /// Arrival → completion.
    pub sojourn_s: f64,
    /// Finished before its SLO deadline (true when no deadline).
    pub deadline_met: bool,
    /// Times this request was preempted and recomputed.
    pub preempted: u32,
}

/// What one scheduler step did.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Iteration cost in seconds (0 when idle).
    pub cost_s: f64,
    /// Nothing in flight and nothing joinable.
    pub idle: bool,
    /// Requests completed this iteration.
    pub finished: Vec<FinishedRequest>,
    /// Queued requests reaped past their deadline/timeout.
    pub expired_ids: Vec<usize>,
    /// Requests refused at join (infeasible for the pool/context).
    pub shed_ids: Vec<usize>,
    /// Degradation moved to this rung.
    pub rung_changed: Option<usize>,
    /// Tokens that landed this iteration as `(request id, token index,
    /// token)` — the streaming front door forwards these as they land.
    /// A ring restart never re-lands (preserved tokens resume as a
    /// forced prefix), but a KV preemption recomputes on the same rung
    /// and re-lands the identical earlier indices; consumers that
    /// already emitted an index must dedup on it.
    pub landed: Vec<(usize, usize, usize)>,
    /// In-flight sequences requeued for recompute because the engine
    /// lost its ring this iteration (0 on the happy path).
    pub recovered: usize,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    prefilled: usize,
    generated: Vec<usize>,
    // Tokens restored from a pre-restart incarnation (0 for a fresh
    // sequence): they seed `generated` at join and stretch the prefill
    // phase so their KV is rebuilt before decoding resumes.
    resume_prefix: usize,
    first_token_s: Option<f64>,
    preempted: u32,
}

impl InFlight {
    fn decode_ready(&self) -> bool {
        self.prefilled == self.prefill_target() && !self.generated.is_empty()
    }

    /// Positions that must be in KV before decoding can (re)start: the
    /// prompt, plus — for a sequence restored after a ring restart —
    /// all but the last preserved token. That token is the next decode
    /// input, mirroring the normal prefill → decode handoff.
    fn prefill_target(&self) -> usize {
        self.req.prompt.len() + self.resume_prefix.saturating_sub(1)
    }

    /// Token at absolute position `pos` of the prompt ⊕ preserved-token
    /// prefix (callers stay below [`Self::prefill_target`]).
    fn prefix_token(&self, pos: usize) -> usize {
        let p = self.req.prompt.len();
        if pos < p {
            self.req.prompt[pos]
        } else {
            self.generated[pos - p]
        }
    }
}

/// Latency percentiles over raw (virtual or real) seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize `samples`; `None` when empty.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
        Some(Self {
            p50: pct(0.5),
            p95: pct(0.95),
            p99: pct(0.99),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            max: *samples.last().unwrap(),
        })
    }
}

/// End-of-run summary for one serving run (continuous or static).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinuousReport {
    /// `"continuous"` or `"static"`.
    pub mode: String,
    /// Admission counters; [`AdmissionStats::conserves`] must hold with
    /// [`Self::pending_end`].
    pub stats: AdmissionStats,
    /// Requests still queued/in flight at the end (0 for trace runs).
    pub pending_end: usize,
    /// Requests completed.
    pub completed: usize,
    /// Tokens generated (decode side).
    pub generated_tokens: u64,
    /// Prefill tokens processed (inflated by padding under static
    /// batching).
    pub prefill_tokens: u64,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Virtual makespan.
    pub makespan_s: f64,
    /// Generated tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// On-time completions per second (the paper-facing serving
    /// metric: work delivered *within SLO*).
    pub goodput_rps: f64,
    /// Fraction of completed requests that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Time to first token.
    pub ttft: Option<LatencySummary>,
    /// Time per output token after the first.
    pub tpot: Option<LatencySummary>,
    /// Arrival → completion.
    pub sojourn: Option<LatencySummary>,
    /// Mean sequences in flight per iteration.
    pub mean_batch_occupancy: f64,
    /// Peak sequences in flight.
    pub peak_batch: usize,
    /// Peak KV pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Peak KV blocks in use.
    pub kv_peak_blocks: usize,
    /// Preempt-and-recompute events.
    pub preemptions: u64,
    /// Degradation rung changes.
    pub rung_transitions: u64,
    /// Every completed request, join order.
    pub outputs: Vec<FinishedRequest>,
}

impl ContinuousReport {
    /// The conservation invariant: every offered request accounted for.
    pub fn conserves(&self) -> bool {
        self.stats.conserves(self.pending_end)
    }
}

/// The continuous-batching scheduler. Time-agnostic: every entry point
/// takes `now`, so the same struct runs under the virtual clock (trace
/// drivers, simnet) or a real one (the HTTP front door).
pub struct ContinuousScheduler<E: StepEngine> {
    engine: E,
    cfg: ContinuousConfig,
    adm: AdmissionController,
    degrade: Option<DegradationController>,
    running: Vec<InFlight>,
    telemetry: Option<Arc<Telemetry>>,
    // Accumulators for the report.
    iterations: u64,
    prefill_tokens: u64,
    decode_tokens: u64,
    preemptions: u64,
    rung_transitions: u64,
    swaps_done: usize,
    occupancy_sum: f64,
    peak_batch: usize,
    kv_peak_occupancy: f64,
    ttft_carry: HashMap<usize, f64>,
    preempt_counts: HashMap<usize, u32>,
    // Tokens preserved across a ring restart, keyed by request id: the
    // requeued sequence resumes them as a forced prefix instead of
    // re-sampling, so recovery can never contradict tokens a streaming
    // consumer already emitted (re-sampling is only bit-stable while
    // the rung never changes — a live swap between generation and
    // recompute would rewrite history).
    resume_tokens: HashMap<usize, Vec<usize>>,
    finished_all: Vec<FinishedRequest>,
}

impl<E: StepEngine> ContinuousScheduler<E> {
    /// Build a scheduler; rejects a zero budget/batch/chunk.
    pub fn new(engine: E, cfg: ContinuousConfig) -> Result<Self, String> {
        if cfg.token_budget == 0 {
            return Err("token_budget must be at least 1".into());
        }
        if cfg.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if cfg.prefill_chunk == 0 {
            return Err("prefill_chunk must be at least 1".into());
        }
        let mut cfg = cfg;
        cfg.swaps.sort_by_key(|s| s.at_iteration);
        if let Some(s) = cfg.swaps.iter().find(|s| s.rung >= engine.n_rungs()) {
            return Err(format!(
                "swap at iteration {} targets rung {} but the engine has {} rungs",
                s.at_iteration,
                s.rung,
                engine.n_rungs()
            ));
        }
        let degrade =
            cfg.degradation.map(|d| DegradationController::new(d, engine.n_rungs()));
        Ok(Self {
            adm: AdmissionController::new(cfg.admission),
            degrade,
            running: Vec::new(),
            telemetry: None,
            iterations: 0,
            prefill_tokens: 0,
            decode_tokens: 0,
            preemptions: 0,
            rung_transitions: 0,
            swaps_done: 0,
            occupancy_sum: 0.0,
            peak_batch: 0,
            kv_peak_occupancy: 0.0,
            ttft_carry: HashMap::new(),
            preempt_counts: HashMap::new(),
            resume_tokens: HashMap::new(),
            finished_all: Vec::new(),
            engine,
            cfg,
        })
    }

    /// Attach a telemetry hub (serving gauges + histograms).
    pub fn with_telemetry(mut self, t: Arc<Telemetry>) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// Offer one arrival; `false` means shed/expired immediately.
    pub fn offer(&mut self, req: Request, now: f64) -> bool {
        if !self.feasible(&req) {
            self.adm.refuse();
            self.sync_telemetry();
            return false;
        }
        let ok = self.adm.offer(req, now);
        self.sync_telemetry();
        ok
    }

    fn feasible(&self, req: &Request) -> bool {
        let total = req.prompt.len() + req.n_generate;
        !req.prompt.is_empty()
            && req.n_generate > 0
            && self.engine.pool().feasible(total)
            && total <= self.engine.max_seq()
    }

    /// Queued requests (not counting in-flight).
    pub fn queued(&self) -> usize {
        self.adm.pending()
    }

    /// The step engine (the front door reads epoch/restart counters).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Sequences in flight.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// Admission counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.adm.stats()
    }

    /// Current degradation rung.
    pub fn rung(&self) -> usize {
        self.engine.rung()
    }

    /// One iteration: reap, join, interleave, reserve KV (preempting
    /// if needed), execute, retire. Returns what happened; `idle` when
    /// there was nothing to do.
    ///
    /// A distributed engine losing its ring mid-iteration surfaces as
    /// [`StepError::RingRestarted`]; the scheduler absorbs it here by
    /// requeueing every in-flight sequence for recompute (the engine
    /// rebuilds the ring lazily on the next call), so callers only ever
    /// see fatal errors.
    pub fn step(&mut self, now: f64) -> Result<StepOutcome, StepError> {
        match self.step_impl(now) {
            Err(StepError::RingRestarted) => Ok(self.recover_from_restart()),
            r => r,
        }
    }

    /// Requeue everything in flight after the engine lost its ring:
    /// drop the (now gone) KV, put the original requests back at the
    /// front of the queue, and charge one base iteration for the
    /// stall. Tokens already generated are preserved and resumed as a
    /// forced prefix when the sequence rejoins — re-sampling would
    /// only be bit-stable while the rung never changed, and a streaming
    /// consumer has already emitted them.
    fn recover_from_restart(&mut self) -> StepOutcome {
        let mut out = StepOutcome { recovered: self.running.len(), ..Default::default() };
        // Reverse order keeps the original join order once everything
        // is pushed back onto the front of the queue.
        for s in std::mem::take(&mut self.running).into_iter().rev() {
            // With the ring down this is local bookkeeping only; the
            // worker-side slots were lost with the attempt.
            self.engine.release(s.req.id as u64);
            *self.preempt_counts.entry(s.req.id).or_insert(0) += 1;
            if !s.generated.is_empty() {
                self.resume_tokens.insert(s.req.id, s.generated);
            }
            self.adm.requeue_front(s.req);
        }
        self.adm.note_recovered(out.recovered);
        self.iterations += 1;
        out.cost_s = self.engine.iteration_cost_s(self.engine.rung(), 0, 0);
        self.sync_telemetry();
        out
    }

    fn step_impl(&mut self, now: f64) -> Result<StepOutcome, StepError> {
        let mut out = StepOutcome::default();
        self.adm.reap(now);
        out.expired_ids = self.adm.drain_expired_ids();
        for id in &out.expired_ids {
            self.resume_tokens.remove(id);
        }

        // Join: pull from the queue while batch slots and KV blocks
        // allow. Requiring room for prompt + 1 token means a feasible
        // request always joins an empty pool (no admit/preempt livelock).
        while self.running.len() < self.cfg.max_batch {
            let Some(req) = self.adm.take() else { break };
            if !self.feasible(&req) {
                self.resume_tokens.remove(&req.id);
                self.adm.note_shed(1);
                out.shed_ids.push(req.id);
                continue;
            }
            let preserved = self.resume_tokens.get(&req.id).map_or(0, Vec::len);
            if !self.engine.pool().can_fit(req.prompt.len() + preserved + 1) {
                self.adm.requeue_front(req);
                break;
            }
            if let Err(e) = self.engine.register(req.id as u64) {
                // The request is already out of the queue: put it back
                // before surfacing, or it would leak from conservation.
                self.adm.requeue_front(req);
                return Err(e);
            }
            let preempted = self.preempt_counts.get(&req.id).copied().unwrap_or(0);
            // A sequence restored after a ring restart resumes its
            // preserved tokens as a forced prefix (re-prefilled, never
            // re-sampled).
            let generated = self.resume_tokens.remove(&req.id).unwrap_or_default();
            self.running.push(InFlight {
                req,
                prefilled: 0,
                resume_prefix: generated.len(),
                generated,
                first_token_s: None,
                preempted,
            });
        }

        if self.running.is_empty() {
            out.idle = true;
            self.sync_telemetry();
            return Ok(out);
        }

        // Phase-aware interleave: split the token budget between decode
        // steps (1 token each) and prefill chunks.
        let decode_ready: Vec<usize> =
            (0..self.running.len()).filter(|&i| self.running[i].decode_ready()).collect();
        let prefill_ready: Vec<usize> = (0..self.running.len())
            .filter(|&i| self.running[i].prefilled < self.running[i].prefill_target())
            .collect();
        let budget = self.cfg.token_budget;
        let (decode_budget, prefill_budget) = match self.cfg.policy {
            PhasePolicy::DecodeFirst => {
                let d = decode_ready.len().min(budget);
                (d, budget - d)
            }
            PhasePolicy::PrefillFirst => {
                let want: usize = prefill_ready
                    .iter()
                    .map(|&i| {
                        (self.running[i].prefill_target() - self.running[i].prefilled)
                            .min(self.cfg.prefill_chunk)
                    })
                    .sum();
                let p = want.min(budget);
                (budget - p, p)
            }
            PhasePolicy::Mixed { prefill_frac } => {
                let p_reserved = ((budget as f64 * prefill_frac).ceil() as usize).min(budget);
                let want: usize = prefill_ready
                    .iter()
                    .map(|&i| {
                        (self.running[i].prefill_target() - self.running[i].prefilled)
                            .min(self.cfg.prefill_chunk)
                    })
                    .sum();
                let p = p_reserved.min(want);
                let d = decode_ready.len().min(budget - p);
                // Spill unused decode budget back to prefill.
                (d, (budget - d).min(want))
            }
        };
        // Rotate the decode start index so budget-starved decodes make
        // progress in later iterations (no starvation).
        let mut decodes: Vec<usize> = Vec::with_capacity(decode_budget.min(decode_ready.len()));
        if !decode_ready.is_empty() && decode_budget > 0 {
            let start = (self.iterations as usize) % decode_ready.len();
            for k in 0..decode_ready.len() {
                if decodes.len() == decode_budget {
                    break;
                }
                decodes.push(decode_ready[(start + k) % decode_ready.len()]);
            }
        }
        // Prefill chunks in join (≈ queue) order.
        let mut prefills: Vec<(usize, usize)> = Vec::new(); // (slot, chunk_len)
        let mut p_left = prefill_budget;
        for &i in &prefill_ready {
            if p_left == 0 {
                break;
            }
            let remaining = self.running[i].prefill_target() - self.running[i].prefilled;
            let chunk = remaining.min(self.cfg.prefill_chunk).min(p_left);
            if chunk == 0 {
                break;
            }
            prefills.push((i, chunk));
            p_left -= chunk;
        }

        if decodes.is_empty() && prefills.is_empty() {
            // Every in-flight sequence is blocked (budget exhausted by
            // policy edge cases) — treat as one empty iteration to keep
            // time moving rather than deadlocking.
            out.idle = true;
            self.sync_telemetry();
            return Ok(out);
        }

        // Reserve KV for this iteration up front, preempting victims
        // (lowest priority, then latest joined) until everything fits.
        loop {
            let pool = self.engine.pool();
            let mut needed = 0usize;
            for &(i, chunk) in &prefills {
                needed += pool.blocks_needed(self.running[i].req.id as u64, chunk);
            }
            for &i in &decodes {
                needed += pool.blocks_needed(self.running[i].req.id as u64, 1);
            }
            if needed <= pool.free_blocks() {
                break;
            }
            let victim = self.pick_victim()?;
            self.preempt(victim, &mut prefills, &mut decodes);
        }

        // Execute: prefills first (they feed TTFT), then decodes.
        let rung = self.engine.rung();
        let mut p_tokens = 0usize;
        let mut d_tokens = 0usize;
        let mut first_token_slots: Vec<usize> = Vec::new();
        for &(i, chunk) in &prefills {
            let s = &self.running[i];
            let (id, lo) = (s.req.id as u64, s.prefilled);
            let tokens: Vec<usize> = (lo..lo + chunk).map(|p| s.prefix_token(p)).collect();
            // A restored sequence never samples at the end of its
            // prefix re-prefill: its next token input is the last
            // preserved token, fed through the decode path below.
            let is_last = s.resume_prefix == 0 && lo + chunk == s.req.prompt.len();
            let got = self.engine.prefill_chunk(id, &tokens, lo, is_last)?;
            let s = &mut self.running[i];
            s.prefilled += chunk;
            p_tokens += chunk;
            if let Some(tok) = got {
                s.generated.push(tok);
                out.landed.push((s.req.id, 0, tok));
                first_token_slots.push(i);
            }
        }
        for &i in &decodes {
            let s = &self.running[i];
            let last = *s.generated.last().expect("decode-ready has a token");
            let pos = s.req.prompt.len() + s.generated.len() - 1;
            let tok = self.engine.decode_one(s.req.id as u64, last, pos)?;
            let s = &mut self.running[i];
            s.generated.push(tok);
            out.landed.push((s.req.id, s.generated.len() - 1, tok));
            d_tokens += 1;
        }

        let mut cost = self.engine.iteration_cost_s(rung, p_tokens, d_tokens);
        let t_end = now + cost;
        self.iterations += 1;
        self.prefill_tokens += p_tokens as u64;
        self.decode_tokens += d_tokens as u64;
        self.occupancy_sum += self.running.len() as f64;
        self.peak_batch = self.peak_batch.max(self.running.len());
        self.kv_peak_occupancy = self.kv_peak_occupancy.max(self.engine.pool().occupancy());

        // First tokens land at the end of the iteration; a preempted
        // request keeps the TTFT of the token it already delivered.
        for &i in &first_token_slots {
            let s = &mut self.running[i];
            let t = *self.ttft_carry.entry(s.req.id).or_insert(t_end - s.req.arrival_s);
            s.first_token_s = Some(s.req.arrival_s + t);
        }

        // Retire sequences that reached their requested length.
        let mut j = 0;
        while j < self.running.len() {
            if self.running[j].generated.len() >= self.running[j].req.n_generate {
                let s = self.running.swap_remove(j);
                self.engine.release(s.req.id as u64);
                self.adm.note_served(1);
                self.preempt_counts.remove(&s.req.id);
                let ttft_s = self.ttft_carry.remove(&s.req.id).unwrap_or(0.0);
                let sojourn_s = t_end - s.req.arrival_s;
                let fin = FinishedRequest {
                    id: s.req.id,
                    tokens: s.generated,
                    ttft_s,
                    finish_s: t_end,
                    sojourn_s,
                    deadline_met: s.req.deadline_s.is_none_or(|d| t_end <= d),
                    preempted: s.preempted,
                };
                if let Some(t) = &self.telemetry {
                    t.record_ttft_us((fin.ttft_s * 1e6) as u64);
                    let n = fin.tokens.len();
                    if n > 1 {
                        t.record_tpot_us(
                            ((fin.sojourn_s - fin.ttft_s).max(0.0) * 1e6) as u64 / (n as u64 - 1),
                        );
                    }
                    t.record_request_us((fin.sojourn_s * 1e6) as u64);
                    t.add_tokens(n as u64);
                }
                self.finished_all.push(fin.clone());
                out.finished.push(fin);
            } else {
                j += 1;
            }
        }

        // Degradation rides queue pressure, swapping precision hot.
        if let Some(d) = &mut self.degrade {
            if let Some(rung) = d.observe(self.adm.pressure(), t_end) {
                cost += self.engine.set_rung(rung);
                self.rung_transitions += 1;
                out.rung_changed = Some(rung);
                if let Some(t) = &self.telemetry {
                    t.set_rung(rung);
                }
            }
        }

        // Scheduled swaps fire at the same deterministic point as
        // degradation: the end of a non-idle iteration. On a
        // distributed engine this is a live plan migration at a
        // quiescent ring; requests keep flowing either side of it.
        while self
            .cfg
            .swaps
            .get(self.swaps_done)
            .is_some_and(|s| self.iterations >= s.at_iteration)
        {
            let target = self.cfg.swaps[self.swaps_done].rung;
            self.swaps_done += 1;
            if target != self.engine.rung() {
                cost += self.engine.set_rung(target);
                self.rung_transitions += 1;
                out.rung_changed = Some(target);
                if let Some(t) = &self.telemetry {
                    t.set_rung(target);
                }
            }
        }

        out.cost_s = cost;
        self.sync_telemetry();
        Ok(out)
    }

    /// Victim for KV preemption: lowest priority, then latest joined
    /// (the back of `running`). Never the only sequence.
    fn pick_victim(&self) -> Result<usize, StepError> {
        if self.running.len() <= 1 {
            // Feasibility at admission guarantees a lone sequence fits;
            // getting here means the books are wrong.
            return Err(StepError::KvExhausted {
                needed: 1,
                free: self.engine.pool().free_blocks(),
            });
        }
        let mut best = 0usize;
        for i in 1..self.running.len() {
            let (a, b) = (&self.running[i].req, &self.running[best].req);
            if a.priority < b.priority || (a.priority == b.priority && i > best) {
                best = i;
            }
        }
        Ok(best)
    }

    fn preempt(&mut self, victim: usize, prefills: &mut Vec<(usize, usize)>, decodes: &mut Vec<usize>) {
        let s = self.running.swap_remove(victim);
        self.engine.release(s.req.id as u64);
        self.preemptions += 1;
        if let Some(t) = &self.telemetry {
            t.note_preempted();
        }
        // Recompute-style preemption: drop the KV, requeue the original
        // request at the front; greedy decoding regenerates the same
        // tokens when it rejoins.
        *self.preempt_counts.entry(s.req.id).or_insert(0) += 1;
        self.adm.requeue_front(s.req);
        // swap_remove moved the last slot into `victim`: fix indices.
        let moved = self.running.len(); // old index of the moved element
        prefills.retain_mut(|(i, _)| {
            if *i == victim {
                return false;
            }
            if *i == moved {
                *i = victim;
            }
            true
        });
        decodes.retain_mut(|i| {
            if *i == victim {
                return false;
            }
            if *i == moved {
                *i = victim;
            }
            true
        });
        // Bump the preempt counter on the requeued request's future
        // incarnation by remembering it in ttft_carry keyed bookkeeping:
        // the count travels on the InFlight when it rejoins (see join —
        // new InFlight starts at 0), so record globally instead.
    }

    fn sync_telemetry(&self) {
        if let Some(t) = &self.telemetry {
            let st = self.adm.stats();
            t.sync_shed(st.shed as u64);
            t.sync_expired(st.expired as u64);
            t.set_queue_pressure(self.adm.pressure());
            t.set_batch_occupancy(self.running.len() as u64);
            t.set_kv_occupancy(self.engine.pool().occupancy());
            t.set_inflight((self.adm.pending() + self.running.len()) as u64);
        }
    }

    /// Consume the scheduler into its end-of-run report.
    pub fn into_report(self, makespan_s: f64, mode: &str) -> ContinuousReport {
        let stats = self.adm.stats();
        let completed = self.finished_all.len();
        let on_time = self.finished_all.iter().filter(|f| f.deadline_met).count();
        let pending_end = self.adm.pending() + self.running.len();
        let ttft = LatencySummary::from_samples(self.finished_all.iter().map(|f| f.ttft_s).collect());
        let tpot = LatencySummary::from_samples(
            self.finished_all
                .iter()
                .filter(|f| f.tokens.len() > 1)
                .map(|f| (f.sojourn_s - f.ttft_s).max(0.0) / (f.tokens.len() - 1) as f64)
                .collect(),
        );
        let sojourn =
            LatencySummary::from_samples(self.finished_all.iter().map(|f| f.sojourn_s).collect());
        ContinuousReport {
            mode: mode.to_string(),
            stats,
            pending_end,
            completed,
            generated_tokens: self.finished_all.iter().map(|f| f.tokens.len() as u64).sum(),
            prefill_tokens: self.prefill_tokens,
            iterations: self.iterations,
            makespan_s,
            throughput_tok_s: if makespan_s > 0.0 {
                self.finished_all.iter().map(|f| f.tokens.len() as f64).sum::<f64>() / makespan_s
            } else {
                0.0
            },
            goodput_rps: if makespan_s > 0.0 { on_time as f64 / makespan_s } else { 0.0 },
            deadline_miss_rate: if completed > 0 {
                (completed - on_time) as f64 / completed as f64
            } else {
                0.0
            },
            ttft,
            tpot,
            sojourn,
            mean_batch_occupancy: if self.iterations > 0 {
                self.occupancy_sum / self.iterations as f64
            } else {
                0.0
            },
            peak_batch: self.peak_batch,
            kv_peak_occupancy: self.kv_peak_occupancy,
            kv_peak_blocks: self.engine.pool().stats().peak_blocks,
            preemptions: self.preemptions,
            rung_transitions: self.rung_transitions,
            outputs: self.finished_all,
        }
    }
}

/// Replay a request trace under the virtual clock with continuous
/// batching. Requests must be pre-sorted by `arrival_s` (as
/// [`crate::overload::poisson_requests`] and
/// `workload::sample_arrivals` produce them).
pub fn serve_continuous<E: StepEngine>(
    engine: E,
    requests: &[Request],
    cfg: ContinuousConfig,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<ContinuousReport, String> {
    let mut sched = ContinuousScheduler::new(engine, cfg)?;
    if let Some(t) = telemetry {
        sched = sched.with_telemetry(t);
    }
    let mut now = 0.0f64;
    let mut idx = 0usize;
    let mut makespan = 0.0f64;
    loop {
        while idx < requests.len() && requests[idx].arrival_s <= now + 1e-12 {
            sched.offer(requests[idx].clone(), now);
            idx += 1;
        }
        let out = sched.step(now).map_err(|e| e.to_string())?;
        if out.idle {
            if idx < requests.len() {
                now = requests[idx].arrival_s;
                continue;
            }
            if sched.queued() == 0 && sched.in_flight() == 0 {
                break;
            }
            return Err(format!(
                "scheduler livelock: {} queued, {} in flight, nothing runnable",
                sched.queued(),
                sched.in_flight()
            ));
        }
        now += out.cost_s;
        makespan = now;
    }
    Ok(sched.into_report(makespan, "continuous"))
}

/// The static-batching baseline on the *same* engine, cost model, and
/// admission controller: accumulate up to `batch_size` requests (or
/// give up after `max_wait_s`), prefill them padded to the longest
/// prompt, then decode lock-step to the longest requested length —
/// exactly what the offline pipeline does per run. Finished sequences
/// keep burning decode slots (padding waste), nobody joins mid-flight.
pub fn serve_static<E: StepEngine>(
    mut engine: E,
    requests: &[Request],
    cfg: ContinuousConfig,
    batch_size: usize,
    max_wait_s: f64,
) -> Result<ContinuousReport, String> {
    if batch_size == 0 {
        return Err("batch_size must be at least 1".into());
    }
    let mut adm = AdmissionController::new(cfg.admission);
    let mut now = 0.0f64;
    let mut idx = 0usize;
    let mut makespan = 0.0f64;
    let mut finished_all: Vec<FinishedRequest> = Vec::new();
    let mut prefill_tokens = 0u64;
    let mut iterations = 0u64;
    let mut occupancy_sum = 0.0f64;
    let mut peak_batch = 0usize;
    let mut kv_peak = 0.0f64;

    loop {
        while idx < requests.len() && requests[idx].arrival_s <= now + 1e-12 {
            let req = &requests[idx];
            let total = req.prompt.len() + req.n_generate;
            if req.prompt.is_empty()
                || req.n_generate == 0
                || !engine.pool().feasible(total)
                || total > engine.max_seq()
            {
                adm.refuse();
            } else {
                adm.offer(req.clone(), now);
            }
            idx += 1;
        }
        adm.reap(now);
        adm.drain_expired_ids();

        if adm.pending() == 0 {
            if idx >= requests.len() {
                break;
            }
            now = requests[idx].arrival_s;
            continue;
        }
        // Static window: wait for a full batch up to max_wait_s past
        // the moment the head request was ready.
        if adm.pending() < batch_size && idx < requests.len() {
            let next = requests[idx].arrival_s;
            if next <= now + max_wait_s {
                now = next;
                continue;
            }
            now += max_wait_s;
            adm.reap(now);
            adm.drain_expired_ids();
            if adm.pending() == 0 {
                continue;
            }
        }
        // Form the batch, bounded by size and by KV capacity (each
        // sequence rounds up to whole blocks on its own).
        let mut batch: Vec<Request> = Vec::new();
        let mut kv_blocks = 0usize;
        while batch.len() < batch_size {
            let Some(req) = adm.take() else { break };
            let need = engine.pool().blocks_for(req.prompt.len() + req.n_generate);
            if kv_blocks + need > engine.pool().free_blocks() {
                adm.requeue_front(req);
                break;
            }
            kv_blocks += need;
            batch.push(req);
        }
        if batch.is_empty() {
            return Err("static batch formation stalled: head request never fits".into());
        }
        let b = batch.len();
        let pad_prompt = batch.iter().map(|r| r.prompt.len()).max().unwrap();
        let pad_gen = batch.iter().map(|r| r.n_generate).max().unwrap();
        let rung = engine.rung();
        let start = now;

        // Prefill all, padded to the longest prompt (the padding is
        // *cost*, the KV holds only real tokens).
        let mut gens: Vec<Vec<usize>> = Vec::with_capacity(b);
        for req in &batch {
            engine.register(req.id as u64).map_err(|e| e.to_string())?;
            let first = engine
                .prefill_chunk(req.id as u64, &req.prompt, 0, true)
                .map_err(|e| e.to_string())?
                .expect("full prefill returns the first token");
            gens.push(vec![first]);
        }
        let prefill_cost = engine.iteration_cost_s(rung, pad_prompt * b, 0);
        prefill_tokens += (pad_prompt * b) as u64;
        iterations += 1;
        let t_first = start + prefill_cost;
        kv_peak = kv_peak.max(engine.pool().occupancy());

        // Lock-step decode to the longest request; finished sequences
        // still occupy their slot.
        let mut t_cursor = t_first;
        for _step in 1..pad_gen {
            for (req, gen) in batch.iter().zip(gens.iter_mut()) {
                if gen.len() < req.n_generate {
                    let last = *gen.last().unwrap();
                    let pos = req.prompt.len() + gen.len() - 1;
                    let tok = engine
                        .decode_one(req.id as u64, last, pos)
                        .map_err(|e| e.to_string())?;
                    gen.push(tok);
                }
            }
            t_cursor += engine.iteration_cost_s(rung, 0, b);
            iterations += 1;
            kv_peak = kv_peak.max(engine.pool().occupancy());
        }
        occupancy_sum += (b * pad_gen.max(1)) as f64;
        peak_batch = peak_batch.max(b);

        let end = t_cursor;
        for (req, gen) in batch.iter().zip(gens) {
            engine.release(req.id as u64);
            adm.note_served(1);
            finished_all.push(FinishedRequest {
                id: req.id,
                tokens: gen,
                ttft_s: t_first - req.arrival_s,
                finish_s: end,
                sojourn_s: end - req.arrival_s,
                deadline_met: req.deadline_s.is_none_or(|d| end <= d),
                preempted: 0,
            });
        }
        now = end;
        makespan = end;
    }

    let stats = adm.stats();
    let completed = finished_all.len();
    let on_time = finished_all.iter().filter(|f| f.deadline_met).count();
    let ttft = LatencySummary::from_samples(finished_all.iter().map(|f| f.ttft_s).collect());
    let tpot = LatencySummary::from_samples(
        finished_all
            .iter()
            .filter(|f| f.tokens.len() > 1)
            .map(|f| (f.sojourn_s - f.ttft_s).max(0.0) / (f.tokens.len() - 1) as f64)
            .collect(),
    );
    let sojourn = LatencySummary::from_samples(finished_all.iter().map(|f| f.sojourn_s).collect());
    Ok(ContinuousReport {
        mode: "static".to_string(),
        stats,
        pending_end: adm.pending(),
        completed,
        generated_tokens: finished_all.iter().map(|f| f.tokens.len() as u64).sum(),
        prefill_tokens,
        iterations,
        makespan_s: makespan,
        throughput_tok_s: if makespan > 0.0 {
            finished_all.iter().map(|f| f.tokens.len() as f64).sum::<f64>() / makespan
        } else {
            0.0
        },
        goodput_rps: if makespan > 0.0 { on_time as f64 / makespan } else { 0.0 },
        deadline_miss_rate: if completed > 0 {
            (completed - on_time) as f64 / completed as f64
        } else {
            0.0
        },
        ttft,
        tpot,
        sojourn,
        mean_batch_occupancy: if iterations > 0 {
            occupancy_sum / iterations as f64
        } else {
            0.0
        },
        peak_batch,
        kv_peak_occupancy: kv_peak,
        kv_peak_blocks: engine.pool().stats().peak_blocks,
        preemptions: 0,
        rung_transitions: 0,
        outputs: finished_all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overload::poisson_requests;

    fn sim_engine(n_blocks: usize) -> SimStepEngine {
        SimStepEngine::new(
            KvPoolConfig { n_blocks, block_tokens: 16 },
            IterCost::default_ladder(3),
            97,
            42,
        )
    }

    fn trace(n: usize, rate: f64, seed: u64) -> Vec<Request> {
        poisson_requests(n, rate, 24, 8, seed).unwrap()
    }

    #[test]
    fn completes_everything_and_conserves() {
        let report =
            serve_continuous(sim_engine(512), &trace(200, 50.0, 1), ContinuousConfig::default(), None)
                .unwrap();
        assert!(report.conserves(), "conservation: {:?}", report.stats);
        assert_eq!(report.pending_end, 0);
        assert_eq!(
            report.completed + report.stats.shed + report.stats.expired,
            report.stats.offered
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn tokens_match_the_oracle_exactly() {
        let reqs = trace(100, 80.0, 7);
        let report =
            serve_continuous(sim_engine(256), &reqs, ContinuousConfig::default(), None).unwrap();
        let by_id: HashMap<usize, &Request> = reqs.iter().map(|r| (r.id, r)).collect();
        assert!(!report.outputs.is_empty());
        for fin in &report.outputs {
            let req = by_id[&fin.id];
            assert_eq!(
                fin.tokens,
                sim_oracle_tokens(42, 97, &req.prompt, req.n_generate),
                "request {}",
                fin.id
            );
            assert_eq!(fin.tokens.len(), req.n_generate);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let reqs = trace(150, 60.0, 3);
        let a = serve_continuous(sim_engine(256), &reqs, ContinuousConfig::default(), None).unwrap();
        let b = serve_continuous(sim_engine(256), &reqs, ContinuousConfig::default(), None).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn kv_pressure_preempts_and_still_finishes_everything() {
        // A pool far too small for the offered concurrency: preemption
        // must kick in, and every request must still finish with
        // oracle-exact tokens.
        let cfg = ContinuousConfig { max_batch: 16, ..ContinuousConfig::default() };
        let reqs = trace(60, 500.0, 9);
        let report = serve_continuous(sim_engine(8), &reqs, cfg, None).unwrap();
        assert!(report.conserves());
        assert_eq!(report.pending_end, 0);
        assert!(report.preemptions > 0, "tiny pool must force preemption");
        let by_id: HashMap<usize, &Request> = reqs.iter().map(|r| (r.id, r)).collect();
        for fin in &report.outputs {
            let req = by_id[&fin.id];
            assert_eq!(fin.tokens, sim_oracle_tokens(42, 97, &req.prompt, req.n_generate));
        }
    }

    #[test]
    fn infeasible_requests_are_shed_not_livelocked() {
        let mut reqs = trace(10, 10.0, 5);
        // One request that can never fit the pool.
        reqs[3].prompt = vec![1; 16 * 600];
        let report =
            serve_continuous(sim_engine(512), &reqs, ContinuousConfig::default(), None).unwrap();
        assert!(report.conserves());
        assert!(report.stats.shed >= 1);
        assert_eq!(report.completed, 9);
    }

    #[test]
    fn continuous_beats_static_on_sojourn_under_dispersion() {
        // Mixed lengths + bursty arrivals: static padding and
        // run-to-longest must cost sojourn vs continuous.
        let reqs = trace(300, 120.0, 11);
        let cont = serve_continuous(sim_engine(1024), &reqs, ContinuousConfig::default(), None)
            .unwrap();
        let stat =
            serve_static(sim_engine(1024), &reqs, ContinuousConfig::default(), 8, 0.5).unwrap();
        assert!(cont.conserves() && stat.conserves());
        let (cs, ss) = (cont.sojourn.unwrap(), stat.sojourn.unwrap());
        assert!(
            cs.mean < ss.mean,
            "continuous mean sojourn {} must beat static {}",
            cs.mean,
            ss.mean
        );
    }

    #[test]
    fn static_and_continuous_generate_identical_tokens() {
        let reqs = trace(40, 30.0, 13);
        let cont =
            serve_continuous(sim_engine(512), &reqs, ContinuousConfig::default(), None).unwrap();
        let stat = serve_static(sim_engine(512), &reqs, ContinuousConfig::default(), 4, 0.5).unwrap();
        let mut a: Vec<_> = cont.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect();
        let mut b: Vec<_> = stat.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "batching policy must not change tokens");
    }

    #[test]
    fn phase_policies_all_complete_and_prefill_first_helps_ttft() {
        let reqs = trace(200, 100.0, 17);
        let mk = |policy| ContinuousConfig { policy, ..ContinuousConfig::default() };
        let df = serve_continuous(sim_engine(1024), &reqs, mk(PhasePolicy::DecodeFirst), None)
            .unwrap();
        let pf = serve_continuous(sim_engine(1024), &reqs, mk(PhasePolicy::PrefillFirst), None)
            .unwrap();
        let mx = serve_continuous(
            sim_engine(1024),
            &reqs,
            mk(PhasePolicy::Mixed { prefill_frac: 0.5 }),
            None,
        )
        .unwrap();
        for r in [&df, &pf, &mx] {
            assert!(r.conserves());
            assert_eq!(r.pending_end, 0);
        }
        // Prefill-first must not be worse on TTFT than decode-first.
        assert!(pf.ttft.unwrap().mean <= df.ttft.unwrap().mean * 1.25 + 1e-9);
    }

    #[test]
    fn degradation_rungs_engage_under_overload() {
        let cfg = ContinuousConfig {
            admission: AdmissionConfig { max_queue: 32, ..AdmissionConfig::default() },
            degradation: Some(DegradationConfig { high: 0.5, low: 0.1, dwell: 2 }),
            token_budget: 64,
            max_batch: 8,
            ..ContinuousConfig::default()
        };
        let reqs = trace(400, 2000.0, 19);
        let report = serve_continuous(sim_engine(2048), &reqs, cfg, None).unwrap();
        assert!(report.conserves());
        assert!(report.rung_transitions > 0, "sustained overload must climb the ladder");
    }

    #[test]
    fn deadline_shed_conserves_and_misses_show_up() {
        let cfg = ContinuousConfig {
            admission: AdmissionConfig {
                policy: crate::overload::AdmissionPolicy::DeadlineShed,
                default_deadline_s: Some(0.15),
                max_queue: 4096,
                ..AdmissionConfig::default()
            },
            ..ContinuousConfig::default()
        };
        let reqs = trace(500, 800.0, 23);
        let report = serve_continuous(sim_engine(1024), &reqs, cfg, None).unwrap();
        assert!(report.conserves());
        assert!(report.stats.expired > 0, "overload at 800 rps must expire something");
    }

    #[test]
    fn ten_k_concurrent_virtual_clock_run_holds_invariants() {
        // The acceptance-scale run: 10k requests at far-over-capacity
        // arrival rate, all in flight or queued concurrently.
        let cfg = ContinuousConfig {
            admission: AdmissionConfig { max_queue: 20_000, ..AdmissionConfig::default() },
            token_budget: 512,
            max_batch: 256,
            ..ContinuousConfig::default()
        };
        let reqs = poisson_requests(10_000, 5_000.0, 16, 4, 29).unwrap();
        let report = serve_continuous(sim_engine(8192), &reqs, cfg, None).unwrap();
        assert!(report.conserves(), "conservation at 10k: {:?}", report.stats);
        assert_eq!(report.pending_end, 0);
        assert_eq!(report.completed, 10_000, "no starvation: everything finishes");
        assert!(report.peak_batch > 64, "the batch must actually fill");
        // Spot-check oracle consistency on a sample.
        let by_id: HashMap<usize, &Request> = reqs.iter().map(|r| (r.id, r)).collect();
        for fin in report.outputs.iter().step_by(997) {
            let req = by_id[&fin.id];
            assert_eq!(fin.tokens, sim_oracle_tokens(42, 97, &req.prompt, req.n_generate));
        }
    }

    #[test]
    fn scheduler_step_api_reports_expired_ids() {
        let cfg = ContinuousConfig {
            admission: AdmissionConfig {
                policy: crate::overload::AdmissionPolicy::QueueTimeout,
                queue_timeout_s: 0.01,
                ..AdmissionConfig::default()
            },
            max_batch: 1,
            ..ContinuousConfig::default()
        };
        let mut sched = ContinuousScheduler::new(sim_engine(64), cfg).unwrap();
        for id in 0..3 {
            sched.offer(
                Request {
                    id,
                    arrival_s: 0.0,
                    prompt: vec![1, 2, 3],
                    n_generate: 2,
                    deadline_s: None,
                    priority: 1,
                },
                0.0,
            );
        }
        // Only one joins (max_batch = 1); jumping far past the queue
        // timeout must reap the two still queued, by id.
        let out = sched.step(0.0).unwrap();
        assert!(out.expired_ids.is_empty());
        let out = sched.step(10.0).unwrap();
        assert_eq!(out.expired_ids, vec![1, 2]);
        assert!(sched.stats().expired == 2);
    }

    #[test]
    fn oracle_is_chunking_invariant() {
        // Prefilling in chunks of 1 vs all-at-once gives identical
        // tokens (the e2e analog is chunked vs full prefill).
        let prompt: Vec<usize> = (0..37).map(|i| (i * 13) % 90).collect();
        let small_chunks = {
            let mut e = sim_engine(64);
            e.register(5).unwrap();
            let mut first = None;
            for (i, &t) in prompt.iter().enumerate() {
                first = e.prefill_chunk(5, &[t], i, i + 1 == prompt.len()).unwrap();
            }
            first.unwrap()
        };
        let bulk = {
            let mut e = sim_engine(64);
            e.register(5).unwrap();
            e.prefill_chunk(5, &prompt, 0, true).unwrap().unwrap()
        };
        assert_eq!(small_chunks, bulk);
        assert_eq!(bulk, sim_oracle_tokens(42, 97, &prompt, 1)[0]);
    }

    #[test]
    fn quantization_buys_kv_headroom_under_a_memory_budget() {
        // The packed-weights payoff online: under the same device
        // budget, an int4 ladder leaves more bytes for KV blocks than
        // an fp16 ladder — so the serve-path guard admits longer/more
        // sequences.
        use llmpq_model::{RefConfig, RefModel};
        use llmpq_quant::Bitwidth;
        let checkpoint = RefModel::new(RefConfig::tiny());
        let fp16 = vec![BitAssignment::uniform(checkpoint.cfg.n_layers, Bitwidth::Fp16)];
        let int4 = vec![BitAssignment::uniform(checkpoint.cfg.n_layers, Bitwidth::Int4)];
        let budget = 2 * 1024 * 1024;
        let e16 = ModelStepEngine::new_with_budget(
            &checkpoint, &fp16, Rounding::Deterministic, 0, 16, budget,
        )
        .unwrap();
        let e4 = ModelStepEngine::new_with_budget(
            &checkpoint, &int4, Rounding::Deterministic, 0, 16, budget,
        )
        .unwrap();
        assert!(
            e4.weight_resident_bytes() * 5 < e16.weight_resident_bytes(),
            "int4 weights {} should be well under a fifth of fp16 {}",
            e4.weight_resident_bytes(),
            e16.weight_resident_bytes()
        );
        assert!(
            e4.pool().free_blocks() > e16.pool().free_blocks(),
            "int4 pool {} blocks should exceed fp16 pool {}",
            e4.pool().free_blocks(),
            e16.pool().free_blocks()
        );
        // The carve-up actually respects the budget.
        let block = ModelStepEngine::kv_block_bytes(&checkpoint.cfg, 16);
        for e in [&e16, &e4] {
            assert!(e.weight_resident_bytes() + e.pool().free_blocks() * block <= budget);
        }
    }

    #[test]
    fn budget_too_small_for_weights_is_an_error() {
        use llmpq_model::{RefConfig, RefModel};
        use llmpq_quant::Bitwidth;
        let checkpoint = RefModel::new(RefConfig::tiny());
        let ladder = vec![BitAssignment::uniform(checkpoint.cfg.n_layers, Bitwidth::Fp16)];
        let err = ModelStepEngine::new_with_budget(
            &checkpoint, &ladder, Rounding::Deterministic, 0, 16, 1024,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("memory budget"), "{err}");
    }

    #[test]
    fn phase_policy_parses() {
        assert_eq!("decode-first".parse::<PhasePolicy>().unwrap(), PhasePolicy::DecodeFirst);
        assert_eq!("prefill-first".parse::<PhasePolicy>().unwrap(), PhasePolicy::PrefillFirst);
        assert_eq!(
            "mixed:0.25".parse::<PhasePolicy>().unwrap(),
            PhasePolicy::Mixed { prefill_frac: 0.25 }
        );
        assert!("mixed:1.5".parse::<PhasePolicy>().is_err());
        assert!("bogus".parse::<PhasePolicy>().is_err());
    }
}
