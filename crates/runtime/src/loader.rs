//! On-the-fly quantizing model loader (paper §5).
//!
//! "We have decoupled the integrated model weight into module-level
//! weights. During runtime, we determine the granularity of processed
//! weights by overlapping the disk-to-CPU weight loading time with the
//! on-GPU model quantization and CPU-to-GPU memory copy. This results in
//! a significant reduction in DRAM required for model loading."
//!
//! Here the "checkpoint" is the FP32 reference model; the loader streams
//! it one linear module at a time, quantizing each module to its layer's
//! target precision before the next module is staged. [`LoaderStats`]
//! tracks the peak staging footprint, which must stay bounded by one
//! module — not one model.

use llmpq_model::{LayerWeights, LinearOp, Matrix, RefModel};
use llmpq_quant::{pack_operator, Bitwidth, Rounding};
use serde::{Deserialize, Serialize};

/// Statistics of a loading pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LoaderStats {
    /// Total bytes streamed from the checkpoint.
    pub bytes_streamed: u64,
    /// Peak bytes staged in "CPU RAM" at any moment.
    pub peak_staging_bytes: u64,
    /// Number of modules processed.
    pub modules: usize,
    /// Number of modules that were quantized (vs copied at FP16).
    pub quantized_modules: usize,
}

/// Streams layer weights module-by-module, quantizing on the fly.
#[derive(Debug)]
pub struct OnTheFlyQuantizer {
    rounding: Rounding,
    seed: u64,
    stats: LoaderStats,
    staged: u64,
}

impl OnTheFlyQuantizer {
    /// New loader with the quantization rounding mode and seed.
    pub fn new(rounding: Rounding, seed: u64) -> Self {
        Self { rounding, seed, stats: LoaderStats::default(), staged: 0 }
    }

    /// Loader statistics so far.
    pub fn stats(&self) -> LoaderStats {
        self.stats
    }

    fn stage_bytes(m: &Matrix) -> u64 {
        (m.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Stream one module: stage it, quantize to the packed layout (or
    /// pass through dense), release the staging buffer.
    fn process_module(&mut self, src: &Matrix, bits: Bitwidth, module_seed: u64) -> LinearOp {
        let bytes = Self::stage_bytes(src);
        self.staged += bytes;
        self.stats.peak_staging_bytes = self.stats.peak_staging_bytes.max(self.staged);
        self.stats.bytes_streamed += bytes;
        self.stats.modules += 1;
        let out = if bits == Bitwidth::Fp16 {
            LinearOp::Dense(src.clone())
        } else {
            self.stats.quantized_modules += 1;
            pack_operator(src, bits, self.rounding, module_seed)
        };
        // Staging buffer released once the module is on the "GPU".
        self.staged -= bytes;
        out
    }

    /// Load one decoder layer at `bits`, module by module. Matches the
    /// numerics of `llmpq_quant::quantize_model` exactly (same per-layer
    /// seeds), so a runtime-loaded model is bit-identical to an eagerly
    /// quantized one.
    pub fn load_layer(&mut self, checkpoint: &RefModel, layer: usize, bits: Bitwidth) -> LayerWeights {
        let src = &checkpoint.layers[layer];
        let mut out = src.clone();
        if bits != Bitwidth::Fp16 {
            let layer_seed = self.seed ^ ((layer as u64) << 32);
            for (name, srcw) in src.linear_operators() {
                let packed = self.process_module(srcw.dense(), bits, layer_seed ^ name.len() as u64);
                *out.linear_operator_mut(name).unwrap() = packed;
            }
        } else {
            for (_, m) in src.linear_operators() {
                // FP16 modules still stream through staging.
                let _ = self.process_module(m.dense(), Bitwidth::Fp16, 0);
            }
        }
        out
    }
}

/// Load a contiguous shard of layers at the given per-layer precisions;
/// returns the stage's weights and the loader statistics.
pub fn load_stage_weights(
    checkpoint: &RefModel,
    layer_start: usize,
    bits: &[Bitwidth],
    rounding: Rounding,
    seed: u64,
) -> (Vec<LayerWeights>, LoaderStats) {
    let mut loader = OnTheFlyQuantizer::new(rounding, seed);
    let weights = bits
        .iter()
        .enumerate()
        .map(|(i, &b)| loader.load_layer(checkpoint, layer_start + i, b))
        .collect();
    (weights, loader.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_model::{RefConfig, RefModel};
    use llmpq_quant::{quantize_model, BitAssignment};

    fn model() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    #[test]
    fn staging_bounded_by_one_module() {
        let m = model();
        let bits = vec![Bitwidth::Int4; m.cfg.n_layers];
        let (_, stats) = load_stage_weights(&m, 0, &bits, Rounding::Deterministic, 0);
        let largest_module = m.layers[0]
            .linear_operators()
            .iter()
            .map(|(_, w)| (w.dense().data.len() * 4) as u64)
            .max()
            .unwrap();
        assert_eq!(
            stats.peak_staging_bytes, largest_module,
            "peak staging must equal the largest single module"
        );
        let total: u64 = stats.bytes_streamed;
        assert!(total >= 6 * largest_module, "whole shard streamed through");
    }

    #[test]
    fn matches_eager_quantization_bit_for_bit() {
        let m = model();
        let assignment = BitAssignment {
            bits: vec![Bitwidth::Int4, Bitwidth::Int8],
        };
        let eager = quantize_model(&m, &assignment, Rounding::Deterministic, 0);
        let (streamed, _) =
            load_stage_weights(&m, 0, &assignment.bits, Rounding::Deterministic, 0);
        for (l, sw) in streamed.iter().enumerate() {
            assert_eq!(sw.wq, eager.layers[l].wq, "layer {l} wq");
            assert_eq!(sw.w2, eager.layers[l].w2, "layer {l} w2");
        }
    }

    #[test]
    fn fp16_layers_pass_through_unchanged() {
        let m = model();
        let (w, stats) =
            load_stage_weights(&m, 1, &[Bitwidth::Fp16], Rounding::Deterministic, 0);
        assert_eq!(w[0].wq, m.layers[1].wq);
        assert_eq!(stats.quantized_modules, 0);
        assert_eq!(stats.modules, 6);
    }

    #[test]
    fn stats_count_quantized_modules() {
        let m = model();
        let (_, stats) = load_stage_weights(
            &m,
            0,
            &[Bitwidth::Int3, Bitwidth::Fp16],
            Rounding::Deterministic,
            7,
        );
        assert_eq!(stats.quantized_modules, 6, "one quantized layer = 6 modules");
        assert_eq!(stats.modules, 12);
    }
}
