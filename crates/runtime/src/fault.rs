//! Seeded, deterministic fault injection for the pipeline runtime.
//!
//! The paper motivates the on-the-fly quantizing loader partly as a
//! *recovery* mechanism (§5: it "improves recovery speed"); this module
//! supplies the other half of that story — a reproducible way to make
//! things fail. A [`FaultPlan`] schedules faults at `(stage, step)`
//! points: worker crashes, hung (not dead) stages, straggler slowdowns,
//! dropped or duplicated channel messages, and permanent device loss.
//! Every event fires at most once (one-shot consumption), so a restarted
//! attempt does not trip over the same transient fault again — except
//! for [`FaultKind::DeviceLoss`], which is permanent by definition: any
//! later attempt whose plan still maps a stage onto the lost device is
//! killed immediately, which is what forces the supervisor to *replan*.
//!
//! Plans serialize to JSON (`llmpq-dist --fault-plan faults.json`) and
//! can be generated from a seed for property tests.

use crate::clock::{real_clock, Clock};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The stage worker dies, dropping its channels (process crash).
    Crash,
    /// The stage worker stops processing *and* stops heartbeating but
    /// keeps its channels open — detectable only by heartbeat timeout,
    /// never by disconnect.
    Hang,
    /// The stage becomes a straggler: every subsequent item takes
    /// `factor ×` its compute time for the rest of the attempt.
    Slowdown {
        /// Latency multiplier (≥ 1.0).
        factor: f64,
    },
    /// The work item is lost in transit: neither processed nor
    /// forwarded. The pipeline stalls until the supervisor notices the
    /// lack of progress.
    DropMessage,
    /// The work item is forwarded twice; downstream must deduplicate or
    /// its KV caches corrupt.
    DuplicateMessage,
    /// The stage's device is lost permanently: this attempt crashes and
    /// every future attempt placing work on the device crashes at step
    /// 0, until the plan stops using it.
    DeviceLoss,
}

/// One scheduled fault: fires when `stage` is about to process its
/// `step`-th work item (stage-local ordinal, counted from 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Pipeline stage index the fault targets.
    pub stage: usize,
    /// Stage-local work-item ordinal at which the fault fires.
    pub step: usize,
    /// Restrict the fault to one attempt (`None` = first attempt that
    /// reaches the step).
    #[serde(default)]
    pub attempt: Option<usize>,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, each consumed at most once.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Single crash of `stage` when it reaches item `step` — the
    /// replacement for the old `fail_stage_after: Option<(stage, k)>`
    /// tuple.
    pub fn crash(stage: usize, step: usize) -> Self {
        Self { events: vec![FaultEvent { stage, step, attempt: None, kind: FaultKind::Crash }] }
    }

    /// One crash per attempt: `schedule[k]` crashes that stage/step on
    /// attempt `k` — the replacement for the old `fail_schedule` slice.
    pub fn crash_schedule(schedule: &[(usize, usize)]) -> Self {
        Self {
            events: schedule
                .iter()
                .enumerate()
                .map(|(k, &(stage, step))| FaultEvent {
                    stage,
                    step,
                    attempt: Some(k),
                    kind: FaultKind::Crash,
                })
                .collect(),
        }
    }

    /// Permanent loss of the device hosting `stage`, at item `step`.
    pub fn device_loss(stage: usize, step: usize) -> Self {
        Self { events: vec![FaultEvent { stage, step, attempt: None, kind: FaultKind::DeviceLoss }] }
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Structural check against a pipeline with `n_stages` stages.
    pub fn validate(&self, n_stages: usize) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.stage >= n_stages {
                return Err(format!("fault event {i} targets stage {} of {n_stages}", e.stage));
            }
            if let FaultKind::Slowdown { factor } = e.kind {
                if factor < 1.0 || factor.is_nan() {
                    return Err(format!("fault event {i}: slowdown factor {factor} < 1"));
                }
            }
        }
        Ok(())
    }

    /// A bounded, seeded random plan (property-test generator): up to
    /// `max_events` events over `n_stages` stages and `max_steps` steps.
    /// The same seed always yields the same plan.
    pub fn random(seed: u64, n_stages: usize, max_steps: usize, max_events: usize) -> Self {
        assert!(n_stages > 0 && max_steps > 0);
        // SplitMix64 — self-contained so the runtime crate needs no RNG
        // dependency.
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = (next() as usize) % (max_events + 1);
        let events = (0..n)
            .map(|_| {
                let stage = (next() as usize) % n_stages;
                let step = (next() as usize) % max_steps;
                let kind = match next() % 5 {
                    0 => FaultKind::Crash,
                    1 => FaultKind::Slowdown { factor: 1.0 + (next() % 4) as f64 },
                    2 => FaultKind::DropMessage,
                    3 => FaultKind::DuplicateMessage,
                    _ => FaultKind::DeviceLoss,
                };
                FaultEvent { stage, step, attempt: None, kind }
            })
            .collect();
        Self { events }
    }

    /// Serialize to the `--fault-plan` JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plans are serializable")
    }

    /// Parse a `--fault-plan` file.
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// What a worker must do with the work item it is about to process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Business as usual.
    None,
    /// Die now, dropping channels without draining.
    Crash,
    /// Stop processing and heartbeating; keep channels open until the
    /// run aborts.
    Hang,
    /// Process, but multiply compute time by the factor from here on.
    Slowdown(f64),
    /// Lose the item: do not process, do not forward.
    Drop,
    /// Process once, forward twice.
    Duplicate,
}

/// Shared fault-injection state for one supervised run: consumes plan
/// events, tracks permanently lost devices, and carries the abort flag
/// that un-wedges hung workers at attempt teardown.
///
/// `lost_devices` doubles as the simulated cluster-health view: in a
/// real deployment the cluster manager reports unreachable devices; here
/// the supervisor reads them from the injector.
#[derive(Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    consumed: Vec<AtomicBool>,
    lost: Mutex<Vec<usize>>,
    abort: AtomicBool,
    attempt: AtomicUsize,
}

impl FaultInjector {
    /// Injector over a plan (validated by the caller).
    pub fn new(plan: &FaultPlan) -> Arc<Self> {
        Arc::new(Self {
            consumed: plan.events.iter().map(|_| AtomicBool::new(false)).collect(),
            events: plan.events.clone(),
            lost: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
            attempt: AtomicUsize::new(0),
        })
    }

    /// Reset per-attempt state (abort flag) and record the attempt
    /// number events may filter on.
    pub fn begin_attempt(&self, attempt: usize) {
        self.attempt.store(attempt, Ordering::SeqCst);
        self.abort.store(false, Ordering::SeqCst);
    }

    /// Signal every worker (including hung ones) to exit.
    pub fn set_abort(&self) {
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Whether the current attempt is being torn down.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Devices reported permanently lost so far.
    pub fn lost_devices(&self) -> Vec<usize> {
        self.lost.lock().clone()
    }

    /// Whether `device` has been lost.
    pub fn device_is_lost(&self, device: usize) -> bool {
        self.lost.lock().contains(&device)
    }

    /// Decide the fate of the item `stage` (running on `device`) is
    /// about to process as its `step`-th of this attempt. Matching
    /// events are consumed exactly once.
    pub fn on_item(&self, stage: usize, device: usize, step: usize) -> FaultAction {
        if self.device_is_lost(device) {
            return FaultAction::Crash;
        }
        let attempt = self.attempt.load(Ordering::SeqCst);
        for (i, e) in self.events.iter().enumerate() {
            if e.stage != stage || e.step != step {
                continue;
            }
            if let Some(a) = e.attempt {
                if a != attempt {
                    continue;
                }
            }
            if self.consumed[i].swap(true, Ordering::SeqCst) {
                continue;
            }
            return match e.kind {
                FaultKind::Crash => FaultAction::Crash,
                FaultKind::Hang => FaultAction::Hang,
                FaultKind::Slowdown { factor } => FaultAction::Slowdown(factor),
                FaultKind::DropMessage => FaultAction::Drop,
                FaultKind::DuplicateMessage => FaultAction::Duplicate,
                FaultKind::DeviceLoss => {
                    let mut lost = self.lost.lock();
                    if !lost.contains(&device) {
                        lost.push(device);
                    }
                    FaultAction::Crash
                }
            };
        }
        FaultAction::None
    }
}

/// Per-stage liveness signals: each worker stamps its slot on every
/// channel tick and after every processed item; the supervisor flags a
/// stage whose stamp goes stale. This detects *hung* stages — a dead
/// one already shows up as a channel disconnect.
///
/// Staleness is measured against a [`Clock`], so the same board works
/// on wall-clock time (production) and on the virtual timeline of the
/// deterministic simulation harness ([`crate::simnet`]).
pub struct Heartbeats {
    clock: Arc<dyn Clock>,
    beats: Vec<AtomicU64>,
}

impl std::fmt::Debug for Heartbeats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeats").field("stages", &self.beats.len()).finish()
    }
}

impl Heartbeats {
    /// Fresh heartbeat board for `n_stages` stages; every stage counts
    /// as live at creation time. Ages are wall-clock.
    pub fn new(n_stages: usize) -> Arc<Self> {
        Self::with_clock(n_stages, real_clock())
    }

    /// Heartbeat board reading time from `clock` (the simulation
    /// harness passes a virtual clock here).
    pub fn with_clock(n_stages: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self { clock, beats: (0..n_stages).map(|_| AtomicU64::new(0)).collect() })
    }

    /// Record that `stage` is alive now.
    pub fn beat(&self, stage: usize) {
        if let Some(b) = self.beats.get(stage) {
            b.store(self.clock.now_us(), Ordering::Relaxed);
        }
    }

    /// Time since `stage` last beat.
    pub fn age(&self, stage: usize) -> Duration {
        let last = self.beats.get(stage).map_or(0, |b| b.load(Ordering::Relaxed));
        self.clock.now().saturating_sub(Duration::from_micros(last))
    }

    /// Index of the stalest stage exceeding `timeout`, if any.
    pub fn stalest_over(&self, timeout: Duration) -> Option<usize> {
        (0..self.beats.len())
            .map(|s| (s, self.age(s)))
            .filter(|(_, a)| *a > timeout)
            .max_by_key(|(_, a)| *a)
            .map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once() {
        let plan = FaultPlan::crash(1, 2);
        let inj = FaultInjector::new(&plan);
        inj.begin_attempt(0);
        assert_eq!(inj.on_item(1, 9, 0), FaultAction::None);
        assert_eq!(inj.on_item(0, 8, 2), FaultAction::None, "wrong stage");
        assert_eq!(inj.on_item(1, 9, 2), FaultAction::Crash);
        inj.begin_attempt(1);
        assert_eq!(inj.on_item(1, 9, 2), FaultAction::None, "consumed");
    }

    #[test]
    fn attempt_filter_respected() {
        let plan = FaultPlan::crash_schedule(&[(0, 1), (1, 3)]);
        let inj = FaultInjector::new(&plan);
        inj.begin_attempt(0);
        assert_eq!(inj.on_item(1, 5, 3), FaultAction::None, "attempt-1 event");
        assert_eq!(inj.on_item(0, 4, 1), FaultAction::Crash);
        inj.begin_attempt(1);
        assert_eq!(inj.on_item(1, 5, 3), FaultAction::Crash);
    }

    #[test]
    fn device_loss_is_permanent() {
        let plan = FaultPlan::device_loss(0, 1);
        let inj = FaultInjector::new(&plan);
        inj.begin_attempt(0);
        assert_eq!(inj.on_item(0, 7, 1), FaultAction::Crash);
        assert_eq!(inj.lost_devices(), vec![7]);
        inj.begin_attempt(1);
        // Same device, any step: still dead. Another device: fine.
        assert_eq!(inj.on_item(0, 7, 0), FaultAction::Crash);
        assert_eq!(inj.on_item(0, 3, 0), FaultAction::None);
    }

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent { stage: 0, step: 3, attempt: Some(1), kind: FaultKind::Slowdown { factor: 2.5 } },
                FaultEvent { stage: 2, step: 0, attempt: None, kind: FaultKind::DuplicateMessage },
                FaultEvent { stage: 1, step: 5, attempt: None, kind: FaultKind::DeviceLoss },
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn validate_rejects_bad_events() {
        assert!(FaultPlan::crash(3, 0).validate(2).is_err());
        let bad = FaultPlan {
            events: vec![FaultEvent { stage: 0, step: 0, attempt: None, kind: FaultKind::Slowdown { factor: 0.5 } }],
        };
        assert!(bad.validate(1).is_err());
        assert!(FaultPlan::crash(1, 0).validate(2).is_ok());
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::random(42, 3, 8, 5);
        let b = FaultPlan::random(42, 3, 8, 5);
        assert_eq!(a, b);
        assert!(a.events.len() <= 5);
        a.validate(3).unwrap();
        for e in &a.events {
            assert!(e.stage < 3 && e.step < 8);
        }
        // Different seeds should (eventually) differ.
        assert!((0..20).any(|s| FaultPlan::random(s, 3, 8, 5) != a));
    }

    #[test]
    fn heartbeats_age_and_reset() {
        let hb = Heartbeats::new(2);
        std::thread::sleep(Duration::from_millis(5));
        hb.beat(0);
        assert!(hb.age(0) < hb.age(1));
        assert_eq!(hb.stalest_over(Duration::from_millis(2)), Some(1));
        assert_eq!(hb.stalest_over(Duration::from_secs(60)), None);
    }
}
