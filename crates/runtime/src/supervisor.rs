//! Pipeline supervision: heartbeat/timeout failure detection, bounded
//! restarts with exponential backoff, and replan-on-device-loss.
//!
//! [`run_pipeline_recoverable`](crate::run_pipeline_recoverable) only
//! notices failures when a channel disconnects — a *dead* worker. A
//! production pipeline also sees workers that are alive but wedged
//! (driver hang, network partition) and devices that are gone for good.
//! The supervisor closes both gaps:
//!
//! * every stage worker stamps a [`Heartbeats`] slot on each channel
//!   tick; the master flags a stage whose stamp goes stale
//!   ([`RuntimeError::StageHung`]) and a pipeline that produces nothing
//!   within the progress timeout ([`RuntimeError::Stalled`]);
//! * failed attempts are retried up to
//!   [`SupervisorConfig::max_restarts`] times with exponential backoff,
//!   resuming from the lock-step token checkpoint;
//! * under [`RecoveryPolicy::Replan`], a permanently lost device
//!   triggers a *replan*: the [`Replanner`] produces an
//!   [`ExecutionPlan`] over the survivors (re-running Algorithm 1 on the
//!   shrunken cluster, or falling back to folding the lost stages into
//!   their neighbors), the stage shards are reloaded through the
//!   on-the-fly quantizing loader — the fast-recovery path §5 motivates
//!   — and generation resumes bit-identically to sequential execution
//!   of the *new* plan from the resume point.

use crate::clock::real_clock;
use crate::engine::{
    checkpoint_lockstep, load_all_stages, run_attempt, validate_inputs, AttemptSupervision,
    RuntimeError, RuntimeOutput,
};
use crate::fault::{FaultInjector, FaultPlan, Heartbeats};
use crate::telemetry::Telemetry;
use crate::worker::{MetricsSink, StageMetrics};
use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::RefModel;
use llmpq_quant::Rounding;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// What to do after a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Always retry the same plan (transient-fault assumption).
    RestartSamePlan,
    /// Retry the same plan for transient faults, but when a device is
    /// reported permanently lost, replan onto the survivors.
    Replan,
}

/// Supervisor tuning. All durations are in milliseconds so the config
/// serializes with the rest of the strategy artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// A stage whose heartbeat is older than this is declared hung.
    pub heartbeat_timeout_ms: u64,
    /// The run is declared stalled if the master receives nothing for
    /// this long (catches dropped messages).
    pub progress_timeout_ms: u64,
    /// Channel-poll granularity for workers and master.
    pub tick_ms: u64,
    /// Maximum restarts (attempts − 1) before giving up.
    pub max_restarts: usize,
    /// First backoff delay before a restart.
    pub backoff_base_ms: u64,
    /// Backoff multiplier per consecutive restart.
    pub backoff_factor: f64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Recovery policy.
    pub policy: RecoveryPolicy,
    /// Inter-stage queue bound. `Some(n)` makes every channel in the
    /// pipeline hold at most `n` items, so a slow stage backpressures
    /// its upstream all the way to the master instead of letting queues
    /// grow without bound; `None` keeps the legacy unbounded channels.
    #[serde(default)]
    pub max_queue: Option<usize>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            heartbeat_timeout_ms: 1_000,
            progress_timeout_ms: 5_000,
            tick_ms: 2,
            max_restarts: 3,
            backoff_base_ms: 10,
            backoff_factor: 2.0,
            backoff_cap_ms: 1_000,
            policy: RecoveryPolicy::Replan,
            max_queue: None,
        }
    }
}

impl SupervisorConfig {
    /// Backoff before restart number `restart` (0-based), capped.
    pub fn backoff(&self, restart: usize) -> Duration {
        let ms = self.backoff_base_ms as f64 * self.backoff_factor.powi(restart as i32);
        Duration::from_millis((ms as u64).min(self.backoff_cap_ms))
    }
}

/// Produces a new execution plan when devices are lost. Implementations
/// range from the structural [`FoldReplanner`] to a full re-run of
/// Algorithm 1 on the surviving sub-cluster (see `llm_pq`'s
/// `replan_after_loss`, wired in by the caller since the runtime crate
/// does not depend on the cost models).
pub trait Replanner {
    /// Plan around `lost_devices` (cluster device ids). The returned
    /// plan must cover the same layers and avoid every lost device.
    fn replan(&self, old_plan: &ExecutionPlan, lost_devices: &[usize]) -> Result<ExecutionPlan, String>;
}

/// Structural fallback replanner: folds the layers of every stage on a
/// lost device into the nearest surviving neighbor stage, keeping each
/// layer's bitwidth. Needs no cost model, so it always works — at the
/// price of an unbalanced pipeline; use the assigner-backed replanner
/// when the cost models are at hand.
#[derive(Debug, Clone, Copy, Default)]
pub struct FoldReplanner;

impl Replanner for FoldReplanner {
    fn replan(&self, old_plan: &ExecutionPlan, lost_devices: &[usize]) -> Result<ExecutionPlan, String> {
        let mut merged: Vec<StagePlan> = Vec::new();
        let mut orphan_bits = Vec::new();
        for s in &old_plan.stages {
            if lost_devices.contains(&s.device) {
                match merged.last_mut() {
                    Some(prev) => prev.bits.extend_from_slice(&s.bits),
                    None => orphan_bits.extend_from_slice(&s.bits),
                }
            } else {
                let mut bits = std::mem::take(&mut orphan_bits);
                bits.extend_from_slice(&s.bits);
                merged.push(StagePlan { device: s.device, layer_start: 0, layer_end: 0, bits });
            }
        }
        if merged.is_empty() {
            return Err(format!("no surviving devices (lost {lost_devices:?})"));
        }
        let mut next = 0usize;
        for s in &mut merged {
            s.layer_start = next;
            s.layer_end = next + s.bits.len();
            next = s.layer_end;
        }
        Ok(ExecutionPlan { stages: merged, ..old_plan.clone() })
    }
}

/// What the supervisor did about one failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Retried the same plan after the given backoff.
    Restart {
        /// Backoff slept before the retry, milliseconds.
        backoff_ms: u64,
    },
    /// Replanned around lost devices and reloaded the stage shards.
    Replan {
        /// Devices routed around.
        lost_devices: Vec<usize>,
        /// Stage count of the new plan.
        new_stages: usize,
    },
}

/// One failure the supervisor handled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Attempt number that failed (0-based).
    pub attempt: usize,
    /// The failure, as reported.
    pub error: String,
    /// Tokens per sequence safely checkpointed at the failure.
    pub checkpointed_tokens: usize,
    /// What the supervisor did.
    pub action: RecoveryAction,
}

/// Result of a supervised run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisedOutput {
    /// The generation output (under the final plan's metrics).
    pub output: RuntimeOutput,
    /// Restarts taken (attempts − 1).
    pub restarts: usize,
    /// How many of those restarts replanned.
    pub replans: usize,
    /// The plan that finished the run.
    pub final_plan: ExecutionPlan,
    /// The supervisor's decision log.
    pub events: Vec<RecoveryEvent>,
}

/// Execute `plan` under full supervision: heartbeat + progress timeouts,
/// bounded restarts with exponential backoff, and (policy permitting)
/// replan-on-device-loss through `replanner`.
///
/// `faults` injects deterministic failures for tests and resilience
/// experiments; pass `None` in production.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_supervised(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    cfg: &SupervisorConfig,
    faults: Option<&FaultPlan>,
    replanner: Option<&dyn Replanner>,
) -> Result<SupervisedOutput, RuntimeError> {
    run_pipeline_supervised_observed(
        checkpoint, plan, prompts, n_generate, rounding, seed, cfg, faults, replanner, None,
    )
}

/// [`run_pipeline_supervised`] with an attached
/// [`Telemetry`] hub: besides the per-stage recorders and spans of
/// [`crate::run_pipeline_observed`], the supervisor feeds its restart and
/// replan decisions into the hub's counters (a hung stage's restarts are
/// attributed to that stage). Pass `Telemetry::new(plan.stages.len())` —
/// replans only ever shrink the pipeline, so the recorders stay in range.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_supervised_observed(
    checkpoint: &RefModel,
    plan: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
    rounding: Rounding,
    seed: u64,
    cfg: &SupervisorConfig,
    faults: Option<&FaultPlan>,
    replanner: Option<&dyn Replanner>,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<SupervisedOutput, RuntimeError> {
    validate_inputs(checkpoint, plan, prompts, n_generate, faults)?;
    let clock = real_clock();
    let start = clock.now();
    let injector = faults.map(FaultInjector::new);
    let mut current_plan = plan.clone();
    let (mut stage_weights, mut loader_stats) = load_all_stages(checkpoint, &current_plan, rounding, seed);
    let mut tokens: Vec<Vec<usize>> = vec![Vec::with_capacity(n_generate); prompts.len()];
    let mut sink: MetricsSink = Arc::new(parking_lot::Mutex::new(vec![
        StageMetrics::default();
        current_plan.stages.len()
    ]));
    let mut events = Vec::new();
    let mut restarts = 0usize;
    let mut replans = 0usize;
    let mut attempt = 0usize;
    loop {
        if let Some(inj) = &injector {
            inj.begin_attempt(attempt);
        }
        let sup = AttemptSupervision {
            injector: injector.clone(),
            heartbeats: Some(Heartbeats::with_clock(current_plan.stages.len(), clock.clone())),
            heartbeat_timeout: Some(Duration::from_millis(cfg.heartbeat_timeout_ms)),
            progress_timeout: Some(Duration::from_millis(cfg.progress_timeout_ms)),
            tick: Some(Duration::from_millis(cfg.tick_ms.max(1))),
            telemetry: telemetry.clone(),
            queue_cap: cfg.max_queue,
            clock: clock.clone(),
            migration_host: None,
        };
        match run_attempt(checkpoint, &current_plan, prompts, &mut tokens, n_generate, &stage_weights, &sup, &sink, None)
        {
            Ok(()) => {
                let stage_metrics = sink.lock().clone();
                return Ok(SupervisedOutput {
                    output: RuntimeOutput {
                        tokens,
                        loader_stats,
                        wall_s: clock.now().saturating_sub(start).as_secs_f64(),
                        stage_metrics,
                    },
                    restarts,
                    replans,
                    final_plan: current_plan,
                    events,
                });
            }
            Err(e) => {
                let lost: Vec<usize> = injector.as_ref().map(|i| i.lost_devices()).unwrap_or_default();
                let plan_hits_lost =
                    current_plan.stages.iter().any(|s| lost.contains(&s.device));
                if restarts >= cfg.max_restarts {
                    // Surface a permanent loss as such when restarting
                    // could never have succeeded.
                    if plan_hits_lost {
                        let d = current_plan
                            .stages
                            .iter()
                            .map(|s| s.device)
                            .find(|d| lost.contains(d))
                            .unwrap_or(0);
                        return Err(RuntimeError::DeviceLost(d));
                    }
                    return Err(e);
                }
                checkpoint_lockstep(&mut tokens);
                let checkpointed = tokens.first().map_or(0, Vec::len);
                let action = if plan_hits_lost && cfg.policy == RecoveryPolicy::Replan {
                    match replanner {
                        Some(r) => {
                            let new_plan = r
                                .replan(&current_plan, &lost)
                                .map_err(|m| RuntimeError::BadPlan(format!("replan failed: {m}")))?;
                            new_plan
                                .validate(checkpoint.cfg.n_layers)
                                .map_err(|m| RuntimeError::BadPlan(format!("replanned plan invalid: {m}")))?;
                            if new_plan.stages.iter().any(|s| lost.contains(&s.device)) {
                                return Err(RuntimeError::BadPlan(
                                    "replanned plan still uses a lost device".into(),
                                ));
                            }
                            // Reload every stage shard through the
                            // on-the-fly quantizing loader (only the
                            // re-homed shards would reload in a real
                            // deployment).
                            let (w, ls) = load_all_stages(checkpoint, &new_plan, rounding, seed);
                            stage_weights = w;
                            loader_stats = ls;
                            sink = Arc::new(parking_lot::Mutex::new(vec![
                                StageMetrics::default();
                                new_plan.stages.len()
                            ]));
                            let new_stages = new_plan.stages.len();
                            current_plan = new_plan;
                            replans += 1;
                            RecoveryAction::Replan { lost_devices: lost.clone(), new_stages }
                        }
                        None => {
                            let d = lost.first().copied().unwrap_or(0);
                            return Err(RuntimeError::DeviceLost(d));
                        }
                    }
                } else {
                    let backoff = cfg.backoff(restarts);
                    clock.sleep(backoff);
                    RecoveryAction::Restart { backoff_ms: backoff.as_millis() as u64 }
                };
                if let Some(t) = &telemetry {
                    // A hung stage's restart is attributed to it; other
                    // failures only bump the global counter.
                    let failed_stage = match &e {
                        RuntimeError::StageHung(s) | RuntimeError::StageDisconnected(s) => Some(*s),
                        _ => None,
                    };
                    t.note_restart(failed_stage);
                    if matches!(action, RecoveryAction::Replan { .. }) {
                        t.note_replan();
                    }
                }
                events.push(RecoveryEvent {
                    attempt,
                    error: e.to_string(),
                    checkpointed_tokens: checkpointed,
                    action,
                });
                restarts += 1;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use llmpq_model::RefConfig;
    use llmpq_quant::{quantize_model, BitAssignment, Bitwidth};
    use llmpq_workload::MicrobatchPlan;

    fn model() -> RefModel {
        RefModel::new(RefConfig::tiny())
    }

    fn plan(bits: Vec<Bitwidth>, split: usize, mb: MicrobatchPlan) -> ExecutionPlan {
        let n = bits.len();
        ExecutionPlan {
            model: "tiny".into(),
            cluster: "test".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: split, bits: bits[..split].to_vec() },
                StagePlan { device: 1, layer_start: split, layer_end: n, bits: bits[split..].to_vec() },
            ],
            microbatch: mb,
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        }
    }

    fn mb(p: usize, d: usize, n_seqs: usize) -> MicrobatchPlan {
        MicrobatchPlan {
            prefill_size: p,
            prefill_count: n_seqs.div_ceil(p),
            decode_size: d,
            decode_count: n_seqs.div_ceil(d),
        }
    }

    /// A fast-detection config for tests.
    fn test_cfg() -> SupervisorConfig {
        SupervisorConfig {
            heartbeat_timeout_ms: 60,
            progress_timeout_ms: 150,
            tick_ms: 1,
            max_restarts: 3,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
            backoff_cap_ms: 8,
            policy: RecoveryPolicy::Replan,
            max_queue: None,
        }
    }

    #[test]
    fn fault_free_supervised_run_matches_reference() {
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7]];
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(2, 2, 2)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            None,
            None,
        )
        .expect("clean run");
        assert_eq!(out.restarts, 0);
        assert_eq!(out.replans, 0);
        assert!(out.events.is_empty());
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.output.tokens[i], qm.generate(p, 5, 0.0, 0).tokens, "sequence {i}");
        }
    }

    #[test]
    fn bounded_queues_backpressure_without_changing_tokens() {
        // With every inter-stage queue capped at one item the master is
        // forced to pace itself against the slowest stage; the run must
        // still finish and produce exactly the reference tokens.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7], vec![4, 5], vec![6]];
        let cfg = SupervisorConfig { max_queue: Some(1), ..test_cfg() };
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(1, 1, 4)),
            &prompts,
            6,
            Rounding::Deterministic,
            0,
            &cfg,
            None,
            None,
        )
        .expect("bounded run");
        assert_eq!(out.restarts, 0, "backpressure must not look like a failure");
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.output.tokens[i], qm.generate(p, 6, 0.0, 0).tokens, "sequence {i}");
        }
    }

    #[test]
    fn bounded_queues_compose_with_fault_recovery() {
        // Backpressure and the supervisor's restart path interact: a
        // crash while the master is potentially blocked on a full queue
        // must still be detected and recovered from.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7]];
        let faults = FaultPlan::crash_schedule(&[(1, 2)]);
        let cfg = SupervisorConfig { max_queue: Some(1), ..test_cfg() };
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(1, 1, 2)),
            &prompts,
            6,
            Rounding::Deterministic,
            0,
            &cfg,
            Some(&faults),
            Some(&FoldReplanner),
        )
        .expect("recovered under backpressure");
        assert_eq!(out.restarts, 1);
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.output.tokens[i], qm.generate(p, 6, 0.0, 0).tokens, "sequence {i}");
        }
    }

    #[test]
    fn device_loss_replans_and_resumes_bit_identically() {
        // The acceptance path: stage 1's device dies permanently after
        // three items. The supervisor must replan onto device 0 (fold),
        // reload through the on-the-fly loader, and resume from the
        // lock-step checkpoint with tokens bit-identical to sequential
        // execution of the *new* plan from the resume point. (The fold
        // keeps per-layer bits, so old and new quantized models agree —
        // the degraded-bits variant is covered below.)
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7]];
        let n_gen = 7;
        let faults = FaultPlan::device_loss(1, 3); // prefill + 2 decode steps, then gone
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(2, 2, 2)),
            &prompts,
            n_gen,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            Some(&faults),
            Some(&FoldReplanner),
        )
        .expect("recovered by replanning");
        assert_eq!(out.replans, 1);
        assert_eq!(out.restarts, 1);
        assert_eq!(out.final_plan.stages.len(), 1, "folded onto the survivor");
        assert_eq!(out.final_plan.stages[0].device, 0);
        assert!(matches!(out.events[0].action, RecoveryAction::Replan { .. }));
        assert_eq!(out.events[0].checkpointed_tokens, 3);
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.output.tokens[i], qm.generate(p, n_gen, 0.0, 0).tokens, "sequence {i}");
        }
    }

    /// Replanner that degrades every layer to INT4 on the survivor —
    /// the "shrunken cluster no longer fits the old precision" case.
    struct DegradingReplanner;
    impl Replanner for DegradingReplanner {
        fn replan(&self, old: &ExecutionPlan, lost: &[usize]) -> Result<ExecutionPlan, String> {
            let mut p = FoldReplanner.replan(old, lost)?;
            for s in &mut p.stages {
                for b in &mut s.bits {
                    *b = Bitwidth::Int4;
                }
            }
            Ok(p)
        }
    }

    #[test]
    fn replan_with_degraded_bits_matches_new_plan_from_resume_point() {
        // After the device loss the survivor cannot hold FP16, so the
        // replanner degrades to INT4. Tokens before the failure follow
        // the old model; tokens from the resume point must be exactly
        // what sequential execution of the *new* (INT4) model produces
        // when fed prompt ++ old prefix.
        let m = model();
        let old_bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7]];
        let n_gen = 7;
        let faults = FaultPlan::device_loss(1, 3);
        let out = run_pipeline_supervised(
            &m,
            &plan(old_bits.clone(), 1, mb(2, 2, 2)),
            &prompts,
            n_gen,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            Some(&faults),
            Some(&DegradingReplanner),
        )
        .expect("recovered with degraded bits");
        assert_eq!(out.replans, 1);
        let done = out.events[0].checkpointed_tokens;
        assert_eq!(done, 3);
        let qm_old = quantize_model(&m, &BitAssignment { bits: old_bits }, Rounding::Deterministic, 0);
        let qm_new = quantize_model(
            &m,
            &BitAssignment { bits: vec![Bitwidth::Int4, Bitwidth::Int4] },
            Rounding::Deterministic,
            0,
        );
        for (i, p) in prompts.iter().enumerate() {
            let old_full = qm_old.generate(p, n_gen, 0.0, 0).tokens;
            assert_eq!(&out.output.tokens[i][..done], &old_full[..done], "prefix, sequence {i}");
            let mut resumed_prompt = p.clone();
            resumed_prompt.extend_from_slice(&old_full[..done]);
            let want_tail = qm_new.generate(&resumed_prompt, n_gen - done, 0.0, 0).tokens;
            assert_eq!(&out.output.tokens[i][done..], &want_tail[..], "resume tail, sequence {i}");
        }
    }

    #[test]
    fn hung_stage_detected_by_heartbeat_not_disconnect() {
        // Stage 1 wedges (stops heartbeating, channels stay open). The
        // supervisor must flag StageHung(1) and recover by restarting —
        // the hang is one-shot, so attempt 1 completes.
        let m = model();
        let bits = vec![Bitwidth::Int8, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2, 3], vec![9, 8, 7]];
        let faults = FaultPlan {
            events: vec![FaultEvent { stage: 1, step: 2, attempt: None, kind: FaultKind::Hang }],
        };
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(2, 2, 2)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            Some(&faults),
            Some(&FoldReplanner),
        )
        .expect("recovered from hang");
        assert_eq!(out.restarts, 1);
        assert_eq!(out.replans, 0, "a hang is transient — no replan");
        assert!(
            out.events[0].error.contains("stage 1 hung"),
            "must be detected by heartbeat timeout, got: {}",
            out.events[0].error
        );
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out.output.tokens[i], qm.generate(p, 5, 0.0, 0).tokens, "sequence {i}");
        }
    }

    #[test]
    fn dropped_message_detected_as_stall_and_recovered() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2], vec![3, 4]];
        let faults = FaultPlan {
            events: vec![FaultEvent { stage: 0, step: 2, attempt: None, kind: FaultKind::DropMessage }],
        };
        let out = run_pipeline_supervised(
            &m,
            &plan(bits.clone(), 1, mb(1, 2, 2)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            Some(&faults),
            Some(&FoldReplanner),
        )
        .expect("recovered from dropped message");
        assert_eq!(out.restarts, 1);
        assert!(out.events[0].error.contains("stalled"), "{}", out.events[0].error);
        let qm = quantize_model(&m, &BitAssignment { bits }, Rounding::Deterministic, 0);
        assert_eq!(out.output.tokens[0], qm.generate(&prompts[0], 5, 0.0, 0).tokens);
    }

    #[test]
    fn restart_policy_surfaces_device_loss() {
        // RestartSamePlan cannot route around a lost device: the
        // injector kills the stage on every attempt, and after
        // max_restarts the error names the device.
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2]];
        let faults = FaultPlan::device_loss(1, 1);
        let cfg = SupervisorConfig { policy: RecoveryPolicy::RestartSamePlan, ..test_cfg() };
        let res = run_pipeline_supervised(
            &m,
            &plan(bits, 1, mb(1, 1, 1)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            &cfg,
            Some(&faults),
            None,
        );
        assert!(matches!(res, Err(RuntimeError::DeviceLost(1))), "{res:?}");
    }

    #[test]
    fn replan_policy_without_replanner_reports_device_loss() {
        let m = model();
        let bits = vec![Bitwidth::Fp16, Bitwidth::Fp16];
        let prompts = vec![vec![1, 2]];
        let faults = FaultPlan::device_loss(0, 0);
        let res = run_pipeline_supervised(
            &m,
            &plan(bits, 1, mb(1, 1, 1)),
            &prompts,
            5,
            Rounding::Deterministic,
            0,
            &test_cfg(),
            Some(&faults),
            None,
        );
        assert!(matches!(res, Err(RuntimeError::DeviceLost(0))), "{res:?}");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = SupervisorConfig {
            backoff_base_ms: 10,
            backoff_factor: 2.0,
            backoff_cap_ms: 50,
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.backoff(0), Duration::from_millis(10));
        assert_eq!(cfg.backoff(1), Duration::from_millis(20));
        assert_eq!(cfg.backoff(2), Duration::from_millis(40));
        assert_eq!(cfg.backoff(3), Duration::from_millis(50), "capped");
        assert_eq!(cfg.backoff(10), Duration::from_millis(50), "capped");
    }

    #[test]
    fn fold_replanner_merges_lost_stages() {
        let p = ExecutionPlan {
            model: "t".into(),
            cluster: "c".into(),
            stages: vec![
                StagePlan { device: 0, layer_start: 0, layer_end: 1, bits: vec![Bitwidth::Int8] },
                StagePlan { device: 1, layer_start: 1, layer_end: 3, bits: vec![Bitwidth::Int4, Bitwidth::Int4] },
                StagePlan { device: 2, layer_start: 3, layer_end: 4, bits: vec![Bitwidth::Fp16] },
            ],
            microbatch: MicrobatchPlan { prefill_size: 1, prefill_count: 1, decode_size: 1, decode_count: 1 },
            scheme: "LLM-PQ".into(),
            kv_bits: 16,
        };
        // Middle device lost: its layers fold into the previous stage.
        let f = FoldReplanner.replan(&p, &[1]).unwrap();
        f.validate(4).unwrap();
        assert_eq!(f.stages.len(), 2);
        assert_eq!(f.stages[0].device, 0);
        assert_eq!(f.stages[0].bits, vec![Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int4]);
        // First device lost: its layers fold into the next survivor.
        let f = FoldReplanner.replan(&p, &[0]).unwrap();
        f.validate(4).unwrap();
        assert_eq!(f.stages[0].device, 1);
        assert_eq!(f.stages[0].bits.len(), 3);
        // Everything lost: error.
        assert!(FoldReplanner.replan(&p, &[0, 1, 2]).is_err());
    }
}
