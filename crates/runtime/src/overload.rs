//! Overload control: admission, KV-pressure guarding, and graceful
//! degradation down a precomputed quantization ladder.
//!
//! A serving deployment sized for the steady state will sooner or later
//! see more offered load than it can clear. Without protection the
//! arrival queue grows without bound, every request's latency diverges,
//! and the KV cache eventually overruns device memory — the system does
//! maximum work for zero goodput. This module keeps the pipeline stable
//! past saturation with three cooperating mechanisms:
//!
//! * an **admission controller** in front of the arrival queue with a
//!   pluggable [`AdmissionPolicy`]: hard rejection at a queue bound,
//!   deadline-aware shedding (requests that would miss their SLO are
//!   dropped *before* consuming compute), or queue-with-timeout;
//! * a **KV-cache pressure guard**: batch assembly is gated on the KV
//!   bytes each request will pin (from the `cost` crate's memory model,
//!   supplied by the caller as a byte budget), and when a higher-
//!   priority request cannot fit, the lowest-priority in-flight request
//!   is *preempted* — requeued at the front, not lost — instead of
//!   letting the cache overrun;
//! * a **degradation controller** ([`DegradationController`]) that walks
//!   a precomputed ladder of plans (`llm_pq::degradation_ladder` — each
//!   rung re-runs Algorithm 1 with the bitwidth menu capped, trading ω
//!   quality for latency) when queue pressure stays above a high
//!   watermark, and walks back up when pressure clears, with dwell-based
//!   hysteresis so a noisy queue doesn't make quality flap.
//!
//! The serving loop ([`serve`]) runs on a virtual clock, so tests and
//! the `ablation_overload` bench are deterministic and fast; the
//! [`BatchEngine`] trait abstracts what a "batch" costs, with
//! [`SimEngine`] (closed-form rung costs) for sweeps and
//! [`PipelineEngine`] (the real supervised thread pipeline per batch)
//! for end-to-end soak tests.

use crate::fault::FaultPlan;
use crate::migrate::{run_pipeline_with_swap, SwapReport, SwapRequest};
use crate::supervisor::{run_pipeline_supervised, FoldReplanner, SupervisorConfig};
use crate::telemetry::Telemetry;
use llm_pq::ExecutionPlan;
use llmpq_model::RefModel;
use llmpq_quant::Rounding;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// What the admission controller does when the queue is stressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Hard bound: reject (shed) arrivals once the queue is full.
    Reject,
    /// Reject at the bound *and* drop queued requests whose deadline has
    /// already passed before they reach the head — a request that will
    /// miss its SLO anyway should not consume compute.
    DeadlineShed,
    /// Reject at the bound and expire requests that have waited in the
    /// queue longer than the configured timeout.
    QueueTimeout,
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(Self::Reject),
            "deadline" | "deadline-shed" => Ok(Self::DeadlineShed),
            "timeout" | "queue-timeout" => Ok(Self::QueueTimeout),
            other => Err(format!("unknown admission policy '{other}' (want reject|deadline|timeout)")),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reject => write!(f, "reject"),
            Self::DeadlineShed => write!(f, "deadline"),
            Self::QueueTimeout => write!(f, "timeout"),
        }
    }
}

/// Admission-controller tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Shedding policy.
    pub policy: AdmissionPolicy,
    /// Queue bound: arrivals beyond this many waiters are shed.
    pub max_queue: usize,
    /// Default relative SLO deadline (seconds from arrival) applied to
    /// requests that carry none, under [`AdmissionPolicy::DeadlineShed`].
    pub default_deadline_s: Option<f64>,
    /// Maximum queue wait under [`AdmissionPolicy::QueueTimeout`].
    pub queue_timeout_s: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { policy: AdmissionPolicy::Reject, max_queue: 64, default_deadline_s: None, queue_timeout_s: 1.0 }
    }
}

/// One serving request on the virtual clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-assigned id, unique within a [`serve`] run.
    pub id: usize,
    /// Arrival time, seconds on the virtual clock.
    pub arrival_s: f64,
    /// Prompt tokens.
    pub prompt: Vec<usize>,
    /// Tokens to generate.
    pub n_generate: usize,
    /// Absolute SLO deadline (virtual-clock seconds), if any.
    pub deadline_s: Option<f64>,
    /// Larger = more important; the KV guard preempts the smallest.
    pub priority: u32,
}

/// Admission counters. The fundamental invariant — checked by
/// [`AdmissionStats::conserves`] and the property tests — is that every
/// offered request is accounted for exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests presented to the controller.
    pub offered: usize,
    /// Requests that entered the queue.
    pub admitted: usize,
    /// Requests that completed execution.
    pub served: usize,
    /// Requests dropped by policy (queue full, KV force-shed, retries
    /// exhausted).
    pub shed: usize,
    /// Requests dropped because their deadline or queue timeout passed.
    pub expired: usize,
    /// In-flight requests requeued for recompute after a pipeline-ring
    /// restart. Informational: a recovered request is back in the queue
    /// (so it still counts as pending/served/expired in the conservation
    /// sum) — this leg proves restarts requeued rather than lost them.
    #[serde(default)]
    pub recovered: usize,
}

impl AdmissionStats {
    /// `offered == served + shed + expired + pending` — nothing is lost,
    /// nothing is double-counted. Recovered requests are back in the
    /// queue, so they are already counted by one of those legs.
    pub fn conserves(&self, pending: usize) -> bool {
        self.offered == self.served + self.shed + self.expired + pending
    }
}

/// Bounded arrival queue with policy-driven shedding.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    queue: VecDeque<Request>,
    stats: AdmissionStats,
    expired_ids: Vec<usize>,
}

impl AdmissionController {
    /// New controller with an empty queue.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self { cfg, queue: VecDeque::new(), stats: AdmissionStats::default(), expired_ids: Vec::new() }
    }

    /// Offer one arrival. Returns `true` if the request was admitted to
    /// the queue, `false` if it was shed (or arrived already past its
    /// deadline, which counts as expired).
    pub fn offer(&mut self, mut req: Request, now: f64) -> bool {
        self.stats.offered += 1;
        if self.cfg.policy == AdmissionPolicy::DeadlineShed {
            if req.deadline_s.is_none() {
                req.deadline_s = self.cfg.default_deadline_s.map(|d| req.arrival_s + d);
            }
            if req.deadline_s.is_some_and(|d| now >= d) {
                self.stats.expired += 1;
                return false;
            }
        }
        if self.queue.len() >= self.cfg.max_queue {
            self.stats.shed += 1;
            return false;
        }
        self.stats.admitted += 1;
        self.queue.push_back(req);
        true
    }

    /// Drop queued requests the policy says are no longer worth serving
    /// (passed deadline / queue timeout). Returns how many expired.
    pub fn reap(&mut self, now: f64) -> usize {
        let before = self.queue.len();
        let ids = &mut self.expired_ids;
        match self.cfg.policy {
            AdmissionPolicy::Reject => {}
            AdmissionPolicy::DeadlineShed => {
                self.queue.retain(|r| {
                    let keep = !r.deadline_s.is_some_and(|d| now >= d);
                    if !keep {
                        ids.push(r.id);
                    }
                    keep
                });
            }
            AdmissionPolicy::QueueTimeout => {
                let t = self.cfg.queue_timeout_s;
                self.queue.retain(|r| {
                    let keep = now - r.arrival_s <= t;
                    if !keep {
                        ids.push(r.id);
                    }
                    keep
                });
            }
        }
        let expired = before - self.queue.len();
        self.stats.expired += expired;
        expired
    }

    /// Ids of requests dropped by [`Self::reap`] since the last drain —
    /// the serving front door uses these to answer the waiting HTTP
    /// handlers (504) instead of leaving them hanging.
    pub fn drain_expired_ids(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.expired_ids)
    }

    /// Count a request that was refused *before* entering the queue
    /// (infeasible: longer than the KV pool or the model context can
    /// ever hold). Keeps the conservation books: offered + shed.
    pub fn refuse(&mut self) {
        self.stats.offered += 1;
        self.stats.shed += 1;
    }

    /// Pop the head of the queue.
    pub fn take(&mut self) -> Option<Request> {
        self.queue.pop_front()
    }

    /// Put a preempted or retried request back at the *front* so it is
    /// the next to run — preemption must not also cost queue position.
    pub fn requeue_front(&mut self, req: Request) {
        self.queue.push_front(req);
    }

    /// Record `n` completed requests.
    pub fn note_served(&mut self, n: usize) {
        self.stats.served += n;
    }

    /// Record `n` requests dropped outside the queue (force-shed,
    /// retries exhausted).
    pub fn note_shed(&mut self, n: usize) {
        self.stats.shed += n;
    }

    /// Record `n` in-flight requests requeued after a ring restart
    /// (they re-enter via [`Self::requeue_front`], this only bumps the
    /// informational counter).
    pub fn note_recovered(&mut self, n: usize) {
        self.stats.recovered += n;
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Queue pressure in `[0, 1]`: occupancy relative to the bound.
    pub fn pressure(&self) -> f64 {
        if self.cfg.max_queue == 0 {
            return 1.0;
        }
        (self.queue.len() as f64 / self.cfg.max_queue as f64).clamp(0.0, 1.0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

/// KV-cache budget the guard enforces during batch assembly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvGuardConfig {
    /// Total KV-cache byte budget across in-flight requests — derived
    /// from the cost model's per-device memory ledger by the caller.
    pub budget_bytes: f64,
    /// Fraction of the budget held back as headroom (activation spikes,
    /// fragmentation). `0.1` leaves 10% free.
    pub headroom: f64,
}

impl KvGuardConfig {
    /// The budget actually available to batch assembly.
    pub fn effective_budget(&self) -> f64 {
        self.budget_bytes * (1.0 - self.headroom.clamp(0.0, 1.0))
    }
}

/// Hysteresis tuning for the degradation controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Step *down* the ladder (lower quality, faster) once pressure has
    /// been at or above this for `dwell` consecutive observations.
    pub high: f64,
    /// Step back *up* once pressure has been at or below this for
    /// `dwell` consecutive observations.
    pub low: f64,
    /// Consecutive observations required before acting — the hysteresis
    /// dwell that keeps a noisy queue from flapping quality.
    pub dwell: usize,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self { high: 0.8, low: 0.3, dwell: 3 }
    }
}

/// One quality change the controller made.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RungTransition {
    /// Virtual-clock time of the change.
    pub at_s: f64,
    /// Rung before.
    pub from: usize,
    /// Rung after.
    pub to: usize,
    /// The pressure observation that triggered it.
    pub pressure: f64,
}

/// Walks a degradation ladder under pressure, with dwell hysteresis.
/// Rung 0 is full quality; higher rungs are the faster, lower-quality
/// plans of a precomputed `DegradationLadder`.
#[derive(Debug)]
pub struct DegradationController {
    cfg: DegradationConfig,
    n_rungs: usize,
    rung: usize,
    high_streak: usize,
    low_streak: usize,
    transitions: Vec<RungTransition>,
}

impl DegradationController {
    /// Controller over a ladder with `n_rungs` rungs, starting at rung 0.
    pub fn new(cfg: DegradationConfig, n_rungs: usize) -> Self {
        Self { cfg, n_rungs: n_rungs.max(1), rung: 0, high_streak: 0, low_streak: 0, transitions: Vec::new() }
    }

    /// Feed one pressure observation; returns the new rung if it changed.
    pub fn observe(&mut self, pressure: f64, now: f64) -> Option<usize> {
        if pressure >= self.cfg.high {
            self.high_streak += 1;
            self.low_streak = 0;
            if self.high_streak >= self.cfg.dwell.max(1) && self.rung + 1 < self.n_rungs {
                self.high_streak = 0;
                let from = self.rung;
                self.rung += 1;
                self.transitions.push(RungTransition { at_s: now, from, to: self.rung, pressure });
                return Some(self.rung);
            }
        } else if pressure <= self.cfg.low {
            self.low_streak += 1;
            self.high_streak = 0;
            if self.low_streak >= self.cfg.dwell.max(1) && self.rung > 0 {
                self.low_streak = 0;
                let from = self.rung;
                self.rung -= 1;
                self.transitions.push(RungTransition { at_s: now, from, to: self.rung, pressure });
                return Some(self.rung);
            }
        } else {
            // Inside the hysteresis band: hold position, reset streaks.
            self.high_streak = 0;
            self.low_streak = 0;
        }
        None
    }

    /// Current rung.
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Every transition taken so far.
    pub fn transitions(&self) -> &[RungTransition] {
        &self.transitions
    }
}

/// What executes a batch: the serving loop is generic over this so the
/// same admission/guard/ladder logic drives both closed-form sweeps and
/// the real thread pipeline.
pub trait BatchEngine {
    /// Rungs available (1 = no degradation possible).
    fn n_rungs(&self) -> usize;
    /// Largest batch the engine will take.
    fn max_batch(&self) -> usize;
    /// KV bytes this request pins while in flight.
    fn kv_demand(&self, req: &Request) -> f64;
    /// Execute `batch` at `rung`; returns the batch wall time in
    /// virtual-clock seconds, or an error (the loop requeues and
    /// retries the batch's requests).
    fn run_batch(&mut self, rung: usize, batch: &[Request]) -> Result<f64, String>;
}

/// Closed-form engine for sweeps and property tests: each rung has a
/// `(base_s, per_request_s)` affine cost, optionally failing every k-th
/// call, and records exactly which request ids it executed.
#[derive(Debug)]
pub struct SimEngine {
    /// Per-rung `(base_s, per_request_s)`; rung order must match the
    /// ladder (faster at higher index).
    pub rung_cost_s: Vec<(f64, f64)>,
    /// Batch size cap.
    pub max_batch: usize,
    /// KV bytes pinned per token (prompt + generated).
    pub kv_per_token: f64,
    /// `Some(k)`: every k-th `run_batch` call fails (retry-path tests).
    pub fail_every: Option<usize>,
    calls: usize,
    /// `(rung, ids)` of every batch that actually executed.
    pub executed: Vec<(usize, Vec<usize>)>,
}

impl SimEngine {
    /// Engine with the given per-rung costs and no failures.
    pub fn new(rung_cost_s: Vec<(f64, f64)>, max_batch: usize, kv_per_token: f64) -> Self {
        Self { rung_cost_s, max_batch, kv_per_token, fail_every: None, calls: 0, executed: Vec::new() }
    }

    /// Ids of every request ever executed (possibly with repeats if a
    /// request was preempted mid-assembly and re-run — execution itself
    /// is atomic, so no id repeats in practice).
    pub fn executed_ids(&self) -> Vec<usize> {
        self.executed.iter().flat_map(|(_, ids)| ids.iter().copied()).collect()
    }
}

impl BatchEngine for SimEngine {
    fn n_rungs(&self) -> usize {
        self.rung_cost_s.len().max(1)
    }
    fn max_batch(&self) -> usize {
        self.max_batch.max(1)
    }
    fn kv_demand(&self, req: &Request) -> f64 {
        (req.prompt.len() + req.n_generate) as f64 * self.kv_per_token
    }
    fn run_batch(&mut self, rung: usize, batch: &[Request]) -> Result<f64, String> {
        self.calls += 1;
        if self.fail_every.is_some_and(|k| k > 0 && self.calls.is_multiple_of(k)) {
            return Err(format!("injected engine failure on call {}", self.calls));
        }
        let (base, per) = self.rung_cost_s.get(rung).copied().unwrap_or((0.01, 0.001));
        self.executed.push((rung, batch.iter().map(|r| r.id).collect()));
        Ok(base + per * batch.len() as f64)
    }
}

/// Engine that runs each batch through the *real* supervised thread
/// pipeline (one plan per ladder rung), so overload control composes
/// with fault injection and restarts end to end. Batch wall time on the
/// virtual clock is the measured wall time of the supervised run.
pub struct PipelineEngine {
    /// Reference checkpoint.
    pub checkpoint: RefModel,
    /// One plan per ladder rung (rung 0 = full quality).
    pub plans: Vec<ExecutionPlan>,
    /// Supervisor tuning for each batch run.
    pub supervisor: SupervisorConfig,
    /// Fault plans applied round-robin to successive batches; empty for
    /// a fault-free run.
    pub fault_plans: Vec<FaultPlan>,
    /// Weight rounding.
    pub rounding: Rounding,
    /// Quantization seed.
    pub seed: u64,
    /// Batch size cap.
    pub max_batch: usize,
    /// KV bytes per token for the guard.
    pub kv_per_token: f64,
    batches_run: usize,
    /// Generated tokens per request id, for conservation checks.
    pub outputs: HashMap<usize, Vec<usize>>,
    /// Restarts the supervisor took across all batches.
    pub restarts: usize,
    /// Execute ladder transitions as *live* plan swaps: when the rung
    /// changed since the previous batch, the batch starts on the old
    /// rung's plan and hot-swaps to the new rung at the first token
    /// boundary (two-phase protocol, KV handoff and all) instead of
    /// cold-starting on the new plan. Falls back to a plain run when the
    /// stage count differs (live swaps keep the pipeline shape).
    pub live_swap: bool,
    /// Two-phase swap reports from live rung transitions, in order.
    pub swap_reports: Vec<SwapReport>,
    last_rung: Option<usize>,
}

impl PipelineEngine {
    /// New engine over `plans`; panics if `plans` is empty.
    pub fn new(checkpoint: RefModel, plans: Vec<ExecutionPlan>, supervisor: SupervisorConfig) -> Self {
        assert!(!plans.is_empty(), "PipelineEngine needs at least one plan");
        Self {
            checkpoint,
            plans,
            supervisor,
            fault_plans: Vec::new(),
            rounding: Rounding::Deterministic,
            seed: 0,
            max_batch: 4,
            kv_per_token: 1.0,
            batches_run: 0,
            outputs: HashMap::new(),
            restarts: 0,
            live_swap: true,
            swap_reports: Vec::new(),
            last_rung: None,
        }
    }
}

impl BatchEngine for PipelineEngine {
    fn n_rungs(&self) -> usize {
        self.plans.len()
    }
    fn max_batch(&self) -> usize {
        self.max_batch.max(1)
    }
    fn kv_demand(&self, req: &Request) -> f64 {
        (req.prompt.len() + req.n_generate) as f64 * self.kv_per_token
    }
    fn run_batch(&mut self, rung: usize, batch: &[Request]) -> Result<f64, String> {
        let plan = self.plans.get(rung).unwrap_or(&self.plans[0]).clone();
        let prompts: Vec<Vec<usize>> = batch.iter().map(|r| r.prompt.clone()).collect();
        let n_generate = batch.iter().map(|r| r.n_generate).max().unwrap_or(1);
        let faults = if self.fault_plans.is_empty() {
            None
        } else {
            Some(&self.fault_plans[self.batches_run % self.fault_plans.len()])
        };
        self.batches_run += 1;
        let prev = self.last_rung.replace(rung);
        let from_plan = prev
            .filter(|&p| {
                self.live_swap
                    && p != rung
                    && n_generate >= 2
                    && self.plans.get(p).is_some_and(|fp| fp.stages.len() == plan.stages.len())
            })
            .map(|p| self.plans[p].clone());
        if let Some(from) = from_plan {
            // Ladder transition → live swap: the batch opens on the rung
            // that was serving and commits the new rung's plan at the
            // first token boundary via the two-phase protocol.
            let out = run_pipeline_with_swap(
                &self.checkpoint,
                &from,
                &prompts,
                n_generate,
                self.rounding,
                self.seed,
                &[SwapRequest { at_token: 1, plan }],
                &self.supervisor,
                faults,
                None,
            )
            .map_err(|e| e.to_string())?;
            self.restarts += out.restarts;
            self.swap_reports.extend(out.swaps);
            for (req, toks) in batch.iter().zip(&out.output.tokens) {
                self.outputs.insert(req.id, toks.clone());
            }
            return Ok(out.output.wall_s);
        }
        let out = run_pipeline_supervised(
            &self.checkpoint,
            &plan,
            &prompts,
            n_generate,
            self.rounding,
            self.seed,
            &self.supervisor,
            faults,
            Some(&FoldReplanner),
        )
        .map_err(|e| e.to_string())?;
        self.restarts += out.restarts;
        for (req, toks) in batch.iter().zip(&out.output.tokens) {
            self.outputs.insert(req.id, toks.clone());
        }
        Ok(out.output.wall_s)
    }
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Admission control.
    pub admission: AdmissionConfig,
    /// KV-cache guard; `None` disables KV gating and preemption.
    pub kv_guard: Option<KvGuardConfig>,
    /// Degradation hysteresis; `None` pins the engine to rung 0.
    pub degradation: Option<DegradationConfig>,
    /// Batches assembled per dispatch window (preemption needs ≥ 2 to
    /// ever trigger across batches; within-batch it works at 1).
    pub max_inflight: usize,
    /// Engine failures tolerated per request before it is shed.
    pub max_retries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            kv_guard: None,
            degradation: Some(DegradationConfig::default()),
            max_inflight: 2,
            max_retries: 2,
        }
    }
}

/// What a [`serve`] run did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Final admission counters (`conserves(0)` holds on return).
    pub stats: AdmissionStats,
    /// On-time completed requests per second of makespan (requests with
    /// no deadline count as on-time).
    pub goodput_rps: f64,
    /// All completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Sojourn-time percentiles over served requests, seconds.
    pub p50_sojourn_s: f64,
    /// 95th percentile sojourn.
    pub p95_sojourn_s: f64,
    /// 99th percentile sojourn.
    pub p99_sojourn_s: f64,
    /// Every ladder transition taken.
    pub transitions: Vec<RungTransition>,
    /// Rung when the run ended.
    pub final_rung: usize,
    /// Deepest rung reached.
    pub peak_rung: usize,
    /// KV-guard preemptions (requeues, not losses).
    pub preemptions: usize,
    /// Virtual-clock end time.
    pub makespan_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the overload-controlled serving loop on a virtual clock until
/// every arrival has been served, shed, or expired.
///
/// Each iteration: admit arrivals up to *now*, reap expired waiters,
/// sample queue pressure into the ladder controller (and telemetry),
/// assemble a KV-gated dispatch window (preempting the lowest-priority
/// selection when a higher-priority request doesn't fit), and execute
/// the window's batches at the current rung. A request whose batch fails
/// is requeued and retried up to [`ServeConfig::max_retries`] times,
/// then shed. Termination is guaranteed: a request too large for the KV
/// budget on its own is force-shed rather than spun on forever.
pub fn serve(
    engine: &mut dyn BatchEngine,
    requests: &[Request],
    cfg: &ServeConfig,
    telemetry: Option<&Telemetry>,
) -> ServeReport {
    let mut arrivals: Vec<Request> = requests.to_vec();
    arrivals.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    let mut next = 0usize;

    let mut admission = AdmissionController::new(cfg.admission);
    let mut ladder = DegradationController::new(
        cfg.degradation.unwrap_or(DegradationConfig { high: 2.0, low: -1.0, dwell: usize::MAX }),
        engine.n_rungs(),
    );
    let mut now = 0.0f64;
    let mut peak_rung = 0usize;
    let mut preemptions = 0usize;
    let mut retries: HashMap<usize, usize> = HashMap::new();
    let mut sojourns: Vec<f64> = Vec::new();
    let mut on_time = 0usize;

    loop {
        // 1. Admit everything that has arrived by now.
        while next < arrivals.len() && arrivals[next].arrival_s <= now {
            let req = arrivals[next].clone();
            next += 1;
            admission.offer(req, now);
        }
        // 2. Drop waiters the policy says are no longer worth serving.
        admission.reap(now);
        // Keep telemetry's view of shed/expired in sync with the
        // controller's absolute counters.
        if let Some(t) = telemetry {
            let s = admission.stats();
            t.sync_shed(s.shed as u64);
            t.sync_expired(s.expired as u64);
        }

        // 3. Pressure sample → ladder + gauges.
        let pressure = admission.pressure();
        if let Some(t) = telemetry {
            t.set_queue_pressure(pressure);
        }
        if cfg.degradation.is_some() {
            ladder.observe(pressure, now);
            peak_rung = peak_rung.max(ladder.rung());
            if let Some(t) = telemetry {
                t.set_rung(ladder.rung());
            }
        }

        if admission.pending() == 0 {
            match arrivals.get(next) {
                // Idle: jump the virtual clock to the next arrival.
                Some(r) => {
                    now = now.max(r.arrival_s);
                    continue;
                }
                None => break,
            }
        }

        // 4. Assemble a KV-gated dispatch window.
        let budget = cfg.kv_guard.map(|g| g.effective_budget());
        let window_cap = engine.max_batch() * cfg.max_inflight.max(1);
        let mut window: Vec<Request> = Vec::new();
        let mut kv_used = 0.0f64;
        while window.len() < window_cap {
            let Some(candidate) = admission.take() else { break };
            let demand = engine.kv_demand(&candidate);
            let fits = budget.is_none_or(|b| kv_used + demand <= b);
            if fits {
                kv_used += demand;
                window.push(candidate);
                continue;
            }
            // Over budget. Preempt lower-priority selections to make
            // room — requeue them at the front, never drop them.
            let mut freed = false;
            while let Some((idx, _)) = window
                .iter()
                .enumerate()
                .filter(|(_, w)| w.priority < candidate.priority)
                .min_by_key(|(_, w)| w.priority)
            {
                let victim = window.remove(idx);
                kv_used -= engine.kv_demand(&victim);
                admission.requeue_front(victim);
                preemptions += 1;
                if let Some(t) = telemetry {
                    t.note_preempted();
                }
                if budget.is_none_or(|b| kv_used + demand <= b) {
                    freed = true;
                    break;
                }
            }
            if freed {
                kv_used += demand;
                window.push(candidate);
            } else if window.is_empty() {
                // The request exceeds the whole budget by itself: it can
                // never run. Force-shed so the loop terminates.
                admission.note_shed(1);
                if let Some(t) = telemetry {
                    let s = admission.stats();
                    t.sync_shed(s.shed as u64);
                }
            } else {
                // No preemptable room this window; run what we have.
                admission.requeue_front(candidate);
                break;
            }
        }

        if window.is_empty() {
            continue;
        }

        // 5. Execute the window batch by batch at the current rung.
        for batch in window.chunks(engine.max_batch()) {
            match engine.run_batch(ladder.rung(), batch) {
                Ok(dt) => {
                    now += dt.max(0.0);
                    admission.note_served(batch.len());
                    for r in batch {
                        sojourns.push(now - r.arrival_s);
                        if r.deadline_s.is_none_or(|d| now <= d) {
                            on_time += 1;
                        }
                    }
                }
                Err(_) => {
                    // Requeue (front, original order) and retry; shed a
                    // request once it has burned its retry budget.
                    for r in batch.iter().rev() {
                        let tries = retries.entry(r.id).or_insert(0);
                        *tries += 1;
                        if *tries > cfg.max_retries {
                            admission.note_shed(1);
                        } else {
                            admission.requeue_front(r.clone());
                        }
                    }
                    if let Some(t) = telemetry {
                        let s = admission.stats();
                        t.sync_shed(s.shed as u64);
                    }
                }
            }
        }
    }

    sojourns.sort_by(f64::total_cmp);
    let stats = admission.stats();
    debug_assert!(stats.conserves(0), "request conservation violated: {stats:?}");
    let makespan = now.max(f64::EPSILON);
    if let Some(t) = telemetry {
        t.sync_shed(stats.shed as u64);
        t.sync_expired(stats.expired as u64);
        t.set_rung(ladder.rung());
    }
    ServeReport {
        stats,
        goodput_rps: on_time as f64 / makespan,
        throughput_rps: stats.served as f64 / makespan,
        p50_sojourn_s: percentile(&sojourns, 0.50),
        p95_sojourn_s: percentile(&sojourns, 0.95),
        p99_sojourn_s: percentile(&sojourns, 0.99),
        transitions: ladder.transitions().to_vec(),
        final_rung: ladder.rung(),
        peak_rung,
        preemptions,
        makespan_s: now,
    }
}

/// Deterministic Poisson arrival generator (SplitMix64 + inverse-CDF
/// exponential gaps) for overload sweeps. Errors on a non-positive or
/// non-finite rate.
pub fn poisson_requests(
    n: usize,
    rate_rps: f64,
    prompt_len: usize,
    n_generate: usize,
    seed: u64,
) -> Result<Vec<Request>, String> {
    if !(rate_rps.is_finite() && rate_rps > 0.0) {
        return Err(format!("arrival rate must be finite and > 0, got {rate_rps}"));
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut uniform = move || ((next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        now += -uniform().ln() / rate_rps;
        let prompt: Vec<usize> = (0..prompt_len.max(1)).map(|_| (next_u64() % 50) as usize + 1).collect();
        out.push(Request {
            id,
            arrival_s: now,
            prompt,
            n_generate: n_generate.max(1),
            deadline_s: None,
            priority: (next_u64() % 4) as u32,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_s: f64) -> Request {
        Request { id, arrival_s, prompt: vec![1, 2, 3], n_generate: 4, deadline_s: None, priority: 1 }
    }

    #[test]
    fn reject_policy_sheds_at_the_bound() {
        let mut a = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::Reject,
            max_queue: 2,
            ..AdmissionConfig::default()
        });
        assert!(a.offer(req(0, 0.0), 0.0));
        assert!(a.offer(req(1, 0.0), 0.0));
        assert!(!a.offer(req(2, 0.0), 0.0), "third must bounce off the bound");
        let s = a.stats();
        assert_eq!((s.offered, s.admitted, s.shed), (3, 2, 1));
        assert!(s.conserves(a.pending()));
        assert!((a.pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_shed_expires_before_compute() {
        let mut a = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::DeadlineShed,
            max_queue: 8,
            default_deadline_s: Some(1.0),
            queue_timeout_s: 1.0,
        });
        assert!(a.offer(req(0, 0.0), 0.0));
        // Arrives already past its (default) deadline.
        assert!(!a.offer(req(1, 0.0), 5.0));
        assert_eq!(a.stats().expired, 1);
        // The queued one expires once the clock passes arrival + 1s.
        assert_eq!(a.reap(2.0), 1);
        assert_eq!(a.stats().expired, 2);
        assert_eq!(a.pending(), 0);
        assert!(a.stats().conserves(0));
    }

    #[test]
    fn queue_timeout_expires_long_waiters() {
        let mut a = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::QueueTimeout,
            max_queue: 8,
            default_deadline_s: None,
            queue_timeout_s: 0.5,
        });
        assert!(a.offer(req(0, 0.0), 0.0));
        assert!(a.offer(req(1, 0.4), 0.4));
        assert_eq!(a.reap(0.6), 1, "only the 0.0 arrival has waited > 0.5s");
        assert_eq!(a.pending(), 1);
        assert!(a.stats().conserves(1));
    }

    #[test]
    fn ladder_controller_has_hysteresis() {
        let mut c = DegradationController::new(DegradationConfig { high: 0.8, low: 0.2, dwell: 3 }, 3);
        // Two highs then a band value: dwell resets, no step.
        assert!(c.observe(0.9, 0.0).is_none());
        assert!(c.observe(0.9, 0.1).is_none());
        assert!(c.observe(0.5, 0.2).is_none());
        assert_eq!(c.rung(), 0);
        // Three consecutive highs: step down one rung only.
        assert!(c.observe(0.9, 0.3).is_none());
        assert!(c.observe(0.9, 0.4).is_none());
        assert_eq!(c.observe(0.9, 0.5), Some(1));
        assert_eq!(c.rung(), 1);
        // Three lows: step back up.
        assert!(c.observe(0.1, 0.6).is_none());
        assert!(c.observe(0.1, 0.7).is_none());
        assert_eq!(c.observe(0.1, 0.8), Some(0));
        // Never leaves [0, n_rungs).
        for i in 0..20 {
            c.observe(0.95, 1.0 + i as f64 * 0.1);
        }
        assert_eq!(c.rung(), 2, "clamped at the last rung");
        let t = c.transitions();
        assert!(t.iter().all(|tr| tr.from.abs_diff(tr.to) == 1), "single-rung steps only");
    }

    #[test]
    fn serve_conserves_and_reports_sojourns() {
        let reqs = poisson_requests(40, 10.0, 4, 4, 7).unwrap();
        let mut eng = SimEngine::new(vec![(0.02, 0.01), (0.01, 0.004)], 4, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_queue: 16, ..AdmissionConfig::default() },
            ..ServeConfig::default()
        };
        let rep = serve(&mut eng, &reqs, &cfg, None);
        assert!(rep.stats.conserves(0), "{:?}", rep.stats);
        assert_eq!(rep.stats.offered, 40);
        assert!(rep.stats.served > 0);
        assert!(rep.p50_sojourn_s <= rep.p95_sojourn_s);
        assert!(rep.p95_sojourn_s <= rep.p99_sojourn_s);
        // Every served id was executed exactly once.
        let ids = eng.executed_ids();
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(ids.len(), uniq.len(), "no request executed twice");
        assert_eq!(ids.len(), rep.stats.served);
    }

    #[test]
    fn overload_steps_down_and_recovers() {
        // Rung 0 is far too slow for the offered rate; rung 1 clears it.
        // The ladder must step down under pressure and step back up once
        // the arrival burst has passed.
        let mut reqs = poisson_requests(60, 50.0, 4, 4, 3).unwrap();
        // A long quiet tail after the burst so pressure decays to zero
        // while the loop still has observations to make.
        for (i, r) in poisson_requests(10, 2.0, 4, 4, 4).unwrap().into_iter().enumerate() {
            let mut r = r;
            r.id = 100 + i;
            r.arrival_s += 30.0;
            reqs.push(r);
        }
        let mut eng = SimEngine::new(vec![(0.2, 0.05), (0.01, 0.002)], 4, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_queue: 8, ..AdmissionConfig::default() },
            degradation: Some(DegradationConfig { high: 0.7, low: 0.2, dwell: 2 }),
            ..ServeConfig::default()
        };
        let rep = serve(&mut eng, &reqs, &cfg, None);
        assert!(rep.peak_rung >= 1, "must have degraded: {:?}", rep.transitions);
        assert_eq!(rep.final_rung, 0, "must recover when pressure clears: {:?}", rep.transitions);
        assert!(rep.stats.conserves(0));
        // Transitions are single-step and watermark-consistent.
        for tr in &rep.transitions {
            assert_eq!(tr.from.abs_diff(tr.to), 1);
            if tr.to > tr.from {
                assert!(tr.pressure >= 0.7, "step-down below high watermark: {tr:?}");
            } else {
                assert!(tr.pressure <= 0.2, "step-up above low watermark: {tr:?}");
            }
        }
    }

    #[test]
    fn kv_guard_preempts_low_priority_and_loses_nothing() {
        // Budget fits two small requests; a high-priority arrival must
        // push a low-priority one back into the queue, and everyone is
        // eventually served.
        let mut reqs = vec![
            Request { id: 0, arrival_s: 0.0, prompt: vec![1; 4], n_generate: 4, deadline_s: None, priority: 0 },
            Request { id: 1, arrival_s: 0.0, prompt: vec![1; 4], n_generate: 4, deadline_s: None, priority: 0 },
            Request { id: 2, arrival_s: 0.0, prompt: vec![1; 4], n_generate: 4, deadline_s: None, priority: 5 },
        ];
        reqs[2].prompt = vec![1; 8]; // the VIP is also the biggest
        let mut eng = SimEngine::new(vec![(0.01, 0.001)], 4, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_queue: 8, ..AdmissionConfig::default() },
            kv_guard: Some(KvGuardConfig { budget_bytes: 16.0, headroom: 0.0 }),
            degradation: None,
            max_inflight: 1,
            max_retries: 2,
        };
        let rep = serve(&mut eng, &reqs, &cfg, None);
        assert!(rep.preemptions >= 1, "the VIP must preempt a small request");
        assert_eq!(rep.stats.served, 3, "preemption must not lose requests");
        assert!(rep.stats.conserves(0));
    }

    #[test]
    fn oversized_request_is_force_shed_not_spun_on() {
        let reqs = vec![
            Request { id: 0, arrival_s: 0.0, prompt: vec![1; 100], n_generate: 10, deadline_s: None, priority: 9 },
            req(1, 0.0),
        ];
        let mut eng = SimEngine::new(vec![(0.01, 0.001)], 4, 1.0);
        let cfg = ServeConfig {
            kv_guard: Some(KvGuardConfig { budget_bytes: 20.0, headroom: 0.0 }),
            degradation: None,
            ..ServeConfig::default()
        };
        let rep = serve(&mut eng, &reqs, &cfg, None);
        assert_eq!(rep.stats.shed, 1, "the whale is shed, the loop terminates");
        assert_eq!(rep.stats.served, 1);
        assert!(rep.stats.conserves(0));
        assert!(!eng.executed_ids().contains(&0), "shed request never executes");
    }

    #[test]
    fn engine_failures_retry_then_shed() {
        let reqs: Vec<Request> = (0..6).map(|i| req(i, 0.0)).collect();
        let mut eng = SimEngine::new(vec![(0.01, 0.001)], 2, 1.0);
        eng.fail_every = Some(2); // every second batch call fails
        let cfg = ServeConfig {
            degradation: None,
            max_retries: 3,
            ..ServeConfig::default()
        };
        let rep = serve(&mut eng, &reqs, &cfg, None);
        assert!(rep.stats.conserves(0), "{:?}", rep.stats);
        assert_eq!(rep.stats.served + rep.stats.shed, 6);
        assert!(rep.stats.served > 0, "retries must let some work through");
    }

    #[test]
    fn poisson_rejects_bad_rates_and_is_deterministic() {
        assert!(poisson_requests(4, 0.0, 4, 4, 0).is_err());
        assert!(poisson_requests(4, -1.0, 4, 4, 0).is_err());
        assert!(poisson_requests(4, f64::NAN, 4, 4, 0).is_err());
        let a = poisson_requests(10, 5.0, 4, 4, 42).unwrap();
        let b = poisson_requests(10, 5.0, 4, 4, 42).unwrap();
        assert_eq!(a, b, "same seed, same trace");
        assert!(a.windows(2).all(|w| w[0].arrival_s < w[1].arrival_s));
    }

    #[test]
    fn admission_policy_parses_from_flags() {
        use std::str::FromStr;
        assert_eq!(AdmissionPolicy::from_str("reject").unwrap(), AdmissionPolicy::Reject);
        assert_eq!(AdmissionPolicy::from_str("deadline").unwrap(), AdmissionPolicy::DeadlineShed);
        assert_eq!(AdmissionPolicy::from_str("TIMEOUT").unwrap(), AdmissionPolicy::QueueTimeout);
        assert!(AdmissionPolicy::from_str("yolo").is_err());
    }
}
