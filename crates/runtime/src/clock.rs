//! The time abstraction that makes the runtime simulable.
//!
//! Every timeout, deadline, backoff and heartbeat age in the runtime is
//! computed against a [`Clock`] instead of raw `Instant::now()` /
//! `thread::sleep`. Production code runs on a [`RealClock`]; the
//! deterministic simulation harness ([`crate::simnet`]) substitutes a
//! virtual clock whose time only advances when every simulated actor is
//! blocked, which is what makes a simulated run reproducible down to
//! the event trace.
//!
//! Time is represented as a [`Duration`] since the clock's epoch (its
//! creation for a [`RealClock`], virtual zero for a simulated one) —
//! plain `Duration` arithmetic gives deadline math without `Instant`'s
//! platform quirks, and a µs-since-epoch reading doubles as a trace
//! timestamp.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source plus a way to wait on it.
///
/// The determinism contract for simulated code paths: *no wall clock,
/// no unseeded randomness*. Code below the runtime's entry points must
/// read time only through a `Clock` and sleep only through
/// [`Clock::sleep`], so the simulation harness can substitute virtual
/// time.
pub trait Clock: Send + Sync {
    /// Monotonic time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Block the calling thread (or simulated actor) for `d`.
    fn sleep(&self, d: Duration);

    /// Deadline `timeout` from now, in this clock's timeline.
    fn deadline(&self, timeout: Duration) -> Duration {
        self.now().saturating_add(timeout)
    }

    /// Whether `deadline` (from [`Clock::deadline`]) has passed.
    fn expired(&self, deadline: Duration) -> bool {
        self.now() > deadline
    }

    /// Microseconds since the epoch — the trace-timestamp form.
    fn now_us(&self) -> u64 {
        self.now().as_micros() as u64
    }
}

/// Wall-clock time: epoch = creation instant, sleep = `thread::sleep`.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Clock whose epoch is now.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Fresh shared wall clock — the default for every entry point that is
/// not running under the simulation harness.
pub fn real_clock() -> Arc<dyn Clock> {
    Arc::new(RealClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances_and_sleeps() {
        let c = RealClock::new();
        let t0 = c.now();
        c.sleep(Duration::from_millis(2));
        assert!(c.now() >= t0 + Duration::from_millis(2));
        assert!(c.now_us() >= 2_000);
    }

    #[test]
    fn deadline_arithmetic() {
        let c = RealClock::new();
        let d = c.deadline(Duration::from_secs(60));
        assert!(!c.expired(d));
        assert!(c.expired(Duration::ZERO.saturating_sub(Duration::from_nanos(1))) || c.now() > Duration::ZERO || !c.expired(Duration::ZERO));
        // A deadline in the past is expired as soon as time has moved.
        c.sleep(Duration::from_millis(1));
        assert!(c.expired(Duration::ZERO));
    }
}
