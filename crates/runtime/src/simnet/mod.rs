//! Deterministic simulation harness for the distributed runtime —
//! virtual clock + simulated network for exhaustive fault-schedule
//! exploration.
//!
//! The real multi-process pipeline ([`crate::net::dist`]) can only be
//! tested against the faults a wire-level injector happens to fire
//! while wall-clock time races by. This module replays the **same
//! protocol** — master engine, stage workers, heartbeat control plane,
//! attempt epochs, admission accounting — inside a simulated world
//! where:
//!
//! * **time is virtual**: every sleep, timeout and deadline runs on a
//!   [`VirtualClock`] that only advances when *every* actor is blocked,
//!   so a 60-second recovery scenario simulates in milliseconds and two
//!   runs with the same seed produce byte-identical event traces;
//! * **the network is simulated**: [`SimFaultPlan`] schedules delays,
//!   drops, duplicates, corruptions (surfaced through the *real* frame
//!   CRC), disconnects, partitions (with or without heal) and stage
//!   crash-and-restarts, deterministically seeded;
//! * **invariants are checked after every run**: token output must be
//!   bit-identical to the fault-free sequential oracle, admission must
//!   conserve (`offered == served + shed + expired + pending`), virtual
//!   time must never run past the horizon with work pending (deadlock /
//!   livelock), and restarts must respect the recovery bound;
//! * **failures shrink**: [`seed_sweep`] drives hundreds of random
//!   schedules and, on a violation, [`shrink_fault_plan`] greedily
//!   removes events until a minimal reproducing counterexample remains,
//!   serialized as replayable JSON.
//!
//! The determinism contract (also stated on [`crate::clock::Clock`]):
//! simulated code paths read time only through a [`Clock`] and contain
//! no unseeded randomness. `engine::drive_generation` and
//! `worker::run_worker_transport` — the actual production loops — run
//! unchanged inside the simulation; only the transport and the clock
//! are swapped. (`crate::overload::serve` already honors the
//! contract by construction: it runs entirely on an `f64` virtual
//! clock and never reads the wall clock.)

mod conn;
mod elastic;
mod plan;
mod sched;
mod serving;
mod shrink;
mod testbed;

pub use conn::VirtualClock;
pub use elastic::{
    elastic_arrivals, elastic_churn_plan, elastic_seed_sweep, run_elastic, shrink_elastic_plan,
    ChurnEvent, ElasticChurnPlan, ElasticRun, ElasticSimConfig, ElasticSweepFailure,
    ElasticSweepReport,
};
pub use plan::{SimCrash, SimDeviceJoin, SimFaultKind, SimFaultPlan, SimLinkEvent, SimPartition};
pub use serving::{
    run_serving_chaos, serving_fault_plan, serving_seed_sweep, serving_swap, shrink_serving_plan,
    ServingChaosConfig, ServingChaosRun, ServingSweepFailure, ServingSweepReport,
};
pub use shrink::{seed_sweep, shrink_fault_plan, SweepFailure, SweepReport};
pub use testbed::{wire_exchange, WireExchange, WireExchangeConfig};

use crate::clock::Clock;
use crate::engine::{
    bits_label, checkpoint_lockstep, drive_generation_migrating, load_all_stages,
    AttemptSupervision, Master, RuntimeError,
};
use crate::fault::Heartbeats;
use crate::loader::load_stage_weights;
use crate::migrate::{
    hybrid_oracle_tokens, MigrationCoordinator, MigrationHost, SwapReport, SwapRequest,
};
use crate::net::wire::WireMsg;
use crate::overload::{AdmissionConfig, AdmissionController, AdmissionStats, Request};
use crate::telemetry::Telemetry;
use crate::worker::{run_worker_transport, WorkerCtx};
use conn::{SimConn, SimTransport};
use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, BitAssignment, Bitwidth, Rounding};
use sched::{ActorGuard, AwaitEpoch, CrashEnd, RecvEnd, SimNet, NEVER_US};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Parameters of one simulated pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Pipeline stages (clamped to the tiny model's layer count).
    pub n_stages: usize,
    /// Prompts offered to admission and generated over.
    pub prompts: Vec<Vec<usize>>,
    /// Tokens generated per prompt.
    pub n_generate: usize,
    /// Recovery bound: restarts allowed before the master gives up.
    pub max_restarts: usize,
    /// Supervision tick, virtual µs.
    pub tick_us: u64,
    /// Heartbeat staleness threshold, virtual µs.
    pub heartbeat_timeout_us: u64,
    /// Progress timeout, virtual µs.
    pub progress_timeout_us: u64,
    /// Restart backoff base, virtual µs (doubles per restart).
    pub backoff_base_us: u64,
    /// One-way link latency, virtual µs.
    pub link_latency_us: u64,
    /// Virtual-time budget: a run that would pass this with work still
    /// pending is flagged as deadlocked/livelocked.
    pub horizon_us: u64,
    /// Dev-only checker-validation hook: double-count one served
    /// request after a recovered run, breaking admission conservation
    /// on purpose so tests can prove the invariant checker (and the
    /// shrinker) catch real accounting bugs.
    pub inject_conservation_bug: bool,
    /// Layer count of the simulated model (`None` = the 2-layer tiny
    /// default). Migration scenarios use 4 so a repartition has a layer
    /// to move.
    #[serde(default)]
    pub n_layers: Option<usize>,
    /// Live plan-swap scenario driven through the two-phase protocol
    /// while the fault schedule fires. `None` = plain serving.
    #[serde(default)]
    pub migration: Option<SimMigration>,
}

/// A live migration the simulated master schedules: one plan swap whose
/// target drops every layer to Int4 and (optionally) moves one layer
/// between stages, shipping its KV slices in the commit window. When
/// the fault schedule contains a [`SimDeviceJoin`], the repartitioned
/// stage is re-homed onto the joined device — the migrate-onto-new-
/// device move.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMigration {
    /// Generated-token boundary of the swap (clamped to ≥ 1; token 0 is
    /// produced by the prefill under the base plan).
    pub at_token: usize,
    /// Whether the target also moves a layer between stages (a KV
    /// handoff) or only changes precision.
    pub repartition: bool,
}

impl Default for SimMigration {
    fn default() -> Self {
        Self { at_token: 2, repartition: true }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            n_stages: 2,
            prompts: vec![vec![1, 2, 3], vec![9, 8]],
            n_generate: 4,
            max_restarts: 3,
            tick_us: 1_000,
            heartbeat_timeout_us: 250_000,
            progress_timeout_us: 500_000,
            backoff_base_us: 5_000,
            link_latency_us: 50,
            horizon_us: 60_000_000,
            inject_conservation_bug: false,
            n_layers: None,
            migration: None,
        }
    }
}

impl SimConfig {
    /// The default live-migration scenario: 4 layers over the stages, a
    /// precision-drop + repartition swap at token 2 of a 6-token run —
    /// long enough that faults can land before, inside, and after the
    /// prepare/commit window.
    pub fn migration_default() -> Self {
        Self {
            n_layers: Some(4),
            n_generate: 6,
            migration: Some(SimMigration::default()),
            ..Self::default()
        }
    }
}

/// Everything one simulated run produced, invariant verdict included.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Seed the schedule was drawn from, if it came from a sweep.
    pub seed: Option<u64>,
    /// Generated tokens (present iff the run succeeded).
    pub tokens: Option<Vec<Vec<usize>>>,
    /// Terminal error of the run, if it failed after exhausting
    /// restarts — an *allowed* outcome under unsurvivable schedules.
    pub error: Option<String>,
    /// Restarts the master took.
    pub restarts: usize,
    /// Admission counters at the end of the run.
    pub admission: AdmissionStats,
    /// Requests still queued at the end (conservation term).
    pub pending: usize,
    /// Frames rejected by stale-attempt protection.
    pub stale_drops: u64,
    /// Frames the receivers detected as corrupt via the frame CRC.
    pub corrupt_detected: u64,
    /// One report per resolved plan swap (live-migration runs only).
    #[serde(default)]
    pub swaps: Vec<SwapReport>,
    /// The deterministic event trace (same seed ⇒ byte-identical).
    pub trace: Vec<String>,
    /// Invariant violations; empty means the run upheld every invariant
    /// (which includes runs that *failed over* legitimately).
    pub violations: Vec<String>,
    /// Virtual time at which the world wound down.
    pub final_virtual_us: u64,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The trace as one newline-joined string (byte-comparable).
    pub fn trace_text(&self) -> String {
        self.trace.join("\n")
    }
}

/// Evenly split the tiny model's layers into `n_stages`, alternating
/// Int8/Fp16 so the oracle exercises the quantized path.
fn build_exec_plan(model: &RefModel, n_stages: usize, n_seqs: usize) -> ExecutionPlan {
    let n_layers = model.cfg.n_layers;
    let per = n_layers / n_stages;
    let rem = n_layers % n_stages;
    let mut stages = Vec::new();
    let mut start = 0usize;
    for s in 0..n_stages {
        let len = per + usize::from(s < rem);
        let bits = (start..start + len)
            .map(|l| if l % 2 == 0 { Bitwidth::Int8 } else { Bitwidth::Fp16 })
            .collect();
        stages.push(StagePlan { device: s, layer_start: start, layer_end: start + len, bits });
        start += len;
    }
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "simnet".into(),
        stages,
        microbatch: MicrobatchPlan {
            prefill_size: 2,
            prefill_count: n_seqs.div_ceil(2).max(1),
            decode_size: n_seqs.max(1),
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

/// The fault-free oracle: single-threaded greedy generation on the
/// eagerly quantized model — what the pipeline must match bit-for-bit.
fn oracle_tokens(
    model: &RefModel,
    exec: &ExecutionPlan,
    prompts: &[Vec<usize>],
    n_generate: usize,
) -> Vec<Vec<usize>> {
    let bits: Vec<Bitwidth> = exec.stages.iter().flat_map(|s| s.bits.clone()).collect();
    let qm = quantize_model(model, &BitAssignment { bits }, Rounding::Deterministic, 0);
    prompts.iter().map(|p| qm.generate(p, n_generate, 0.0, 0).tokens).collect()
}

/// The migration target for a simulated run: every layer drops to Int4
/// (so commit vs. abort is visible in token space against the mixed
/// Int8/Fp16 base), optionally one layer moves across the first movable
/// stage boundary (so commit ships KV), and — when the fault schedule
/// has a device join — the last stage is re-homed onto the joined
/// device.
fn build_target_plan(
    base: &ExecutionPlan,
    migration: &SimMigration,
    joins: &[plan::SimDeviceJoin],
) -> ExecutionPlan {
    let n_layers = base.n_layers();
    let mut cuts: Vec<(usize, usize)> =
        base.stages.iter().map(|s| (s.layer_start, s.layer_end)).collect();
    if migration.repartition {
        for i in 0..cuts.len().saturating_sub(1) {
            if cuts[i + 1].1 - cuts[i + 1].0 >= 2 {
                cuts[i].1 += 1;
                cuts[i + 1].0 += 1;
                break;
            }
            if cuts[i].1 - cuts[i].0 >= 2 {
                cuts[i].1 -= 1;
                cuts[i + 1].0 -= 1;
                break;
            }
        }
    }
    let bits = vec![Bitwidth::Int4; n_layers];
    let mut stages: Vec<StagePlan> = cuts
        .iter()
        .zip(&base.stages)
        .map(|(&(lo, hi), s)| StagePlan {
            device: s.device,
            layer_start: lo,
            layer_end: hi,
            bits: bits[lo..hi].to_vec(),
        })
        .collect();
    if let (Some(j), Some(last)) = (joins.first(), stages.last_mut()) {
        last.device = j.device;
    }
    ExecutionPlan { stages, ..base.clone() }
}

/// Whether committed-migration output matches *some* legal recovery
/// history: boundary `b` starts at the scheduled token and walks up one
/// per pre-commit barrier death; at most one post-commit restart is
/// visible (it re-prefills under the target model — later restarts
/// regenerate the identical tail by greedy determinism). Every sequence
/// must agree on the same `(b, resume)` history.
fn migration_history_legal(
    model: &RefModel,
    base: &ExecutionPlan,
    target: &ExecutionPlan,
    at_token: usize,
    prompts: &[Vec<usize>],
    n_generate: usize,
    got: &[Vec<usize>],
) -> bool {
    let qo = quantize_model(model, &base.bit_assignment(), Rounding::Deterministic, 0);
    let qn = quantize_model(model, &target.bit_assignment(), Rounding::Deterministic, 0);
    for b in at_token.max(1)..n_generate {
        for resume in std::iter::once(None).chain((1..=n_generate).map(Some)) {
            let legal: Vec<Vec<usize>> = prompts
                .iter()
                .map(|p| hybrid_oracle_tokens(&[(0, &qo), (b, &qn)], p, n_generate, resume))
                .collect();
            if legal == got {
                return true;
            }
        }
    }
    false
}

struct MasterOutcome {
    result: Result<Vec<Vec<usize>>, RuntimeError>,
    restarts: usize,
    stats: AdmissionStats,
    pending: usize,
    swaps: Vec<SwapReport>,
}

/// One timed chaos operation, pre-sorted for deterministic application.
enum ChaosOp {
    Partition { link: usize, until: u64 },
    Crash { stage: usize, restart_at: u64 },
}

/// Run the master + `n`-stage distributed protocol once under `plan`,
/// deterministically, and check every invariant. Same `(cfg, plan)` ⇒
/// byte-identical [`SimReport::trace`] and verdict.
pub fn run_sim(cfg: &SimConfig, plan: &SimFaultPlan) -> SimReport {
    let ref_cfg = cfg
        .n_layers
        .map_or_else(RefConfig::tiny, |l| RefConfig { n_layers: l.clamp(1, 8), ..RefConfig::tiny() });
    let model = RefModel::new(ref_cfg);
    let n = cfg.n_stages.clamp(1, model.cfg.n_layers);
    let n_seqs = cfg.prompts.len();
    let exec = build_exec_plan(&model, n, n_seqs);
    let oracle = oracle_tokens(&model, &exec, &cfg.prompts, cfg.n_generate);
    let (stage_weights, _) = load_all_stages(&model, &exec, Rounding::Deterministic, 0);
    // Live-migration state: the swap target, the plan currently in force
    // (workers re-read it on every attempt — after a committed swap a
    // restarted stage must boot on the *target* plan), and the shared
    // host that lets workers requantize their shard on `PlanPropose`.
    let target = cfg.migration.as_ref().map(|m| build_target_plan(&exec, m, &plan.joins));
    let shared_plan = Arc::new(Mutex::new(exec.clone()));
    let host = cfg.migration.as_ref().map(|_| {
        let mut h = MigrationHost::new(model.clone(), Rounding::Deterministic, 0);
        h.commit_timeout = Duration::from_micros(cfg.progress_timeout_us);
        Arc::new(h)
    });

    let net = Arc::new(SimNet::new(cfg.horizon_us, n));
    // Links: data 0..=n (link i feeds stage i; link n returns to the
    // master), then one control link per stage.
    let events_for = |link: usize| {
        plan.link_events
            .iter()
            .filter(|e| e.link == link)
            .map(|e| (e.after_frames, e.kind.clone()))
            .collect::<Vec<_>>()
    };
    for i in 0..=n {
        let name = if i == n { format!("data {n}→master") } else { format!("data →stage {i}") };
        net.add_link(name, cfg.link_latency_us, events_for(i));
    }
    for s in 0..n {
        net.add_link(format!("ctl stage {s}"), cfg.link_latency_us, events_for(n + 1 + s));
    }
    // Actors: master, stages, control readers, chaos — ids fixed by
    // registration order, which fixes the schedule.
    let master_id = net.add_actor("master");
    let stage_ids: Vec<usize> = (0..n).map(|s| net.add_actor(format!("stage {s}"))).collect();
    let reader_ids: Vec<usize> = (0..n).map(|s| net.add_actor(format!("ctl reader {s}"))).collect();
    let chaos_id = net.add_actor("chaos");
    for (s, &actor) in stage_ids.iter().enumerate() {
        net.set_receiver(s, actor);
    }
    net.set_receiver(n, master_id);
    for (s, &actor) in reader_ids.iter().enumerate() {
        net.set_receiver(n + 1 + s, actor);
    }

    let observer: Arc<dyn Clock> = Arc::new(VirtualClock::observer(net.clone()));
    let hb = Heartbeats::with_clock(n, observer.clone());
    let telemetry = Telemetry::with_clock(n, observer);

    // Timed chaos operations, sorted by (time, declaration order).
    let mut ops: Vec<(u64, usize, ChaosOp)> = Vec::new();
    for p in &plan.partitions {
        let until = p.heal_at_us.unwrap_or(NEVER_US);
        ops.push((p.at_us, ops.len(), ChaosOp::Partition { link: p.link, until }));
    }
    for c in &plan.crashes {
        let restart_at = c.restart_after_us.map_or(NEVER_US, |r| c.at_us.saturating_add(r));
        ops.push((c.at_us, ops.len(), ChaosOp::Crash { stage: c.stage, restart_at }));
    }
    ops.sort_by_key(|(at, idx, _)| (*at, *idx));

    let outcome: Mutex<Option<MasterOutcome>> = Mutex::new(None);

    std::thread::scope(|scope| {
        // --- master actor -------------------------------------------------
        {
            let net = net.clone();
            let hb = hb.clone();
            let telemetry = telemetry.clone();
            let (model, exec, outcome, target) = (&model, &exec, &outcome, &target);
            let shared_plan = shared_plan.clone();
            scope.spawn(move || {
                net.enter(master_id);
                let _g = ActorGuard::new(&net, master_id);
                let clock: Arc<dyn Clock> =
                    Arc::new(VirtualClock::actor(net.clone(), master_id));
                let mut admission = AdmissionController::new(AdmissionConfig {
                    max_queue: cfg.prompts.len().max(1),
                    ..AdmissionConfig::default()
                });
                let now_s = clock.now().as_secs_f64();
                for (i, p) in cfg.prompts.iter().enumerate() {
                    admission.offer(
                        Request {
                            id: i,
                            arrival_s: now_s,
                            prompt: p.clone(),
                            n_generate: cfg.n_generate,
                            deadline_s: None,
                            priority: 0,
                        },
                        now_s,
                    );
                }
                let mut prompts: Vec<Vec<usize>> = Vec::new();
                while let Some(r) = admission.take() {
                    prompts.push(r.prompt);
                }
                let mut tokens: Vec<Vec<usize>> =
                    vec![Vec::with_capacity(cfg.n_generate); prompts.len()];
                let mut coord = target.as_ref().map(|t| {
                    let m = cfg.migration.as_ref().expect("target implies migration config");
                    let mut c = MigrationCoordinator::new(
                        vec![SwapRequest { at_token: m.at_token.max(1), plan: t.clone() }],
                        n,
                    );
                    c.prepare_timeout = Duration::from_micros(cfg.progress_timeout_us);
                    c.commit_timeout = Duration::from_micros(cfg.progress_timeout_us);
                    c
                });
                let mut restarts = 0usize;
                let result = loop {
                    let attempt = restarts as u64;
                    net.trace(&format!("master: attempt {attempt} begins"));
                    // Resolve a committed-but-unfinished swap from the
                    // previous attempt and publish the plan now in force
                    // so (re)started stages boot on it.
                    if let Some(c) = coord.as_mut() {
                        c.begin_attempt();
                    }
                    let cur_plan = coord
                        .as_ref()
                        .map_or_else(|| exec.clone(), |c| c.attempt_plan(exec).clone());
                    *shared_plan.lock().unwrap_or_else(PoisonError::into_inner) =
                        cur_plan.clone();
                    // A (re)connected stage counts as alive — reset the
                    // staleness baseline like the dist handshake does.
                    for s in 0..n {
                        hb.beat(s);
                    }
                    let transport = SimTransport::new(
                        SimConn {
                            net: net.clone(),
                            me: master_id,
                            owner_stage: None,
                            link: n,
                            epoch: attempt,
                        },
                        SimConn {
                            net: net.clone(),
                            me: master_id,
                            owner_stage: None,
                            link: 0,
                            epoch: attempt,
                        },
                    );
                    let master = Master {
                        model,
                        link: transport,
                        last_step: Cell::new(None),
                        telemetry: Some(telemetry.clone()),
                        local_gauges: false,
                    };
                    let sup = AttemptSupervision {
                        injector: None,
                        heartbeats: Some(hb.clone()),
                        heartbeat_timeout: Some(Duration::from_micros(cfg.heartbeat_timeout_us)),
                        progress_timeout: Some(Duration::from_micros(cfg.progress_timeout_us)),
                        tick: Some(Duration::from_micros(cfg.tick_us)),
                        telemetry: Some(telemetry.clone()),
                        queue_cap: None,
                        clock: clock.clone(),
                        migration_host: None,
                    };
                    let res = drive_generation_migrating(
                        &master,
                        &cur_plan,
                        &prompts,
                        &mut tokens,
                        cfg.n_generate,
                        &sup,
                        coord.as_mut(),
                    );
                    drop(master); // closes the outbound epoch (EOF cascade)
                    match res {
                        Ok(()) => {
                            net.trace(&format!("master: attempt {attempt} succeeded"));
                            break Ok(());
                        }
                        Err(e) => {
                            net.trace(&format!("master: attempt {attempt} failed: {e}"));
                            if restarts >= cfg.max_restarts {
                                break Err(e);
                            }
                            checkpoint_lockstep(&mut tokens);
                            clock.sleep(Duration::from_micros(
                                cfg.backoff_base_us.saturating_mul(1 << restarts.min(6)),
                            ));
                            restarts += 1;
                        }
                    }
                };
                match &result {
                    Ok(()) => admission.note_served(prompts.len()),
                    Err(_) => admission.note_shed(prompts.len()),
                }
                if cfg.inject_conservation_bug && restarts > 0 {
                    // Deliberate accounting bug (see SimConfig docs).
                    admission.note_served(1);
                }
                // Resolve a swap whose commit went out on the final
                // attempt but whose report is still pending.
                if let Some(c) = coord.as_mut() {
                    c.begin_attempt();
                }
                let record = MasterOutcome {
                    result: result.map(|()| tokens),
                    restarts,
                    stats: admission.stats(),
                    pending: admission.pending(),
                    swaps: coord.map(|c| c.reports).unwrap_or_default(),
                };
                *outcome.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
                net.set_run_over();
            });
        }

        // --- stage actors -------------------------------------------------
        for (s, &me) in stage_ids.iter().enumerate() {
            let net = net.clone();
            let model = &model;
            let weights = &stage_weights[s];
            let shared_plan = shared_plan.clone();
            let host = host.clone();
            scope.spawn(move || {
                net.enter(me);
                let _g = ActorGuard::new(&net, me);
                let clock: Arc<dyn Clock> = Arc::new(VirtualClock::actor(net.clone(), me));
                let (data_in, data_out, ctl) = (s, s + 1, n + 1 + s);
                let mut expected = 0u64;
                loop {
                    match net.await_epoch(me, s, data_in, expected, cfg.tick_us) {
                        AwaitEpoch::Serve(e) => {
                            net.trace(&format!("stage {s}: serving attempt {e}"));
                            // The plan in force for this attempt. Under
                            // migration a committed swap changes it, so a
                            // restarted stage must reload its shard; plain
                            // runs reuse the boot-time weights unchanged.
                            let sp = shared_plan
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .stages[s]
                                .clone();
                            let reloaded;
                            let serve_weights = if host.is_some() {
                                reloaded = load_stage_weights(
                                    model,
                                    sp.layer_start,
                                    &sp.bits,
                                    Rounding::Deterministic,
                                    0,
                                )
                                .0;
                                &reloaded
                            } else {
                                weights
                            };
                            let ctx = WorkerCtx {
                                stage: s,
                                device: sp.device,
                                n_heads: model.cfg.n_heads,
                                hidden: model.cfg.hidden,
                                alibi: model.cfg.alibi,
                                n_seqs,
                                injector: None,
                                heartbeats: None,
                                sink: None,
                                telemetry: None,
                                bits: bits_label(&sp),
                                tick: Duration::from_micros(cfg.tick_us),
                                disconnects: None,
                                clock: clock.clone(),
                                layer_start: sp.layer_start,
                                migration: host.clone(),
                            };
                            let conn = |link: usize, epoch: u64| SimConn {
                                net: net.clone(),
                                me,
                                owner_stage: Some(s),
                                link,
                                epoch,
                            };
                            let transport = SimTransport::with_control(
                                conn(data_in, e),
                                conn(data_out, e),
                                conn(ctl, 0),
                                s as u32,
                            );
                            // The real production worker loop — fresh KV
                            // caches per attempt, like a restarted process.
                            run_worker_transport(serve_weights, &ctx, &transport);
                            drop(transport);
                            expected = e + 1;
                        }
                        AwaitEpoch::Crashed => match net.crash_wait(me, s) {
                            CrashEnd::Restarted => net.trace(&format!("stage {s}: restarted")),
                            CrashEnd::Permanent => {
                                net.trace(&format!("stage {s}: down for good"));
                                return;
                            }
                            CrashEnd::Over => return,
                        },
                        AwaitEpoch::Over => return,
                    }
                }
            });
        }

        // --- control readers ----------------------------------------------
        for (s, &me) in reader_ids.iter().enumerate() {
            let net = net.clone();
            let hb = hb.clone();
            let ctl = n + 1 + s;
            scope.spawn(move || {
                net.enter(me);
                let _g = ActorGuard::new(&net, me);
                loop {
                    match net.recv_frame(me, None, ctl, 0, cfg.tick_us * 5) {
                        Ok(WireMsg::Heartbeat { stage }) => hb.beat(stage as usize),
                        Ok(_) => {}
                        Err(RecvEnd::Disconnected) => return,
                        Err(RecvEnd::Timeout) => {
                            if net.run_over() {
                                return;
                            }
                        }
                    }
                }
            });
        }

        // --- chaos actor --------------------------------------------------
        {
            let net = net.clone();
            let stage_ids = stage_ids.clone();
            let ops = &ops;
            scope.spawn(move || {
                net.enter(chaos_id);
                let _g = ActorGuard::new(&net, chaos_id);
                for (at, _, op) in ops {
                    // Loop: a run-over nudge may wake the sleep early.
                    loop {
                        let now = net.now_us();
                        if now >= *at || net.poisoned() {
                            break;
                        }
                        net.sleep(chaos_id, *at - now);
                    }
                    if net.poisoned() {
                        return;
                    }
                    match op {
                        ChaosOp::Partition { link, until } => net.apply_partition(*link, *until),
                        ChaosOp::Crash { stage, restart_at } => {
                            let actor = stage_ids.get(*stage).copied().unwrap_or(chaos_id);
                            net.apply_crash(*stage, actor, *restart_at);
                        }
                    }
                }
            });
        }

        net.start();
    });

    let sim = net.finish();
    let mut violations = sim.violations;
    // Infallible: the master actor stores its outcome before `run_over`,
    // and the thread scope joined it above.
    let MasterOutcome { result, restarts, stats, pending, swaps } = outcome
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .expect("master actor records an outcome before exiting");
    if !stats.conserves(pending) {
        violations.push(format!(
            "admission conservation violated: offered {} != served {} + shed {} + expired {} + \
             pending {pending}",
            stats.offered, stats.served, stats.shed, stats.expired
        ));
    }
    match &result {
        Ok(tokens) => match (&cfg.migration, &target) {
            (Some(m), Some(t)) => {
                let committed = swaps.iter().any(|r| r.committed);
                if committed {
                    // Every legal history is: old plan up to boundary
                    // `b` (the scheduled token, plus one per pre-commit
                    // barrier death), target plan after, with at most
                    // one visible re-prefill resume point.
                    if !migration_history_legal(
                        &model,
                        &exec,
                        t,
                        m.at_token.max(1),
                        &cfg.prompts,
                        cfg.n_generate,
                        tokens,
                    ) {
                        violations.push(
                            "committed migration produced tokens matching no legal swap history"
                                .to_string(),
                        );
                    }
                } else if *tokens != oracle {
                    violations.push(
                        "aborted migration diverges from the old-plan oracle".to_string(),
                    );
                }
                if plan.is_empty() && !committed {
                    violations
                        .push("fault-free migration run failed to commit the swap".to_string());
                }
            }
            _ => {
                if *tokens != oracle {
                    violations.push(
                        "token output diverges from the fault-free sequential oracle".to_string(),
                    );
                }
            }
        },
        Err(e) => {
            if plan.is_empty() {
                violations.push(format!("fault-free run failed: {e}"));
            }
        }
    }
    if plan.is_empty() && restarts != 0 {
        violations.push(format!("fault-free run took {restarts} restart(s)"));
    }
    if restarts > cfg.max_restarts {
        violations.push(format!(
            "restart count {restarts} exceeds the recovery bound {}",
            cfg.max_restarts
        ));
    }
    SimReport {
        seed: None,
        tokens: result.as_ref().ok().cloned(),
        error: result.err().map(|e| e.to_string()),
        restarts,
        admission: stats,
        pending,
        stale_drops: sim.stale_drops,
        corrupt_detected: sim.corrupt_detected,
        swaps,
        trace: sim.trace,
        violations,
        final_virtual_us: sim.final_now_us,
    }
}
