//! Serving-chaos harness: the distributed continuous-serving engine
//! ([`DistStepEngine`] over the in-process channel ring) driven through
//! seeded arrival traces and seeded, migration-biased fault schedules,
//! with every run checked against the **hybrid oracle** — the local
//! [`ModelStepEngine`] serving the identical trace, config and swap
//! schedule. Restart-free runs must match the oracle token for token;
//! restarted runs must conserve admissions, stay inside the restart
//! budget, serve exact lengths and never contradict an
//! already-streamed token (see [`run_serving_chaos`] for the tier
//! rationale). Any violation shrinks to a minimal replayable
//! counterexample exactly like the wire-level sweep in
//! [`super::shrink`].
//!
//! Entry points: [`run_serving_chaos`] (one seed, one schedule) and
//! [`serving_seed_sweep`] (consecutive seeds, one random schedule each,
//! shrinking failures). `llmpq-simnet --serving` is a thin CLI wrapper.

use super::plan::splitmix64;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::kvpool::KvPoolConfig;
use crate::overload::{poisson_requests, Request};
use crate::serve::{
    ContinuousConfig, ContinuousReport, ContinuousScheduler, ModelStepEngine, RungSwap, StepEngine,
};
use crate::serve_dist::{DistServeConfig, DistStepEngine};
use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{BitAssignment, Bitwidth, Rounding};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Parameters of one serving-chaos run (the model is always the tiny
/// reference transformer split across two stages, rung ladder
/// fp16 → int8 — the same shape the `serve_dist` unit tests pin).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingChaosConfig {
    /// Requests in the Poisson arrival trace (prompt lengths and
    /// generation counts are drawn per seed).
    pub n_requests: usize,
    /// Scheduler token budget per iteration.
    pub token_budget: usize,
    /// Scheduler batch cap.
    pub max_batch: usize,
    /// Ring rebuilds the engine may absorb; schedules are drawn with at
    /// most this many ring-loss events so every run is survivable and
    /// an exhausted budget is a violation, not an allowed fail-over.
    pub max_restarts: usize,
    /// Draw a live precision swap per seed and bias fault steps into
    /// its window (the hardest interleaving: fault meets barrier).
    pub migration: bool,
}

impl Default for ServingChaosConfig {
    fn default() -> Self {
        Self { n_requests: 6, token_budget: 16, max_batch: 4, max_restarts: 4, migration: true }
    }
}

/// Outcome of one serving-chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingChaosRun {
    /// Seed that drew the trace (and, in sweeps, the schedule).
    pub seed: u64,
    /// Invariant violations (empty = run passed).
    pub violations: Vec<String>,
    /// Ring restarts the engine absorbed.
    pub restarts: u64,
    /// Committed swap epoch at the end (0 = never swapped).
    pub epoch: u64,
    /// In-flight sequences requeued for recompute across restarts.
    pub recovered: usize,
    /// Events in the injected schedule.
    pub fault_events: usize,
    /// Iteration of the seeded live swap, if one was scheduled.
    pub swap_at: Option<u64>,
}

/// One seed whose serving run violated an invariant, with the minimal
/// reproducing schedule attached (replayable via
/// `llmpq-simnet --serving --replay`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingSweepFailure {
    /// Seed that drew the original schedule.
    pub seed: u64,
    /// Violations reported by the original (unshrunk) run.
    pub violations: Vec<String>,
    /// Minimal schedule that still reproduces a violation.
    pub minimized: FaultPlan,
    /// `minimized` as replayable JSON (what CI uploads as an artifact).
    pub minimized_json: String,
}

/// Outcome of a [`serving_seed_sweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingSweepReport {
    /// First seed swept.
    pub start_seed: u64,
    /// Number of consecutive seeds swept.
    pub n_seeds: u64,
    /// Every violating seed, minimized.
    pub failures: Vec<ServingSweepFailure>,
    /// Schedules containing at least one fault event.
    pub runs_with_faults: u64,
    /// Runs that recovered through at least one ring restart.
    pub runs_with_restarts: u64,
    /// Runs whose seeded live swap committed (epoch > 0 at the end).
    pub runs_committed: u64,
    /// Total in-flight sequences requeued for recompute across the
    /// sweep — the conservation leg the restarts exercised.
    pub sequences_recovered: u64,
}

impl ServingSweepReport {
    /// Whether the sweep found no invariant violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Random fault schedule for one serving run, seeded and
/// migration-biased: at most `cfg.max_restarts` ring-loss events
/// (crash / hang / dropped item — each costs one restart, so the
/// budget always survives the schedule), plus up to two straggler
/// slowdowns that must *not* restart anything. Step ordinals
/// concentrate in the first ~20 work items — with a seeded swap at
/// iteration 1..=6 that lands faults before, inside and just after the
/// two-phase barrier window.
pub fn serving_fault_plan(cfg: &ServingChaosConfig, seed: u64) -> FaultPlan {
    let mut state = seed ^ 0x5345_5256_4531_4135; // "SERVE1A5"
    let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
    let mut events = Vec::new();
    let n_loss = next(cfg.max_restarts as u64 + 1);
    for attempt in 0..n_loss {
        let kind = match next(4) {
            // Crashes dominate: they are cheap to detect (disconnect)
            // and exercise the restart-replay path hardest.
            0 | 1 => FaultKind::Crash,
            2 => FaultKind::Hang,
            _ => FaultKind::DropMessage,
        };
        events.push(FaultEvent {
            stage: next(2) as usize,
            step: next(20) as usize,
            // Pin each loss to its own attempt: the k-th loss fires on
            // the ring's k-th incarnation (if the run lasts that long),
            // so restarts never exceed the loss count.
            attempt: Some(attempt as usize),
            kind,
        });
    }
    for _ in 0..next(3) {
        events.push(FaultEvent {
            stage: next(2) as usize,
            step: next(20) as usize,
            attempt: None,
            kind: FaultKind::Slowdown { factor: 1.5 + next(4) as f64 * 0.5 },
        });
    }
    FaultPlan { events }
}

/// The seeded live swap for this seed (`None` when migration is off):
/// fp16 → int8 at iteration 1..=6, early enough that requests are
/// still in flight when the barrier runs.
pub fn serving_swap(cfg: &ServingChaosConfig, seed: u64) -> Option<RungSwap> {
    if !cfg.migration {
        return None;
    }
    let mut state = seed ^ 0x5357_4150_5F41_5431; // "SWAP_AT1"
    Some(RungSwap { at_iteration: 1 + splitmix64(&mut state) % 6, rung: 1 })
}

fn checkpoint() -> RefModel {
    RefModel::new(RefConfig::tiny())
}

/// Two-stage plan over the tiny model at uniform `bits`.
fn stage_plan(bits: Bitwidth) -> ExecutionPlan {
    let n = RefConfig::tiny().n_layers;
    let split = n / 2;
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "chaos".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: split, bits: vec![bits; split] },
            StagePlan { device: 1, layer_start: split, layer_end: n, bits: vec![bits; n - split] },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

/// Seeded Poisson trace with per-seed prompt/generation geometry.
fn chaos_trace(cfg: &ServingChaosConfig, seed: u64) -> Result<Vec<Request>, String> {
    let mut state = seed ^ 0x5452_4143_4531_4135; // "TRACE1A5"
    let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
    let prompt_len = 3 + next(5) as usize; // 3..=7
    let n_generate = 2 + next(4) as usize; // 2..=5
    poisson_requests(cfg.n_requests, 50.0, prompt_len, n_generate, seed)
}

fn serve_cfg(cfg: &ServingChaosConfig, swap: Option<RungSwap>) -> ContinuousConfig {
    ContinuousConfig {
        token_budget: cfg.token_budget,
        max_batch: cfg.max_batch,
        swaps: swap.into_iter().collect(),
        ..ContinuousConfig::default()
    }
}

/// [`crate::serve::serve_continuous`] with two chaos-only extras: the
/// engine's epoch/restart counters read out before the scheduler is
/// consumed, and a landed-token audit — the same `(request, index)`
/// must never land two different tokens, or a streaming consumer that
/// already emitted the first landing now holds a token the final
/// answer disagrees with.
fn drive<E: StepEngine>(
    engine: E,
    requests: &[Request],
    cfg: ContinuousConfig,
    stream_violations: &mut Vec<String>,
) -> Result<(ContinuousReport, u64, u64), String> {
    let mut sched = ContinuousScheduler::new(engine, cfg)?;
    let mut now = 0.0f64;
    let mut idx = 0usize;
    let mut makespan = 0.0f64;
    let mut emitted: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    loop {
        while idx < requests.len() && requests[idx].arrival_s <= now + 1e-12 {
            sched.offer(requests[idx].clone(), now);
            idx += 1;
        }
        let out = sched.step(now).map_err(|e| e.to_string())?;
        for &(id, index, token) in &out.landed {
            if let Some(&prev) = emitted.get(&(id, index)) {
                if prev != token {
                    stream_violations.push(format!(
                        "stream contradiction: request {id} token {index} landed as {prev}, \
                         re-landed as {token}"
                    ));
                }
            } else {
                emitted.insert((id, index), token);
            }
        }
        if out.idle {
            if idx < requests.len() {
                now = requests[idx].arrival_s;
                continue;
            }
            if sched.queued() == 0 && sched.in_flight() == 0 {
                break;
            }
            return Err(format!(
                "scheduler livelock: {} queued, {} in flight, nothing runnable",
                sched.queued(),
                sched.in_flight()
            ));
        }
        now += out.cost_s;
        makespan = now;
    }
    let restarts = sched.engine().restarts();
    let epoch = sched.engine().epoch();
    Ok((sched.into_report(makespan, "continuous"), restarts, epoch))
}

fn finished_tokens(report: &ContinuousReport) -> BTreeMap<usize, Vec<usize>> {
    report.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect()
}

/// Run one seed's serving-chaos scenario under `faults` and return the
/// invariant verdict. The oracle is the local [`ModelStepEngine`] on
/// the identical trace, quantization seed, admission config and swap
/// schedule.
///
/// Invariant tiers: a run that absorbed **no** restart must match the
/// oracle token for token — faults the engine rode out (stragglers,
/// unconsumed events) are invisible. A run that restarted legitimately
/// reshapes its timeline (the recovery iteration shifts when an
/// iteration-keyed swap lands relative to request progress, and prefix
/// KV is rebuilt at the committed rung), so exact oracle equality is
/// not demanded; instead every run must conserve admissions (including
/// the recovered leg), respect the restart budget, serve every
/// finished request to its exact requested length, and never
/// contradict a token it already landed (stream consistency — restored
/// sequences resume preserved tokens rather than re-sampling).
pub fn run_serving_chaos(
    cfg: &ServingChaosConfig,
    seed: u64,
    faults: &FaultPlan,
) -> ServingChaosRun {
    let swap = serving_swap(cfg, seed);
    let mut run = ServingChaosRun {
        seed,
        violations: Vec::new(),
        restarts: 0,
        epoch: 0,
        recovered: 0,
        fault_events: faults.events.len(),
        swap_at: swap.as_ref().map(|s| s.at_iteration),
    };
    let trace = match chaos_trace(cfg, seed) {
        Ok(t) => t,
        Err(e) => {
            run.violations.push(format!("trace generation failed: {e}"));
            return run;
        }
    };
    let model = checkpoint();
    let n = model.cfg.n_layers;
    let bit_ladder = vec![
        BitAssignment::uniform(n, Bitwidth::Fp16),
        BitAssignment::uniform(n, Bitwidth::Int8),
    ];
    let mut oracle_stream = Vec::new();
    let local = ModelStepEngine::new(
        &model,
        &bit_ladder,
        Rounding::Deterministic,
        seed,
        KvPoolConfig::default(),
    )
    .and_then(|eng| drive(eng, &trace, serve_cfg(cfg, swap), &mut oracle_stream));
    let (oracle, _, _) = match local {
        Ok(r) => r,
        Err(e) => {
            run.violations.push(format!("local oracle failed: {e}"));
            return run;
        }
    };
    if !oracle_stream.is_empty() {
        run.violations.push(format!("local oracle broke stream consistency: {oracle_stream:?}"));
    }
    let dist_cfg = DistServeConfig {
        n_slots: (cfg.max_batch * 2).max(8),
        max_restarts: cfg.max_restarts,
        // Hung stages and dropped items are detected by this real-time
        // deadline; keep it short so hang-heavy sweeps stay fast.
        op_timeout: Duration::from_millis(150),
        tick: Duration::from_millis(1),
        ..DistServeConfig::default()
    };
    let mut dist_stream = Vec::new();
    let dist = DistStepEngine::over_channels(
        &model,
        vec![stage_plan(Bitwidth::Fp16), stage_plan(Bitwidth::Int8)],
        Rounding::Deterministic,
        seed,
        dist_cfg,
        Some(faults.clone()),
    )
    .and_then(|eng| drive(eng, &trace, serve_cfg(cfg, swap), &mut dist_stream));
    let (report, restarts, epoch) = match dist {
        Ok(r) => r,
        Err(e) => {
            // Schedules are drawn survivable (ring losses ≤ budget), so
            // even an exhausted restart budget is a violation here.
            run.violations.push(format!("distributed run failed: {e}"));
            return run;
        }
    };
    run.restarts = restarts;
    run.epoch = epoch;
    run.recovered = report.stats.recovered;
    run.violations.extend(dist_stream);
    let want = finished_tokens(&oracle);
    let got = finished_tokens(&report);
    if restarts == 0 && want != got {
        let diverged: Vec<usize> =
            want.iter().filter(|(id, toks)| got.get(id) != Some(toks)).map(|(id, _)| *id).collect();
        run.violations.push(format!(
            "token divergence vs local oracle without any restart: {} of {} requests differ \
             (ids {:?})",
            diverged.len().max(want.len().abs_diff(got.len())),
            want.len(),
            diverged
        ));
    }
    // Completion integrity: a served request is exactly its requested
    // length — restarts must not truncate or overshoot a sequence.
    for fin in &report.outputs {
        if let Some(req) = trace.iter().find(|r| r.id == fin.id) {
            if fin.tokens.len() != req.n_generate {
                run.violations.push(format!(
                    "request {} served {} tokens, asked for {}",
                    fin.id,
                    fin.tokens.len(),
                    req.n_generate
                ));
            }
        }
    }
    if !report.conserves() {
        run.violations.push(format!(
            "admission conservation broken: offered {} != served {} + shed {} + expired {} + \
             pending {} (recovered leg {})",
            report.stats.offered,
            report.stats.served,
            report.stats.shed,
            report.stats.expired,
            report.pending_end,
            report.stats.recovered,
        ));
    }
    if restarts > cfg.max_restarts as u64 {
        run.violations
            .push(format!("restart bound broken: {restarts} > budget {}", cfg.max_restarts));
    }
    run
}

/// Greedily remove schedule events while the violation reproduces at
/// `seed` — same walk as [`super::shrink_fault_plan`], over the
/// serving scenario.
pub fn shrink_serving_plan(cfg: &ServingChaosConfig, seed: u64, plan: &FaultPlan) -> FaultPlan {
    let fails = |p: &FaultPlan| !run_serving_chaos(cfg, seed, p).violations.is_empty();
    if !fails(plan) {
        return plan.clone();
    }
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        let mut idx = 0;
        while idx < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(idx);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                idx = 0;
            } else {
                idx += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Sweep `n_seeds` consecutive seeds from `start_seed`, one random
/// migration-biased schedule per seed, shrinking every failure.
/// Deterministic: the same `(cfg, start_seed, n_seeds)` yields the
/// same report.
pub fn serving_seed_sweep(
    cfg: &ServingChaosConfig,
    start_seed: u64,
    n_seeds: u64,
) -> ServingSweepReport {
    let mut report = ServingSweepReport {
        start_seed,
        n_seeds,
        failures: Vec::new(),
        runs_with_faults: 0,
        runs_with_restarts: 0,
        runs_committed: 0,
        sequences_recovered: 0,
    };
    for seed in start_seed..start_seed.saturating_add(n_seeds) {
        let plan = serving_fault_plan(cfg, seed);
        if !plan.events.is_empty() {
            report.runs_with_faults += 1;
        }
        let run = run_serving_chaos(cfg, seed, &plan);
        if run.restarts > 0 {
            report.runs_with_restarts += 1;
        }
        if run.epoch > 0 {
            report.runs_committed += 1;
        }
        report.sequences_recovered += run.recovered as u64;
        if !run.violations.is_empty() {
            let minimized = shrink_serving_plan(cfg, seed, &plan);
            let minimized_json = minimized.to_json();
            report.failures.push(ServingSweepFailure {
                seed,
                violations: run.violations,
                minimized,
                minimized_json,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_and_survivable() {
        let cfg = ServingChaosConfig::default();
        for seed in 0..100 {
            let a = serving_fault_plan(&cfg, seed);
            assert_eq!(a, serving_fault_plan(&cfg, seed), "seed {seed}");
            let losses = a
                .events
                .iter()
                .filter(|e| !matches!(e.kind, FaultKind::Slowdown { .. }))
                .count();
            assert!(losses <= cfg.max_restarts, "seed {seed}: {losses} ring losses");
        }
    }

    #[test]
    fn fault_free_run_matches_oracle() {
        let cfg = ServingChaosConfig::default();
        let run = run_serving_chaos(&cfg, 3, &FaultPlan::none());
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.restarts, 0);
    }

    #[test]
    fn crash_schedule_recovers_without_violations() {
        let cfg = ServingChaosConfig::default();
        let faults = FaultPlan::crash(1, 5);
        let run = run_serving_chaos(&cfg, 3, &faults);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.restarts > 0, "crash must surface as a restart");
    }

    #[test]
    fn small_sweep_is_clean_and_exercises_restarts() {
        let cfg = ServingChaosConfig::default();
        let report = serving_seed_sweep(&cfg, 0, 12);
        assert!(report.ok(), "failures: {:#?}", report.failures);
        assert!(report.runs_with_faults > 0, "sweep never drew a fault");
        assert!(report.runs_with_restarts > 0, "sweep never restarted");
        assert!(report.runs_committed > 0, "sweep never committed a swap");
    }
}
