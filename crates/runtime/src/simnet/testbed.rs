//! Wire-level testbed: one sender, one receiver, one chaotic link.
//!
//! Where [`super::run_sim`] exercises the whole distributed protocol,
//! [`wire_exchange`] isolates the codec and connection invariants so
//! property tests can drive *adversarial* schedules — including
//! [`SimFaultKind::Reorder`], which the stream-faithful protocol
//! schedules never draw — and assert exactly what a receiver may
//! observe: no message is ever invented, corruption surfaces through
//! the real frame CRC as a typed disconnect, and stale-epoch dials are
//! rejected wholesale.

use super::conn::{to_wire, SimConn, SimTransport};
use super::plan::{SimLinkEvent, SimPartition};
use super::sched::{ActorGuard, SimNet, NEVER_US};
use crate::net::transport::{Transport, TransportRecvError};
use crate::worker::WorkerMsg;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One scripted sender→receiver exchange over a single faulty link.
#[derive(Debug, Clone)]
pub struct WireExchangeConfig {
    /// Messages the sender pushes, in order.
    pub msgs: Vec<WorkerMsg>,
    /// Epoch the sender dials with.
    pub sender_epoch: u64,
    /// Epoch the receiver expects (≠ sender's models a stale dial).
    pub receiver_epoch: u64,
    /// Fault events for the forward link (its index is 0).
    pub events: Vec<SimLinkEvent>,
    /// Timed partitions of the forward link.
    pub partitions: Vec<SimPartition>,
    /// One-way link latency, virtual µs.
    pub latency_us: u64,
    /// Virtual µs the sender waits between messages.
    pub send_gap_us: u64,
    /// Whether the sender closes its epoch after the last message
    /// (EOF). `false` models a sender that just goes quiet.
    pub close_after_send: bool,
    /// Receiver's total virtual-time budget before it gives up.
    pub budget_us: u64,
    /// Scheduler horizon (deadlock backstop).
    pub horizon_us: u64,
}

impl Default for WireExchangeConfig {
    fn default() -> Self {
        Self {
            msgs: vec![WorkerMsg::Shutdown],
            sender_epoch: 0,
            receiver_epoch: 0,
            events: Vec::new(),
            partitions: Vec::new(),
            latency_us: 50,
            send_gap_us: 100,
            close_after_send: true,
            budget_us: 2_000_000,
            horizon_us: 60_000_000,
        }
    }
}

/// What the receiver observed.
#[derive(Debug, Clone)]
pub struct WireExchange {
    /// Messages delivered, in delivery order.
    pub delivered: Vec<WorkerMsg>,
    /// Receiver ended on a clean EOF / disconnect.
    pub clean_eof: bool,
    /// Receiver exhausted its budget waiting.
    pub timed_out: bool,
    /// Frames the receiver rejected through the real frame CRC.
    pub corrupt_detected: u64,
    /// Frames rejected by stale-epoch protection.
    pub stale_rejected: u64,
    /// Deterministic event trace of the exchange.
    pub trace: Vec<String>,
}

/// Run one deterministic sender→receiver exchange under `cfg`'s fault
/// schedule. Same `cfg` ⇒ byte-identical trace and outcome.
pub fn wire_exchange(cfg: &WireExchangeConfig) -> WireExchange {
    let net = Arc::new(SimNet::new(cfg.horizon_us, 0));
    let wire = net.add_link(
        "wire",
        cfg.latency_us,
        cfg.events.iter().filter(|e| e.link == 0).map(|e| (e.after_frames, e.kind.clone())).collect(),
    );
    let back = net.add_link("return", cfg.latency_us, Vec::new());
    let sender = net.add_actor("sender");
    let receiver = net.add_actor("receiver");
    let chaos = net.add_actor("chaos");
    net.set_receiver(wire, receiver);

    let got: Mutex<(Vec<WorkerMsg>, bool, bool)> = Mutex::new((Vec::new(), false, false));

    std::thread::scope(|scope| {
        {
            let net = net.clone();
            scope.spawn(move || {
                net.enter(sender);
                let _g = ActorGuard::new(&net, sender);
                let conn = SimConn {
                    net: net.clone(),
                    me: sender,
                    owner_stage: None,
                    link: wire,
                    epoch: cfg.sender_epoch,
                };
                for (i, m) in cfg.msgs.iter().enumerate() {
                    if i > 0 {
                        net.sleep(sender, cfg.send_gap_us);
                    }
                    if conn.send(&to_wire(m.clone())).is_err() {
                        break;
                    }
                }
                if cfg.close_after_send {
                    conn.close();
                }
            });
        }
        {
            let net = net.clone();
            let got = &got;
            scope.spawn(move || {
                net.enter(receiver);
                let _g = ActorGuard::new(&net, receiver);
                let rx = SimConn {
                    net: net.clone(),
                    me: receiver,
                    owner_stage: None,
                    link: wire,
                    epoch: cfg.receiver_epoch,
                };
                let tx = SimConn {
                    net: net.clone(),
                    me: receiver,
                    owner_stage: None,
                    link: back,
                    epoch: 0,
                };
                let transport = SimTransport::new(rx, tx);
                let deadline = net.now_us().saturating_add(cfg.budget_us);
                loop {
                    let now = net.now_us();
                    if now >= deadline {
                        got.lock().unwrap_or_else(PoisonError::into_inner).2 = true;
                        break;
                    }
                    match transport.recv_msg(Duration::from_micros(deadline - now)) {
                        Ok(m) => {
                            got.lock().unwrap_or_else(PoisonError::into_inner).0.push(m);
                        }
                        Err(TransportRecvError::Disconnected) => {
                            got.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
                            break;
                        }
                        Err(TransportRecvError::Timeout) => {
                            got.lock().unwrap_or_else(PoisonError::into_inner).2 = true;
                            break;
                        }
                    }
                }
                net.set_run_over();
            });
        }
        {
            let net = net.clone();
            scope.spawn(move || {
                net.enter(chaos);
                let _g = ActorGuard::new(&net, chaos);
                let mut parts: Vec<&SimPartition> =
                    cfg.partitions.iter().filter(|p| p.link == 0).collect();
                parts.sort_by_key(|p| p.at_us);
                for p in parts {
                    loop {
                        let now = net.now_us();
                        if now >= p.at_us || net.poisoned() || net.run_over() {
                            break;
                        }
                        net.sleep(chaos, p.at_us - now);
                    }
                    if net.poisoned() || net.run_over() {
                        return;
                    }
                    net.apply_partition(wire, p.heal_at_us.unwrap_or(NEVER_US));
                }
            });
        }
        net.start();
    });

    let (delivered, clean_eof, timed_out) =
        got.into_inner().unwrap_or_else(PoisonError::into_inner);
    let outcome = net.finish();
    WireExchange {
        delivered,
        clean_eof,
        timed_out,
        corrupt_detected: outcome.corrupt_detected,
        stale_rejected: outcome.stale_drops,
        trace: outcome.trace,
    }
}
