//! Elastic-fleet chaos harness: the [`FleetController`] driven through
//! seeded membership churn (joins, leaves, degrades, flap bursts — with
//! leaves biased into migration windows) against seeded diurnal +
//! bursty request arrivals, inside a deterministic discrete-event
//! simulation of a single serving queue. Every run is checked against
//! the **elasticity invariants**:
//!
//! * a committed plan references only devices live at commit time;
//! * every offered request is served exactly once — never lost, never
//!   double-served — across scale-out, scale-in and aborted
//!   migrations (work in flight on a dying device is *recovered*, i.e.
//!   requeued, not dropped);
//! * shedding is legitimate only when the fleet genuinely cannot hold
//!   the model at the lowest rung; a serviceable fleet with stranded
//!   requests (or a dead plan it never replanned off) is a stuck
//!   control loop and fails the run.
//!
//! Violations shrink greedily to a minimal replayable churn schedule,
//! exactly like the wire-level and serving-chaos sweeps.
//! `llmpq-simnet --elastic` is a thin CLI wrapper over
//! [`elastic_seed_sweep`].

use super::plan::splitmix64;
use crate::elastic::{
    ControllerCommand, ControllerState, DebouncedPolicy, EvenSplitPlanner, FleetController,
    FleetEvent, FleetEventKind,
};
use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Parameters of one elastic-fleet simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticSimConfig {
    /// Devices live at t = 0 (ids `0..n_devices`).
    pub n_devices: usize,
    /// Total device ids churn may draw from (spares join later).
    pub device_pool: usize,
    /// Requests in the arrival trace.
    pub n_requests: usize,
    /// Simulated horizon, µs (churn stops at ¾ of it; the run gets a
    /// settle grace period past it).
    pub horizon_us: u64,
    /// Layers of the abstract model being served.
    pub n_layers: usize,
    /// Lowest-rung per-device capacity, in layers.
    pub max_layers_per_device: usize,
    /// Controller debounce window, µs.
    pub debounce_us: u64,
    /// Controller post-commit cooldown, µs.
    pub cooldown_us: u64,
    /// Flap-detection window, µs.
    pub flap_window_us: u64,
    /// Membership toggles inside the window that quarantine a device.
    pub flap_max_toggles: u32,
    /// Duration of the two-phase migration barrier, µs (leaves landing
    /// inside it abort the migration).
    pub migration_us: u64,
    /// Service cost per bottleneck layer, µs (Int4/degraded layers
    /// count double).
    pub base_service_us: u64,
    /// Dev hook: serve the first request twice, to prove the
    /// double-serve invariant actually fires.
    pub inject_double_serve: bool,
}

impl Default for ElasticSimConfig {
    fn default() -> Self {
        Self {
            n_devices: 3,
            device_pool: 6,
            n_requests: 40,
            horizon_us: 60_000_000,
            n_layers: 8,
            max_layers_per_device: 4,
            debounce_us: 20_000,
            cooldown_us: 200_000,
            flap_window_us: 500_000,
            flap_max_toggles: 3,
            migration_us: 30_000,
            base_service_us: 5_000,
            inject_double_serve: false,
        }
    }
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the event is observed, µs.
    pub at_us: u64,
    /// Device id (within the pool).
    pub device: usize,
    /// Join / Leave / Degrade.
    pub kind: FleetEventKind,
}

/// A replayable churn schedule (the shrink target and CI artifact).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ElasticChurnPlan {
    /// Events in chronological order.
    pub events: Vec<ChurnEvent>,
}

impl ElasticChurnPlan {
    /// No churn at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Serialize for counterexample artifacts / `--replay`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("churn plan serializes")
    }

    /// Parse a schedule previously written by [`to_json`](Self::to_json).
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad churn plan JSON: {e}"))
    }
}

/// Seeded churn schedule: joins of spare devices (half of them followed
/// by a leave timed to land *inside* the resulting migration window —
/// the abort path), plain leaves (which may shrink the fleet below
/// feasibility — the typed-infeasible path), degrades, and 3–4-toggle
/// flap bursts on a spare (the hysteresis path). Deterministic in
/// `(cfg, seed)`.
pub fn elastic_churn_plan(cfg: &ElasticSimConfig, seed: u64) -> ElasticChurnPlan {
    let mut state = seed ^ 0x454C_4153_5449_4331; // "ELASTIC1"
    let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
    let mut live: BTreeSet<usize> = (0..cfg.n_devices).collect();
    let mut events: Vec<ChurnEvent> = Vec::new();
    let mut t = 1_000_000 + next(4_000_000);
    let churn_end = cfg.horizon_us * 3 / 4;
    while t < churn_end {
        let spares: Vec<usize> = (0..cfg.device_pool).filter(|d| !live.contains(d)).collect();
        let lives: Vec<usize> = live.iter().copied().collect();
        match next(8) {
            0..=2 => {
                if let Some(&d) = spares.get(next(spares.len() as u64) as usize) {
                    events.push(ChurnEvent { at_us: t, device: d, kind: FleetEventKind::Join });
                    live.insert(d);
                    // Bias: half the joins are chased by a leave timed
                    // into the middle of the migration they trigger.
                    if next(2) == 0 && live.len() > 1 {
                        let lv: Vec<usize> = live.iter().copied().collect();
                        let victim = lv[next(lv.len() as u64) as usize];
                        events.push(ChurnEvent {
                            at_us: t + cfg.debounce_us + cfg.migration_us / 2,
                            device: victim,
                            kind: FleetEventKind::Leave,
                        });
                        live.remove(&victim);
                    }
                }
            }
            3..=4 => {
                if let Some(&d) = lives.get(next(lives.len() as u64) as usize) {
                    events.push(ChurnEvent { at_us: t, device: d, kind: FleetEventKind::Leave });
                    live.remove(&d);
                }
            }
            5 => {
                if let Some(&d) = lives.get(next(lives.len() as u64) as usize) {
                    events.push(ChurnEvent { at_us: t, device: d, kind: FleetEventKind::Degrade });
                }
            }
            _ => {
                // Flap burst on a spare: 4 toggles net out to "still
                // gone" (pure hysteresis), 3 end joined (the
                // stabilized-flapper recheck path).
                if let Some(&d) = spares.get(next(spares.len() as u64) as usize) {
                    let toggles = 3 + next(2);
                    for k in 0..toggles {
                        let kind = if k % 2 == 0 {
                            FleetEventKind::Join
                        } else {
                            FleetEventKind::Leave
                        };
                        events.push(ChurnEvent { at_us: t + k * 40_000, device: d, kind });
                    }
                    if toggles % 2 == 1 {
                        live.insert(d);
                    }
                }
            }
        }
        t += 2_000_000 + next(6_000_000);
    }
    events.sort_by_key(|e| (e.at_us, e.device));
    ElasticChurnPlan { events }
}

/// Seeded arrival trace: a diurnal sinusoid over the horizon modulating
/// the mean gap, with every third triple of requests compressed into a
/// burst. Deterministic in `(cfg, seed)`.
pub fn elastic_arrivals(cfg: &ElasticSimConfig, seed: u64) -> Vec<u64> {
    let mut state = seed ^ 0x4152_5249_5645_5331; // "ARRIVES1"
    let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
    let base_gap = cfg.horizon_us / (2 * cfg.n_requests.max(1) as u64);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(cfg.n_requests);
    for i in 0..cfg.n_requests {
        let phase = (t as f64 / cfg.horizon_us as f64) * std::f64::consts::TAU;
        let diurnal = (1.0 + 0.6 * phase.sin()).max(0.2);
        let jitter = 0.5 + next(1_000) as f64 / 1_000.0;
        let burst = if (i / 3) % 4 == 0 { 0.15 } else { 1.0 };
        t += ((base_gap as f64 * diurnal * jitter * burst) as u64).max(1_000);
        out.push(t);
    }
    out
}

/// Outcome of one elastic simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticRun {
    /// Seed that drew arrivals (and, in sweeps, the churn schedule).
    pub seed: u64,
    /// Invariant violations (empty = run passed).
    pub violations: Vec<String>,
    /// Replans committed through the migration barrier.
    pub commits: u64,
    /// Migrations aborted by device loss mid-barrier.
    pub aborts: u64,
    /// Pending events dropped by flap hysteresis.
    pub suppressed: u64,
    /// Replans refused as typed-infeasible (old plan held).
    pub infeasible: u64,
    /// Requests offered / served / shed (shed only counted when the
    /// fleet ended genuinely unable to hold the model).
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed because the fleet ended infeasible.
    pub shed: usize,
    /// In-flight requests requeued off a dying device.
    pub recovered: usize,
    /// Events in the churn schedule.
    pub churn_events: usize,
}

/// One seed whose run violated an elasticity invariant, with the
/// minimal reproducing churn schedule attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticSweepFailure {
    /// Seed that drew the original schedule.
    pub seed: u64,
    /// Violations reported by the original (unshrunk) run.
    pub violations: Vec<String>,
    /// Minimal schedule that still reproduces a violation.
    pub minimized: ElasticChurnPlan,
    /// `minimized` as replayable JSON (the CI artifact).
    pub minimized_json: String,
}

/// Outcome of an [`elastic_seed_sweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticSweepReport {
    /// First seed swept.
    pub start_seed: u64,
    /// Number of consecutive seeds swept.
    pub n_seeds: u64,
    /// Every violating seed, minimized.
    pub failures: Vec<ElasticSweepFailure>,
    /// Runs that committed at least one replan.
    pub runs_with_commits: u64,
    /// Runs that aborted at least one migration.
    pub runs_with_aborts: u64,
    /// Runs that quarantined at least one flapping device.
    pub runs_with_suppressions: u64,
    /// Runs that raised the infeasible-fleet alarm.
    pub runs_infeasible: u64,
    /// Total in-flight requests recovered off dying devices.
    pub requests_recovered: u64,
}

impl ElasticSweepReport {
    /// Whether the sweep found no invariant violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn initial_plan(cfg: &ElasticSimConfig) -> ExecutionPlan {
    let devices: Vec<usize> = (0..cfg.n_devices).collect();
    let per = cfg.n_layers / devices.len().max(1);
    let rem = cfg.n_layers % devices.len().max(1);
    let mut stages = Vec::new();
    let mut start = 0usize;
    for (i, &d) in devices.iter().enumerate() {
        let take = per + usize::from(i < rem);
        if take == 0 {
            continue;
        }
        stages.push(StagePlan {
            device: d,
            layer_start: start,
            layer_end: start + take,
            bits: vec![Bitwidth::Int8; take],
        });
        start += take;
    }
    ExecutionPlan {
        model: "elastic-sim".into(),
        cluster: "elastic-sim".into(),
        stages,
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn service_time(cfg: &ElasticSimConfig, plan: &ExecutionPlan) -> u64 {
    // Pipeline bottleneck: the slowest stage, with low-rung (degraded)
    // layers costing double.
    let bottleneck = plan
        .stages
        .iter()
        .map(|s| {
            s.bits
                .iter()
                .map(|&b| if b == Bitwidth::Int4 { 2u64 } else { 1 })
                .sum::<u64>()
        })
        .max()
        .unwrap_or(1);
    cfg.base_service_us * bottleneck.max(1)
}

fn plan_fully_live(plan: &ExecutionPlan, live: &BTreeSet<usize>) -> bool {
    plan.stages.iter().all(|s| live.contains(&s.device))
}

fn fleet_feasible(cfg: &ElasticSimConfig, live: &BTreeSet<usize>, degraded: &BTreeSet<usize>) -> bool {
    let cap: usize = live
        .iter()
        .map(|d| {
            if degraded.contains(d) {
                (cfg.max_layers_per_device / 2).max(1)
            } else {
                cfg.max_layers_per_device
            }
        })
        .sum();
    !live.is_empty() && cap >= cfg.n_layers
}

/// Run one seed's elastic scenario under `churn` and return the
/// invariant verdict (see the module docs for the invariant list).
/// Fully deterministic in `(cfg, seed, churn)`.
pub fn run_elastic(cfg: &ElasticSimConfig, seed: u64, churn: &ElasticChurnPlan) -> ElasticRun {
    let mut run = ElasticRun {
        seed,
        violations: Vec::new(),
        commits: 0,
        aborts: 0,
        suppressed: 0,
        infeasible: 0,
        offered: 0,
        served: 0,
        shed: 0,
        recovered: 0,
        churn_events: churn.events.len(),
    };
    let arrivals = elastic_arrivals(cfg, seed);
    let mut controller = FleetController::new(
        Box::new(EvenSplitPlanner {
            n_layers: cfg.n_layers,
            max_layers_per_device: cfg.max_layers_per_device,
        }),
        Box::new(DebouncedPolicy::new(
            cfg.debounce_us,
            cfg.cooldown_us,
            cfg.flap_window_us,
            cfg.flap_max_toggles,
        )),
        0..cfg.n_devices,
        initial_plan(cfg),
    );
    // External mirror of membership (the sim is the "cluster watcher").
    let mut live: BTreeSet<usize> = (0..cfg.n_devices).collect();
    let mut degraded: BTreeSet<usize> = BTreeSet::new();

    let tick_us = (cfg.debounce_us / 2).max(1_000);
    let hard_cap = cfg.horizon_us + cfg.cooldown_us + cfg.flap_window_us + 5_000_000;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_service: Option<(usize, u64)> = None; // (request id, finish time)
    let mut migration_end: Option<u64> = None;
    let mut serve_counts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut ci = 0usize; // churn cursor
    let mut ai = 0usize; // arrival cursor
    let mut next_tick = 0u64;

    let abort_inflight =
        |controller: &mut FleetController, migration_end: &mut Option<u64>, now: u64| {
            if migration_end.is_some() {
                controller.migration_resolved(false, now);
                *migration_end = None;
            }
        };

    loop {
        // Next event: churn, arrival, service completion, barrier end,
        // or controller tick — whichever is earliest.
        let mut t = next_tick;
        if let Some(e) = churn.events.get(ci) {
            t = t.min(e.at_us);
        }
        if let Some(&a) = arrivals.get(ai) {
            t = t.min(a);
        }
        if let Some((_, fin)) = in_service {
            t = t.min(fin);
        }
        if let Some(end) = migration_end {
            t = t.min(end);
        }
        let now = t;
        if now > hard_cap {
            break;
        }

        // 1. Membership churn (before commits at the same instant — a
        //    leave racing the barrier end must win and abort).
        while churn.events.get(ci).is_some_and(|e| e.at_us <= now) {
            let e = churn.events[ci];
            ci += 1;
            match e.kind {
                FleetEventKind::Join => {
                    live.insert(e.device);
                    degraded.remove(&e.device);
                }
                FleetEventKind::Leave => {
                    live.remove(&e.device);
                    degraded.remove(&e.device);
                }
                FleetEventKind::Degrade => {
                    if live.contains(&e.device) {
                        degraded.insert(e.device);
                    }
                }
            }
            // Work in flight on a dying device is recovered, never lost.
            if e.kind == FleetEventKind::Leave {
                let plan_uses = controller.plan().stages.iter().any(|s| s.device == e.device);
                if plan_uses {
                    if let Some((id, _)) = in_service.take() {
                        queue.push_front(id);
                        run.recovered += 1;
                    }
                }
            }
            let cmd =
                controller.on_event(FleetEvent { device: e.device, kind: e.kind, at_us: e.at_us });
            if let Some(ControllerCommand::AbortMigration { .. }) = cmd {
                abort_inflight(&mut controller, &mut migration_end, now);
            }
        }

        // 2. Arrivals.
        while arrivals.get(ai).is_some_and(|&a| a <= now) {
            queue.push_back(ai);
            run.offered += 1;
            ai += 1;
        }

        // 3. Service completion.
        if let Some((id, fin)) = in_service {
            if fin <= now {
                in_service = None;
                let hits = serve_counts.entry(id).or_insert(0);
                *hits += 1;
                if cfg.inject_double_serve && id == 0 {
                    // Dev hook: a buggy retry path re-serves a request
                    // that already completed.
                    *hits += 1;
                }
            }
        }

        // 4. Migration barrier end → commit.
        if migration_end.is_some_and(|end| end <= now) {
            migration_end = None;
            controller.migration_resolved(true, now);
            if !controller.plan_was_live_at_commit()
                || !plan_fully_live(controller.plan(), &live)
            {
                run.violations.push(format!(
                    "committed plan references a dead device at t={now}us (live: {live:?})"
                ));
            }
        }

        // 5. Controller tick.
        if next_tick <= now {
            next_tick = now.saturating_add(tick_us);
            if let Some(ControllerCommand::BeginMigration { .. }) = controller.tick(now) {
                migration_end = Some(now + cfg.migration_us);
            }
        }

        // 6. Dispatch: the old plan keeps serving through the barrier
        //    (that is what live migration buys), but only while every
        //    device it names is still alive.
        if in_service.is_none() && plan_fully_live(controller.plan(), &live) {
            if let Some(id) = queue.pop_front() {
                in_service = Some((id, now + service_time(cfg, controller.plan())));
            }
        }

        let drained = ci >= churn.events.len()
            && ai >= arrivals.len()
            && queue.is_empty()
            && in_service.is_none()
            && migration_end.is_none();
        if drained && now >= cfg.horizon_us && controller.state() == ControllerState::Idle {
            break;
        }
    }

    // --- verdict ---
    let alarms = controller.alarms();
    run.commits = controller.commits();
    run.aborts = alarms.aborted_migrations;
    run.suppressed = alarms.flap_suppressed;
    run.infeasible = alarms.infeasible_fleet;
    run.served = serve_counts.values().filter(|&&c| c >= 1).count();

    for (id, &count) in &serve_counts {
        if count > 1 {
            run.violations.push(format!("request {id} served {count} times"));
        }
    }
    let unserved = run.offered - run.served + usize::from(in_service.is_some());
    let feasible = fleet_feasible(cfg, &live, &degraded);
    if unserved > 0 || !queue.is_empty() || in_service.is_some() {
        if feasible {
            run.violations.push(format!(
                "{} request(s) stranded on a serviceable fleet ({} live device(s), plan live: {})",
                queue.len() + usize::from(in_service.is_some()),
                live.len(),
                plan_fully_live(controller.plan(), &live),
            ));
        } else {
            run.shed = queue.len() + usize::from(in_service.is_some());
        }
    }
    if feasible && !plan_fully_live(controller.plan(), &live) {
        run.violations.push(format!(
            "stuck replan: fleet is feasible ({} live) but the committed plan still names dead \
             devices",
            live.len()
        ));
    }
    let accounted = run.served + run.shed;
    if accounted != run.offered {
        run.violations.push(format!(
            "conservation broken: offered {} != served {} + shed {}",
            run.offered, run.served, run.shed
        ));
    }
    if alarms.planner_errors > 0 {
        run.violations.push(format!("{} unexpected planner error(s)", alarms.planner_errors));
    }
    run
}

/// Greedily remove churn events while the violation reproduces at
/// `seed` — same walk as [`super::shrink_fault_plan`].
pub fn shrink_elastic_plan(
    cfg: &ElasticSimConfig,
    seed: u64,
    plan: &ElasticChurnPlan,
) -> ElasticChurnPlan {
    let fails = |p: &ElasticChurnPlan| !run_elastic(cfg, seed, p).violations.is_empty();
    if !fails(plan) {
        return plan.clone();
    }
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        let mut idx = 0;
        while idx < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(idx);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                idx = 0;
            } else {
                idx += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Sweep `n_seeds` consecutive seeds from `start_seed`, one seeded
/// churn schedule per seed, shrinking every failure. Deterministic.
pub fn elastic_seed_sweep(
    cfg: &ElasticSimConfig,
    start_seed: u64,
    n_seeds: u64,
) -> ElasticSweepReport {
    let mut report = ElasticSweepReport {
        start_seed,
        n_seeds,
        failures: Vec::new(),
        runs_with_commits: 0,
        runs_with_aborts: 0,
        runs_with_suppressions: 0,
        runs_infeasible: 0,
        requests_recovered: 0,
    };
    for seed in start_seed..start_seed.saturating_add(n_seeds) {
        let plan = elastic_churn_plan(cfg, seed);
        let run = run_elastic(cfg, seed, &plan);
        if run.commits > 0 {
            report.runs_with_commits += 1;
        }
        if run.aborts > 0 {
            report.runs_with_aborts += 1;
        }
        if run.suppressed > 0 {
            report.runs_with_suppressions += 1;
        }
        if run.infeasible > 0 {
            report.runs_infeasible += 1;
        }
        report.requests_recovered += run.recovered as u64;
        if !run.violations.is_empty() {
            let minimized = shrink_elastic_plan(cfg, seed, &plan);
            let minimized_json = minimized.to_json();
            report.failures.push(ElasticSweepFailure {
                seed,
                violations: run.violations,
                minimized,
                minimized_json,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_plans_are_deterministic_and_round_trip_json() {
        let cfg = ElasticSimConfig::default();
        for seed in 0..50 {
            let a = elastic_churn_plan(&cfg, seed);
            assert_eq!(a, elastic_churn_plan(&cfg, seed), "seed {seed}");
            let back = ElasticChurnPlan::from_json(&a.to_json()).expect("parse");
            assert_eq!(a, back, "seed {seed}");
            assert_eq!(elastic_arrivals(&cfg, seed), elastic_arrivals(&cfg, seed));
        }
    }

    #[test]
    fn churn_free_run_serves_everything_without_replanning() {
        let cfg = ElasticSimConfig::default();
        let run = run_elastic(&cfg, 7, &ElasticChurnPlan::none());
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.served, cfg.n_requests);
        assert_eq!(run.commits, 0);
        assert_eq!(run.shed, 0);
    }

    #[test]
    fn scripted_join_scales_out_with_one_commit() {
        let cfg = ElasticSimConfig::default();
        let churn = ElasticChurnPlan {
            events: vec![ChurnEvent {
                at_us: 2_000_000,
                device: 4,
                kind: FleetEventKind::Join,
            }],
        };
        let run = run_elastic(&cfg, 11, &churn);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.commits, 1, "one join, one replan");
        assert_eq!(run.served, cfg.n_requests);
    }

    #[test]
    fn scripted_leave_mid_migration_aborts_then_recovers() {
        let cfg = ElasticSimConfig::default();
        // Join at 2 s starts a migration after the 20 ms debounce; the
        // leave lands in the middle of its 30 ms barrier.
        let churn = ElasticChurnPlan {
            events: vec![
                ChurnEvent { at_us: 2_000_000, device: 4, kind: FleetEventKind::Join },
                ChurnEvent {
                    at_us: 2_000_000 + cfg.debounce_us + cfg.migration_us / 2,
                    device: 0,
                    kind: FleetEventKind::Leave,
                },
            ],
        };
        let run = run_elastic(&cfg, 11, &churn);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.aborts >= 1, "leave mid-barrier must abort: {run:?}");
        assert!(run.commits >= 1, "the survivors must still be replanned onto: {run:?}");
        assert_eq!(run.served, cfg.n_requests, "no request lost across the abort");
    }

    #[test]
    fn small_sweep_is_clean_and_exercises_the_elastic_paths() {
        let cfg = ElasticSimConfig::default();
        let report = elastic_seed_sweep(&cfg, 0, 25);
        assert!(report.ok(), "failures: {:#?}", report.failures);
        assert!(report.runs_with_commits > 0, "sweep never committed a replan");
        assert!(report.runs_with_aborts > 0, "sweep never aborted a migration");
        assert!(report.runs_with_suppressions > 0, "sweep never quarantined a flapper");
        assert!(report.runs_infeasible > 0, "sweep never hit the infeasible path");
    }

    #[test]
    fn injected_double_serve_is_caught_and_shrinks() {
        let cfg = ElasticSimConfig { inject_double_serve: true, ..Default::default() };
        let churn = elastic_churn_plan(&cfg, 3);
        let run = run_elastic(&cfg, 3, &churn);
        assert!(
            run.violations.iter().any(|v| v.contains("served 2 times")),
            "double-serve must be flagged: {:?}",
            run.violations
        );
        let minimized = shrink_elastic_plan(&cfg, 3, &churn);
        assert!(
            minimized.events.is_empty(),
            "the injected bug reproduces without any churn, so shrinking must drain the \
             schedule: {minimized:?}"
        );
    }
}
