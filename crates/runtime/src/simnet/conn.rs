//! Simulated connections and the [`Transport`] implementation.
//!
//! A [`SimConn`] is one directed endpoint: a `(link, epoch)` pair bound
//! to the actor that drives it. A [`SimTransport`] wraps an inbound and
//! an outbound `SimConn` (plus an optional control connection for
//! heartbeats) and implements the same [`Transport`] trait the TCP and
//! in-process transports do — so [`crate::engine::drive_generation`]
//! and [`crate::worker::run_worker_transport`] run **unchanged** inside
//! the simulation. Timeouts are virtual, frames are real encoded bytes,
//! and dropping the transport closes its outbound epoch, which is what
//! cascades EOF through the pipeline exactly like dropping a socket.

use super::sched::{RecvEnd, SimNet};
use crate::clock::Clock;
use crate::net::transport::{Transport, TransportRecvError, TransportSendError};
use crate::net::wire::{wire_to_worker_msg, worker_msg_to_wire, WireMsg};
use crate::worker::WorkerMsg;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One directed simulated connection endpoint.
#[derive(Debug, Clone)]
pub(crate) struct SimConn {
    pub(crate) net: Arc<SimNet>,
    /// Actor that blocks on this endpoint's operations.
    pub(crate) me: usize,
    /// Stage whose crash kills this endpoint (`None` for the master and
    /// pure-testbed endpoints).
    pub(crate) owner_stage: Option<usize>,
    pub(crate) link: usize,
    pub(crate) epoch: u64,
}

impl SimConn {
    pub(crate) fn send(&self, msg: &WireMsg) -> Result<(), ()> {
        self.net.send_frame(self.owner_stage, self.link, self.epoch, msg)
    }

    pub(crate) fn recv(&self, timeout: Duration) -> Result<WireMsg, RecvEnd> {
        self.net.recv_frame(self.me, self.owner_stage, self.link, self.epoch, dur_us(timeout))
    }

    pub(crate) fn close(&self) {
        self.net.close_epoch(self.link, self.epoch);
    }
}

/// The virtual time source of one simulated actor — or, with no actor
/// bound, a read-only observer clock for shared components (heartbeat
/// board, telemetry) that only ever *read* time.
pub struct VirtualClock {
    net: Arc<SimNet>,
    me: Option<usize>,
}

impl VirtualClock {
    pub(crate) fn actor(net: Arc<SimNet>, me: usize) -> Self {
        Self { net, me: Some(me) }
    }

    pub(crate) fn observer(net: Arc<SimNet>) -> Self {
        Self { net, me: None }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock").field("actor", &self.me).finish()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.net.now_us())
    }

    fn sleep(&self, d: Duration) {
        // Observer clocks never sleep: shared boards only read time.
        if let Some(me) = self.me {
            self.net.sleep(me, dur_us(d));
        }
    }
}

/// Virtual heartbeat pacing mirroring the TCP transport's control beat.
const SIM_BEAT_INTERVAL_US: u64 = 20_000;

/// A simulated [`Transport`]: inbound + outbound epoch-scoped
/// connections and an optional control connection for heartbeats.
#[derive(Debug)]
pub(crate) struct SimTransport {
    rx: SimConn,
    tx: SimConn,
    /// `(connection, stage id)` of the heartbeat path, if any.
    control: Option<(SimConn, u32)>,
    /// Virtual µs of the last control heartbeat (rate limiting).
    last_beat_us: AtomicU64,
}

impl SimTransport {
    pub(crate) fn new(rx: SimConn, tx: SimConn) -> Self {
        Self { rx, tx, control: None, last_beat_us: AtomicU64::new(0) }
    }

    pub(crate) fn with_control(rx: SimConn, tx: SimConn, control: SimConn, stage: u32) -> Self {
        let now = rx.net.now_us();
        Self { rx, tx, control: Some((control, stage)), last_beat_us: AtomicU64::new(now) }
    }
}

pub(crate) fn to_wire(msg: WorkerMsg) -> WireMsg {
    worker_msg_to_wire(msg)
}

impl Transport for SimTransport {
    fn recv_msg(&self, timeout: Duration) -> Result<WorkerMsg, TransportRecvError> {
        match self.rx.recv(timeout).map(wire_to_worker_msg) {
            Ok(Some(m)) => Ok(m),
            // A non-data message on a data connection is a protocol
            // breach; treat the stream as dead, like the TCP pump does.
            Ok(None) => Err(TransportRecvError::Disconnected),
            Err(RecvEnd::Timeout) => Err(TransportRecvError::Timeout),
            Err(RecvEnd::Disconnected) => Err(TransportRecvError::Disconnected),
        }
    }

    fn send_msg(&self, msg: WorkerMsg, _timeout: Duration) -> Result<(), TransportSendError> {
        // Simulated sends never block (infinite wire buffer), matching
        // the TCP transport's direct stream write.
        self.tx.send(&to_wire(msg)).map_err(|()| TransportSendError::Disconnected)
    }

    fn beat(&self) {
        let Some((conn, stage)) = &self.control else { return };
        let now = self.rx.net.now_us();
        let last = self.last_beat_us.load(Ordering::Relaxed);
        if now.saturating_sub(last) < SIM_BEAT_INTERVAL_US {
            return;
        }
        self.last_beat_us.store(now, Ordering::Relaxed);
        let _ = conn.send(&WireMsg::Heartbeat { stage: *stage });
    }
}

impl Drop for SimTransport {
    fn drop(&mut self) {
        // Dropping the transport = dropping the socket: outbound EOF.
        self.tx.close();
    }
}
