//! Seed sweeps and counterexample shrinking.
//!
//! [`seed_sweep`] runs the full pipeline simulation over a block of
//! seeds, each seed drawing a random [`SimFaultPlan`]. Any invariant
//! violation is *shrunk*: [`shrink_fault_plan`] greedily deletes fault
//! events one at a time, keeping every deletion that still reproduces a
//! violation, until no single event can be removed — a minimal
//! counterexample, serialized as replayable JSON.

use super::plan::SimFaultPlan;
use super::{run_sim, SimConfig};
use serde::{Deserialize, Serialize};

/// Greedily minimize a violating `plan`: repeatedly try removing each
/// event; keep removals under which `run_sim` still reports a
/// violation; stop at a fixpoint. If `plan` does not actually violate,
/// it is returned unchanged.
pub fn shrink_fault_plan(cfg: &SimConfig, plan: &SimFaultPlan) -> SimFaultPlan {
    let fails = |p: &SimFaultPlan| !run_sim(cfg, p).violations.is_empty();
    if !fails(plan) {
        return plan.clone();
    }
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        let mut idx = 0;
        while idx < current.event_count() {
            let candidate = current.without(idx);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Indices shifted; restart the scan from the front so
                // the walk stays deterministic.
                idx = 0;
            } else {
                idx += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// One seed whose schedule violated an invariant, with the minimized
/// reproducing schedule attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepFailure {
    /// Seed that drew the original schedule.
    pub seed: u64,
    /// Violations reported by the original (unshrunk) run.
    pub violations: Vec<String>,
    /// Minimal schedule that still reproduces a violation.
    pub minimized: SimFaultPlan,
    /// `minimized` as replayable JSON (what CI uploads as an artifact).
    pub minimized_json: String,
}

/// Outcome of a [`seed_sweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// First seed swept.
    pub start_seed: u64,
    /// Number of consecutive seeds swept.
    pub n_seeds: u64,
    /// Every violating seed, minimized.
    pub failures: Vec<SweepFailure>,
    /// How many schedules contained at least one fault event.
    pub runs_with_faults: u64,
    /// How many runs recovered through at least one restart.
    pub runs_with_restarts: u64,
    /// How many runs legitimately failed over (exhausted restarts under
    /// an unsurvivable schedule) — allowed, not a violation.
    pub runs_failed_over: u64,
    /// Migration sweeps only: runs whose plan swap committed.
    #[serde(default)]
    pub runs_committed: u64,
    /// Migration sweeps only: runs whose plan swap aborted back to the
    /// old plan (a legal outcome under faults).
    #[serde(default)]
    pub runs_aborted: u64,
}

impl SweepReport {
    /// Whether the sweep found no invariant violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `n_seeds` consecutive seeds starting at `start_seed`, one random
/// fault schedule per seed, shrinking every failure. Deterministic:
/// the same `(cfg, start_seed, n_seeds)` yields the same report. When
/// `cfg.migration` is set, schedules are drawn with
/// [`SimFaultPlan::random_migration`] so faults concentrate inside the
/// prepare/commit window.
pub fn seed_sweep(cfg: &SimConfig, start_seed: u64, n_seeds: u64) -> SweepReport {
    let mut report = SweepReport {
        start_seed,
        n_seeds,
        failures: Vec::new(),
        runs_with_faults: 0,
        runs_with_restarts: 0,
        runs_failed_over: 0,
        runs_committed: 0,
        runs_aborted: 0,
    };
    for seed in start_seed..start_seed.saturating_add(n_seeds) {
        let plan = if cfg.migration.is_some() {
            SimFaultPlan::random_migration(seed, cfg.n_stages)
        } else {
            SimFaultPlan::random(seed, cfg.n_stages)
        };
        if !plan.is_empty() {
            report.runs_with_faults += 1;
        }
        let run = run_sim(cfg, &plan);
        if run.restarts > 0 {
            report.runs_with_restarts += 1;
        }
        if run.error.is_some() {
            report.runs_failed_over += 1;
        }
        if run.swaps.iter().any(|s| s.committed) {
            report.runs_committed += 1;
        } else if !run.swaps.is_empty() {
            report.runs_aborted += 1;
        }
        if !run.violations.is_empty() {
            let minimized = shrink_fault_plan(cfg, &plan);
            let minimized_json = minimized.to_json();
            report.failures.push(SweepFailure {
                seed,
                violations: run.violations,
                minimized,
                minimized_json,
            });
        }
    }
    report
}
