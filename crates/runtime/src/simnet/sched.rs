//! The deterministic cooperative scheduler underneath [`crate::simnet`].
//!
//! FoundationDB-style simulation on plain OS threads: every simulated
//! actor runs on its own thread, but a single *baton* (one
//! `Mutex<SimState>` + one `Condvar`) guarantees that **exactly one**
//! actor executes at any moment. An actor runs until it blocks — on a
//! virtual sleep, a frame receive, or a crash wait — at which point the
//! scheduler hands the baton to the lowest-numbered runnable actor.
//! Virtual time advances **only when no actor is runnable**, jumping to
//! the earliest pending wake-up. With actor ids, link contents and
//! wake-ups all ordered deterministically, the interleaving (and thus
//! the event trace) is a pure function of the initial state and the
//! fault plan: OS thread scheduling cannot influence it.
//!
//! Links model TCP streams: frames carry *real* wire bytes
//! ([`crate::net::frame::encode_frame`] over
//! [`crate::net::wire::WireMsg`]), delivery is FIFO per link (a delayed
//! frame delays everything behind it — the stream clamp), and fault
//! events fire on send ordinals. A `Reorder` fault exempts one frame
//! from the FIFO clamp; real TCP cannot do that, so protocol-level
//! schedules never draw it, but the wire-level testbed
//! ([`crate::simnet::wire_exchange`]) uses it to stress the codec
//! invariants. Connections are modeled as *epochs* (attempt numbers) on
//! a link: a receiver at epoch `e` rejects frames from epochs `< e` —
//! the stale-attempt redial protection of
//! [`crate::net::dist`] — and sees `Disconnected` once the
//! epoch is closed and drained, which is EOF.

use super::plan::SimFaultKind;
use crate::net::frame::{encode_frame, read_frame};
use crate::net::wire::WireMsg;
use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel timestamp for "never" (permanent crash or partition).
pub(crate) const NEVER_US: u64 = u64::MAX;

/// Lifecycle of one simulated actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActorPhase {
    /// Registered; becomes runnable when the simulation starts.
    Ready,
    /// Eligible for the baton.
    Runnable,
    /// Holds the baton.
    Running,
    /// Waiting for virtual time `wake_at` (senders may pull the wake-up
    /// earlier when a frame arrives for this actor).
    Blocked {
        /// Virtual µs at which the actor becomes runnable again.
        wake_at: u64,
    },
    /// Exited; never scheduled again.
    Done,
}

#[derive(Debug)]
struct ActorState {
    name: String,
    phase: ActorPhase,
}

/// A frame in flight on a link.
#[derive(Debug, Clone)]
struct QueuedFrame {
    /// Virtual µs at which the receiver may take the frame.
    deliver_at: u64,
    /// Global enqueue ordinal — the deterministic tie-break.
    seq: u64,
    /// Connection epoch (attempt number) the frame belongs to.
    epoch: u64,
    /// Real encoded wire bytes (header + CRC + payload).
    bytes: Vec<u8>,
}

#[derive(Debug)]
struct LinkState {
    name: String,
    latency_us: u64,
    queue: Vec<QueuedFrame>,
    /// Epochs whose connection is closed (EOF once drained).
    closed: BTreeSet<u64>,
    /// Actor to nudge when a frame (or EOF) arrives.
    receiver: Option<usize>,
    /// Frames sent so far — fault events fire on this ordinal.
    tx_ordinal: u64,
    /// `(after_frames, kind, fired)` one-shot fault events.
    events: Vec<(u64, SimFaultKind, bool)>,
    /// Frames sent before this virtual time deliver no earlier than it
    /// ([`NEVER_US`] = permanent partition).
    partitioned_until: Option<u64>,
    /// FIFO stream clamp: no frame delivers before its predecessor.
    fifo_floor: u64,
}

/// Everything mutable in the simulated world, under the one lock.
#[derive(Debug)]
pub(crate) struct SimState {
    now_us: u64,
    horizon_us: u64,
    /// The actor currently holding the baton.
    current: Option<usize>,
    actors: Vec<ActorState>,
    links: Vec<LinkState>,
    /// Per stage: virtual time its crash ends ([`NEVER_US`] = never).
    crashed_until: Vec<Option<u64>>,
    run_over: bool,
    poisoned: bool,
    trace: Vec<String>,
    violations: Vec<String>,
    stale_drops: u64,
    corrupt_detected: u64,
    seq: u64,
}

/// Receive outcomes below the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvEnd {
    /// Nothing arrived within the timeout; the connection is still up.
    Timeout,
    /// EOF (epoch closed and drained), corrupt stream, or crashed owner.
    Disconnected,
}

/// Why an epoch wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AwaitEpoch {
    /// A frame for this epoch is queued; serve it.
    Serve(u64),
    /// The owning stage crashed; wait out the crash.
    Crashed,
    /// The run is over (or the world is poisoned); exit.
    Over,
}

/// Why a crash wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CrashEnd {
    /// The crash window passed; the stage restarts.
    Restarted,
    /// The crash is permanent; the stage exits.
    Permanent,
    /// The run ended while the stage was down.
    Over,
}

/// The simulated world: scheduler + links + trace. Shared by `Arc`.
#[derive(Debug)]
pub(crate) struct SimNet {
    m: Mutex<SimState>,
    cv: Condvar,
}

/// Pick the next actor, advancing virtual time if nobody is runnable.
/// Virtual time moves **only** inside this function and only on the
/// no-runnable-actor path — the no-deadlock invariant holds by
/// construction and is re-checked by the `debug_assert` below.
fn schedule(st: &mut SimState) {
    if st.current.is_some() {
        return;
    }
    loop {
        if let Some(i) = st.actors.iter().position(|a| a.phase == ActorPhase::Runnable) {
            st.current = Some(i);
            return;
        }
        let min_wake = st
            .actors
            .iter()
            .filter_map(|a| match a.phase {
                ActorPhase::Blocked { wake_at } => Some(wake_at),
                _ => None,
            })
            .min();
        let Some(w) = min_wake else {
            return; // every actor Done (or not yet started): nothing to run
        };
        debug_assert!(
            st.actors.iter().all(|a| a.phase != ActorPhase::Runnable),
            "virtual time must not advance with runnable work pending"
        );
        if w > st.horizon_us && !st.poisoned {
            let blocked: Vec<&str> = st
                .actors
                .iter()
                .filter(|a| matches!(a.phase, ActorPhase::Blocked { .. }))
                .map(|a| a.name.as_str())
                .collect();
            st.violations.push(format!(
                "deadlock/livelock: no actor runnable and the next wake-up ({w}µs) lies past \
                 the {}µs horizon (blocked: {})",
                st.horizon_us,
                blocked.join(", ")
            ));
            st.poisoned = true;
            // Wake everyone so the world can unwind: transports return
            // Disconnected and sleeps return immediately once poisoned.
            for a in st.actors.iter_mut() {
                if matches!(a.phase, ActorPhase::Blocked { .. }) {
                    a.phase = ActorPhase::Runnable;
                }
            }
            continue;
        }
        if w > st.now_us {
            st.now_us = w;
        }
        for a in st.actors.iter_mut() {
            if let ActorPhase::Blocked { wake_at } = a.phase {
                if wake_at <= st.now_us {
                    a.phase = ActorPhase::Runnable;
                }
            }
        }
    }
}

fn push_trace(st: &mut SimState, msg: &str) {
    let line = format!("[{:>9}µs] {msg}", st.now_us);
    st.trace.push(line);
}

/// Pull a blocked receiver's wake-up forward to `at` (clamped to now) so
/// it notices a newly deliverable frame, an EOF, or a crash.
fn nudge(st: &mut SimState, actor: usize, at: u64) {
    let t = at.max(st.now_us);
    if let ActorPhase::Blocked { wake_at } = st.actors[actor].phase {
        if t < wake_at {
            st.actors[actor].phase = ActorPhase::Blocked { wake_at: t };
        }
    }
}

fn nudge_receiver(st: &mut SimState, link: usize, at: u64) {
    if let Some(r) = st.links[link].receiver {
        nudge(st, r, at);
    }
}

fn is_crashed(st: &SimState, stage: usize) -> bool {
    match st.crashed_until.get(stage).copied().flatten() {
        Some(t) => t == NEVER_US || st.now_us < t,
        None => false,
    }
}

impl SimNet {
    pub(crate) fn new(horizon_us: u64, n_stage_slots: usize) -> Self {
        Self {
            m: Mutex::new(SimState {
                now_us: 0,
                horizon_us,
                current: None,
                actors: Vec::new(),
                links: Vec::new(),
                crashed_until: vec![None; n_stage_slots],
                run_over: false,
                poisoned: false,
                trace: Vec::new(),
                violations: Vec::new(),
                stale_drops: 0,
                corrupt_detected: 0,
                seq: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn st(&self) -> MutexGuard<'_, SimState> {
        // A panicking actor thread poisons the mutex; the state itself
        // stays consistent (every mutation completes under the lock), so
        // recover it rather than cascading the panic.
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Park `me` until virtual time `wake_at`, handing the baton over.
    /// Returns with the baton re-acquired.
    fn block<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        me: usize,
        wake_at: u64,
    ) -> MutexGuard<'a, SimState> {
        let wake_at = wake_at.max(st.now_us);
        st.actors[me].phase = ActorPhase::Blocked { wake_at };
        if st.current == Some(me) {
            st.current = None;
        }
        schedule(&mut st);
        self.cv.notify_all();
        while st.current != Some(me) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.actors[me].phase = ActorPhase::Running;
        st
    }

    // --- registration (before `start`) ----------------------------------

    pub(crate) fn add_actor(&self, name: impl Into<String>) -> usize {
        let mut st = self.st();
        st.actors.push(ActorState { name: name.into(), phase: ActorPhase::Ready });
        st.actors.len() - 1
    }

    pub(crate) fn add_link(
        &self,
        name: impl Into<String>,
        latency_us: u64,
        events: Vec<(u64, SimFaultKind)>,
    ) -> usize {
        let mut st = self.st();
        st.links.push(LinkState {
            name: name.into(),
            latency_us,
            queue: Vec::new(),
            closed: BTreeSet::new(),
            receiver: None,
            tx_ordinal: 0,
            events: events.into_iter().map(|(a, k)| (a, k, false)).collect(),
            partitioned_until: None,
            fifo_floor: 0,
        });
        st.links.len() - 1
    }

    pub(crate) fn set_receiver(&self, link: usize, actor: usize) {
        self.st().links[link].receiver = Some(actor);
    }

    /// Release every registered actor and hand out the first baton.
    pub(crate) fn start(&self) {
        let mut st = self.st();
        for a in st.actors.iter_mut() {
            if a.phase == ActorPhase::Ready {
                a.phase = ActorPhase::Runnable;
            }
        }
        schedule(&mut st);
        self.cv.notify_all();
    }

    /// First call of every actor thread: wait for the baton.
    pub(crate) fn enter(&self, me: usize) {
        let mut st = self.st();
        while st.current != Some(me) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.actors[me].phase = ActorPhase::Running;
    }

    /// Final call of every actor thread (via [`ActorGuard`]): retire and
    /// pass the baton on.
    pub(crate) fn exit(&self, me: usize) {
        let mut st = self.st();
        st.actors[me].phase = ActorPhase::Done;
        if st.current == Some(me) {
            st.current = None;
        }
        schedule(&mut st);
        self.cv.notify_all();
    }

    // --- time ------------------------------------------------------------

    pub(crate) fn now_us(&self) -> u64 {
        self.st().now_us
    }

    pub(crate) fn sleep(&self, me: usize, d_us: u64) {
        let st = self.st();
        if st.poisoned {
            return; // unwinding: sleeps collapse so actors exit fast
        }
        let wake = st.now_us.saturating_add(d_us);
        drop(self.block(st, me, wake));
    }

    // --- trace / flags ----------------------------------------------------

    pub(crate) fn trace(&self, msg: &str) {
        push_trace(&mut self.st(), msg);
    }

    pub(crate) fn set_run_over(&self) {
        let mut st = self.st();
        st.run_over = true;
        // Wake everyone promptly; blocked actors observe the flag.
        let now = st.now_us;
        for i in 0..st.actors.len() {
            nudge(&mut st, i, now);
        }
        self.cv.notify_all();
    }

    pub(crate) fn poisoned(&self) -> bool {
        self.st().poisoned
    }

    pub(crate) fn run_over(&self) -> bool {
        let st = self.st();
        st.run_over || st.poisoned
    }

    // --- frames -----------------------------------------------------------

    /// Send one message on `link` within `epoch`. Sends never block
    /// (infinite wire buffer, like a TCP send buffer in the regime the
    /// runtime uses); returns `Err(())` when the epoch is closed, the
    /// owning stage is crashed, or the world is poisoned.
    pub(crate) fn send_frame(
        &self,
        owner_stage: Option<usize>,
        link: usize,
        epoch: u64,
        msg: &WireMsg,
    ) -> Result<(), ()> {
        let payload = encode_frame(&msg.encode());
        let mut st = self.st();
        if st.poisoned {
            return Err(());
        }
        if let Some(s) = owner_stage {
            if is_crashed(&st, s) {
                return Err(());
            }
        }
        if st.links[link].closed.contains(&epoch) {
            return Err(());
        }
        let ord = st.links[link].tx_ordinal;
        st.links[link].tx_ordinal += 1;
        let fired = {
            let l = &mut st.links[link];
            l.events.iter_mut().find(|(after, _, done)| !*done && *after == ord).map(|e| {
                e.2 = true;
                e.1.clone()
            })
        };
        let mut extra_us = 0u64;
        let mut copies = 1usize;
        let mut corrupt = false;
        let mut fifo = true;
        if let Some(kind) = fired {
            let lname = st.links[link].name.clone();
            match kind {
                SimFaultKind::Delay { us } => {
                    extra_us = us;
                    push_trace(&mut st, &format!("fault: +{us}µs delay on {lname} (frame {ord})"));
                }
                SimFaultKind::Drop => {
                    push_trace(&mut st, &format!("fault: frame {ord} dropped on {lname}"));
                    return Ok(()); // silently lost, like a cut mid-stream
                }
                SimFaultKind::Duplicate => {
                    copies = 2;
                    push_trace(&mut st, &format!("fault: frame {ord} duplicated on {lname}"));
                }
                SimFaultKind::Corrupt => {
                    corrupt = true;
                    push_trace(&mut st, &format!("fault: frame {ord} corrupted on {lname}"));
                }
                SimFaultKind::Reorder { us } => {
                    extra_us = us;
                    fifo = false;
                    push_trace(&mut st, &format!("fault: frame {ord} reordered on {lname}"));
                }
                SimFaultKind::Disconnect => {
                    st.links[link].closed.insert(epoch);
                    push_trace(&mut st, &format!("fault: {lname} cut (epoch {epoch})"));
                    let now = st.now_us;
                    nudge_receiver(&mut st, link, now);
                    return Err(());
                }
            }
        }
        let mut bytes = payload;
        if corrupt {
            // Flip one payload bit; the real CRC in the frame header
            // makes the receiver detect this, not the simulator.
            let n = bytes.len();
            bytes[n - 1] ^= 0x01;
        }
        let now = st.now_us;
        let seq0 = st.seq;
        st.seq += copies as u64;
        let at = {
            let l = &mut st.links[link];
            let mut at = now.saturating_add(l.latency_us).saturating_add(extra_us);
            if let Some(p) = l.partitioned_until {
                if now < p {
                    at = at.max(p.saturating_add(l.latency_us));
                }
            }
            if fifo {
                // TCP stream semantics: nothing overtakes its predecessor.
                at = at.max(l.fifo_floor);
                l.fifo_floor = at;
            }
            at
        };
        for c in 0..copies {
            let frame =
                QueuedFrame { deliver_at: at, seq: seq0 + c as u64, epoch, bytes: bytes.clone() };
            st.links[link].queue.push(frame);
        }
        nudge_receiver(&mut st, link, at);
        Ok(())
    }

    /// Receive the next frame of `epoch` on `link`, blocking up to
    /// `timeout_us` of virtual time. Stale frames (older epochs) are
    /// rejected on sight; corrupt frames surface through the *real*
    /// frame CRC and poison the epoch.
    pub(crate) fn recv_frame(
        &self,
        me: usize,
        owner_stage: Option<usize>,
        link: usize,
        epoch: u64,
        timeout_us: u64,
    ) -> Result<WireMsg, RecvEnd> {
        let mut st = self.st();
        let deadline = st.now_us.saturating_add(timeout_us);
        loop {
            if st.poisoned {
                return Err(RecvEnd::Disconnected);
            }
            if let Some(s) = owner_stage {
                if is_crashed(&st, s) {
                    return Err(RecvEnd::Disconnected);
                }
            }
            // Stale-attempt protection: frames from older epochs are
            // rejected, mirroring the attempt-number check in `dist`.
            let stale = {
                let l = &mut st.links[link];
                let before = l.queue.len();
                l.queue.retain(|f| f.epoch >= epoch);
                (before - l.queue.len()) as u64
            };
            if stale > 0 {
                st.stale_drops += stale;
                let lname = st.links[link].name.clone();
                push_trace(
                    &mut st,
                    &format!("stale: {stale} frame(s) from older attempts rejected on {lname}"),
                );
            }
            let now = st.now_us;
            let best = st.links[link]
                .queue
                .iter()
                .enumerate()
                .filter(|(_, f)| f.epoch == epoch && f.deliver_at <= now)
                .min_by_key(|(_, f)| (f.deliver_at, f.seq))
                .map(|(i, _)| i);
            if let Some(i) = best {
                let frame = st.links[link].queue.remove(i);
                let decoded = read_frame(&mut frame.bytes.as_slice())
                    .map_err(|e| e.to_string())
                    .and_then(|p| WireMsg::decode(&p).map_err(|e| e.to_string()));
                match decoded {
                    Ok(m) => return Ok(m),
                    Err(e) => {
                        st.corrupt_detected += 1;
                        let lname = st.links[link].name.clone();
                        push_trace(
                            &mut st,
                            &format!("corrupt frame on {lname} ({e}); connection poisoned"),
                        );
                        st.links[link].closed.insert(epoch);
                        return Err(RecvEnd::Disconnected);
                    }
                }
            }
            // Nothing deliverable now. Frames stranded behind a permanent
            // partition never deliver; they do not hold off EOF.
            let pending_min = st.links[link]
                .queue
                .iter()
                .filter(|f| f.epoch == epoch && f.deliver_at < NEVER_US)
                .map(|f| f.deliver_at)
                .min();
            if pending_min.is_none() && st.links[link].closed.contains(&epoch) {
                return Err(RecvEnd::Disconnected);
            }
            if now >= deadline {
                return Err(RecvEnd::Timeout);
            }
            let wake = pending_min.map_or(deadline, |p| p.min(deadline));
            st = self.block(st, me, wake);
        }
    }

    /// Close `epoch` on `link` (graceful EOF once drained). Idempotent.
    pub(crate) fn close_epoch(&self, link: usize, epoch: u64) {
        let mut st = self.st();
        if st.links[link].closed.insert(epoch) {
            let now = st.now_us;
            nudge_receiver(&mut st, link, now);
            self.cv.notify_all();
        }
    }

    /// Wait until a frame for an epoch `>= min_epoch` shows up on
    /// `link` — a stage actor waiting for the master's next attempt.
    /// Returns the *newest* waiting epoch, skipping attempts that died
    /// before reaching this stage.
    pub(crate) fn await_epoch(
        &self,
        me: usize,
        stage: usize,
        link: usize,
        min_epoch: u64,
        tick_us: u64,
    ) -> AwaitEpoch {
        let mut st = self.st();
        loop {
            if st.poisoned {
                return AwaitEpoch::Over;
            }
            if is_crashed(&st, stage) {
                return AwaitEpoch::Crashed;
            }
            let stale = {
                let l = &mut st.links[link];
                let before = l.queue.len();
                l.queue.retain(|f| f.epoch >= min_epoch);
                (before - l.queue.len()) as u64
            };
            if stale > 0 {
                st.stale_drops += stale;
                let lname = st.links[link].name.clone();
                push_trace(
                    &mut st,
                    &format!("stale: {stale} frame(s) from older attempts rejected on {lname}"),
                );
            }
            if let Some(e) =
                st.links[link].queue.iter().filter(|f| f.epoch >= min_epoch).map(|f| f.epoch).max()
            {
                return AwaitEpoch::Serve(e);
            }
            if st.run_over {
                return AwaitEpoch::Over;
            }
            let wake = st.now_us.saturating_add(tick_us);
            st = self.block(st, me, wake);
        }
    }

    /// Wait out a crash window for `stage` (actor `me`).
    pub(crate) fn crash_wait(&self, me: usize, stage: usize) -> CrashEnd {
        let mut st = self.st();
        loop {
            if st.poisoned || st.run_over {
                return CrashEnd::Over;
            }
            match st.crashed_until[stage] {
                None => return CrashEnd::Restarted,
                Some(NEVER_US) => return CrashEnd::Permanent,
                Some(t) if st.now_us >= t => {
                    st.crashed_until[stage] = None;
                    return CrashEnd::Restarted;
                }
                Some(t) => st = self.block(st, me, t),
            }
        }
    }

    // --- chaos ------------------------------------------------------------

    /// Partition `link` until `until` ([`NEVER_US`] = never heals).
    /// Frames sent while partitioned deliver no earlier than the heal.
    pub(crate) fn apply_partition(&self, link: usize, until: u64) {
        let mut st = self.st();
        if link >= st.links.len() {
            push_trace(&mut st, &format!("chaos: partition targets unknown link {link}; skipped"));
            return;
        }
        st.links[link].partitioned_until = Some(until);
        let lname = st.links[link].name.clone();
        let tail = if until == NEVER_US {
            "never heals".to_string()
        } else {
            format!("heals at {until}µs")
        };
        push_trace(&mut st, &format!("chaos: {lname} partitioned ({tail})"));
    }

    /// Crash `stage` (hosted by `actor`) until `restart_at`
    /// ([`NEVER_US`] = forever). In-flight transport calls of the stage
    /// observe `Disconnected`.
    pub(crate) fn apply_crash(&self, stage: usize, actor: usize, restart_at: u64) {
        let mut st = self.st();
        if stage >= st.crashed_until.len() {
            push_trace(&mut st, &format!("chaos: crash targets unknown stage {stage}; skipped"));
            return;
        }
        st.crashed_until[stage] = Some(restart_at);
        let tail = if restart_at == NEVER_US {
            "permanently".to_string()
        } else {
            format!("until {restart_at}µs")
        };
        push_trace(&mut st, &format!("chaos: stage {stage} crashed {tail}"));
        let now = st.now_us;
        nudge(&mut st, actor, now);
    }

    // --- post-mortem ------------------------------------------------------

    /// Snapshot trace/violations/counters after every actor exited.
    pub(crate) fn finish(&self) -> SimOutcome {
        let st = self.st();
        SimOutcome {
            trace: st.trace.clone(),
            violations: st.violations.clone(),
            stale_drops: st.stale_drops,
            corrupt_detected: st.corrupt_detected,
            final_now_us: st.now_us,
        }
    }
}

/// What the scheduler knows at the end of a run.
#[derive(Debug, Clone)]
pub(crate) struct SimOutcome {
    pub trace: Vec<String>,
    pub violations: Vec<String>,
    pub stale_drops: u64,
    pub corrupt_detected: u64,
    pub final_now_us: u64,
}

/// RAII actor retirement: marks the actor `Done` and reschedules even if
/// the actor body panics, so one failing actor cannot wedge the world.
pub(crate) struct ActorGuard<'a> {
    net: &'a SimNet,
    me: usize,
}

impl<'a> ActorGuard<'a> {
    /// Call [`SimNet::enter`] first; the guard only handles the exit.
    pub(crate) fn new(net: &'a SimNet, me: usize) -> Self {
        Self { net, me }
    }
}

impl Drop for ActorGuard<'_> {
    fn drop(&mut self) {
        self.net.exit(self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn virtual_time_advances_only_when_all_blocked() {
        let net = Arc::new(SimNet::new(10_000_000, 0));
        let a = net.add_actor("a");
        let b = net.add_actor("b");
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let (net_a, ord_a) = (net.clone(), order.clone());
            s.spawn(move || {
                net_a.enter(a);
                let _g = ActorGuard::new(&net_a, a);
                ord_a.lock().unwrap().push(("a0", net_a.now_us()));
                net_a.sleep(a, 500);
                ord_a.lock().unwrap().push(("a1", net_a.now_us()));
            });
            let (net_b, ord_b) = (net.clone(), order.clone());
            s.spawn(move || {
                net_b.enter(b);
                let _g = ActorGuard::new(&net_b, b);
                ord_b.lock().unwrap().push(("b0", net_b.now_us()));
                net_b.sleep(b, 200);
                ord_b.lock().unwrap().push(("b1", net_b.now_us()));
            });
            net.start();
        });
        let got = order.lock().unwrap().clone();
        // Lowest id first at t=0, then wake-ups in virtual-time order.
        assert_eq!(got, vec![("a0", 0), ("b0", 0), ("b1", 200), ("a1", 500)]);
    }

    #[test]
    fn frames_deliver_in_fifo_order_with_latency() {
        let net = Arc::new(SimNet::new(10_000_000, 0));
        let tx = net.add_actor("tx");
        let rx = net.add_actor("rx");
        let link = net.add_link("l", 50, vec![(0, SimFaultKind::Delay { us: 1_000 })]);
        net.set_receiver(link, rx);
        let got = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let net_t = net.clone();
            s.spawn(move || {
                net_t.enter(tx);
                let _g = ActorGuard::new(&net_t, tx);
                // First frame delayed 1ms; second must NOT overtake it.
                net_t.send_frame(None, link, 0, &WireMsg::Heartbeat { stage: 1 }).unwrap();
                net_t.send_frame(None, link, 0, &WireMsg::Heartbeat { stage: 2 }).unwrap();
                net_t.close_epoch(link, 0);
            });
            let (net_r, got_r) = (net.clone(), got.clone());
            s.spawn(move || {
                net_r.enter(rx);
                let _g = ActorGuard::new(&net_r, rx);
                while let Ok(m) = net_r.recv_frame(rx, None, link, 0, 5_000_000) {
                    if let WireMsg::Heartbeat { stage } = m {
                        got_r.lock().unwrap().push((stage, net_r.now_us()));
                    }
                }
            });
            net.start();
        });
        let got = got.lock().unwrap().clone();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].0, got[1].0), (1, 2), "stream order preserved");
        assert!(got[0].1 >= 1_050, "delay applied: {got:?}");
        assert_eq!(got[0].1, got[1].1, "second frame queued behind the first");
    }

    #[test]
    fn stale_epoch_frames_are_rejected() {
        let net = Arc::new(SimNet::new(10_000_000, 0));
        let tx = net.add_actor("tx");
        let rx = net.add_actor("rx");
        let link = net.add_link("l", 10, Vec::new());
        net.set_receiver(link, rx);
        let end = Arc::new(Mutex::new(None));
        std::thread::scope(|s| {
            let net_t = net.clone();
            s.spawn(move || {
                net_t.enter(tx);
                let _g = ActorGuard::new(&net_t, tx);
                net_t.send_frame(None, link, 0, &WireMsg::Shutdown).unwrap();
                net_t.close_epoch(link, 1);
            });
            let (net_r, end_r) = (net.clone(), end.clone());
            s.spawn(move || {
                net_r.enter(rx);
                let _g = ActorGuard::new(&net_r, rx);
                // Receiver is on epoch 1: the epoch-0 frame is stale.
                let r = net_r.recv_frame(rx, None, link, 1, 1_000_000);
                *end_r.lock().unwrap() = Some(r);
            });
            net.start();
        });
        assert_eq!(end.lock().unwrap().clone().unwrap(), Err(RecvEnd::Disconnected));
        assert_eq!(net.finish().stale_drops, 1);
    }
}
