//! Fault schedules for the simulation harness: what goes wrong, where,
//! and when — serializable to JSON so a failing schedule can be saved,
//! shipped in a bug report, and replayed bit-for-bit.

use serde::{Deserialize, Serialize};

/// What happens to one frame on a link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimFaultKind {
    /// Hold the frame (and, FIFO, everything behind it) for `us`.
    Delay {
        /// Extra virtual µs before delivery.
        us: u64,
    },
    /// Lose the frame silently.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Flip a payload bit — detected by the receiver through the real
    /// frame CRC, never by simulator fiat.
    Corrupt,
    /// Let the frame overtake the FIFO stream by delivering it `us`
    /// later than send time but *exempt from the stream clamp*. Real
    /// TCP cannot reorder within a stream, so protocol-level random
    /// schedules never draw this; the wire-level testbed uses it.
    Reorder {
        /// Virtual µs after send at which the frame lands.
        us: u64,
    },
    /// Cut the connection (epoch) at this frame.
    Disconnect,
}

/// A one-shot fault on the `after_frames`-th frame sent over a link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimLinkEvent {
    /// Target link: data links are `0..=n_stages` (link `i` feeds stage
    /// `i`; link `n_stages` returns to the master), control links
    /// follow at `n_stages + 1 + s`.
    pub link: usize,
    /// Cumulative send ordinal on the link that triggers the fault.
    pub after_frames: u64,
    /// What happens to that frame.
    pub kind: SimFaultKind,
}

/// A link partition: frames sent in `[at_us, heal)` are stalled until
/// the heal (or forever).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimPartition {
    /// Target link (same numbering as [`SimLinkEvent::link`]).
    pub link: usize,
    /// Virtual µs at which the partition starts.
    pub at_us: u64,
    /// Virtual µs at which it heals; `None` = never.
    pub heal_at_us: Option<u64>,
}

/// A stage crash-and-restart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCrash {
    /// Stage that dies.
    pub stage: usize,
    /// Virtual µs of the crash.
    pub at_us: u64,
    /// Virtual µs after the crash at which the stage restarts; `None` =
    /// the stage is gone for good.
    pub restart_after_us: Option<u64>,
}

/// A device *joining* the cluster mid-run: from `at_us` on, `device` is
/// available as a migration target. A join is not a fault on its own —
/// frames and stages are untouched — but it triggers any configured
/// migrate-onto-new-device policy (see `SimConfig::migration`), so join
/// schedules stress the plan-swap window exactly like crash schedules
/// stress recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimDeviceJoin {
    /// Cluster device id that becomes available.
    pub device: usize,
    /// Virtual µs at which it joins.
    pub at_us: u64,
}

/// A complete fault schedule. Serializable, shrinkable, replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimFaultPlan {
    /// Per-frame faults.
    #[serde(default)]
    pub link_events: Vec<SimLinkEvent>,
    /// Timed partitions.
    #[serde(default)]
    pub partitions: Vec<SimPartition>,
    /// Timed crashes.
    #[serde(default)]
    pub crashes: Vec<SimCrash>,
    /// Timed device joins.
    #[serde(default)]
    pub joins: Vec<SimDeviceJoin>,
}

/// `splitmix64` — the same tiny seeded generator the fault DSL and the
/// redial jitter use; good enough to scatter schedules, fully
/// deterministic, and dependency-free.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimFaultPlan {
    /// The empty (fault-free) schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the schedule has no events at all.
    pub fn is_empty(&self) -> bool {
        self.link_events.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.joins.is_empty()
    }

    /// Total number of fault events across all four classes.
    pub fn event_count(&self) -> usize {
        self.link_events.len() + self.partitions.len() + self.crashes.len() + self.joins.len()
    }

    /// Schedule with the `idx`-th event (flat index over link events,
    /// then partitions, then crashes, then joins) removed — the
    /// shrinker's step.
    pub(crate) fn without(&self, idx: usize) -> Self {
        let mut out = self.clone();
        let n_l = out.link_events.len();
        let n_p = out.partitions.len();
        let n_c = out.crashes.len();
        if idx < n_l {
            out.link_events.remove(idx);
        } else if idx < n_l + n_p {
            out.partitions.remove(idx - n_l);
        } else if idx < n_l + n_p + n_c {
            out.crashes.remove(idx - n_l - n_p);
        } else {
            out.joins.remove(idx - n_l - n_p - n_c);
        }
        out
    }

    /// Deterministic random schedule for `seed` against a pipeline of
    /// `n_stages` stages. Draws only stream-faithful fault kinds (no
    /// `Reorder` — TCP cannot reorder within a stream, and a reordered
    /// work item would make token divergence a modeling artifact rather
    /// than a bug).
    pub fn random(seed: u64, n_stages: usize) -> Self {
        let mut state = seed;
        let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
        let n_links = 2 * n_stages + 1;
        let n_events = next(5); // 0..=4 faults per schedule
        let mut plan = Self::none();
        for _ in 0..n_events {
            match next(10) {
                0..=4 => {
                    let kind = match next(5) {
                        0 => SimFaultKind::Delay { us: 1_000 + next(120_000) },
                        1 => SimFaultKind::Drop,
                        2 => SimFaultKind::Duplicate,
                        3 => SimFaultKind::Corrupt,
                        _ => SimFaultKind::Disconnect,
                    };
                    plan.link_events.push(SimLinkEvent {
                        link: next(n_links as u64) as usize,
                        after_frames: next(12),
                        kind,
                    });
                }
                9 => {
                    // A spare (or returning) device comes up early in
                    // the run — in range for a migration policy to
                    // target while requests are still in flight.
                    plan.joins.push(SimDeviceJoin {
                        device: next(n_stages as u64 + 2) as usize,
                        at_us: next(2_000),
                    });
                }
                5 | 6 => {
                    // Timed events draw from the first virtual
                    // milliseconds: the tiny-model run completes in well
                    // under that, so they land mid-flight rather than
                    // after the pipeline already drained.
                    let at_us = next(2_000);
                    let heal_at_us =
                        if next(4) == 0 { None } else { Some(at_us + 1_000 + next(250_000)) };
                    plan.partitions.push(SimPartition {
                        link: next(n_links as u64) as usize,
                        at_us,
                        heal_at_us,
                    });
                }
                _ => {
                    let restart_after_us = if next(4) == 0 { None } else { Some(1_000 + next(300_000)) };
                    plan.crashes.push(SimCrash {
                        stage: next(n_stages as u64) as usize,
                        at_us: next(2_000),
                        restart_after_us,
                    });
                }
            }
        }
        plan
    }

    /// Deterministic random schedule biased into a live migration's
    /// prepare/commit window. The default migration scenario
    /// (`SimConfig::migration_default`) proposes around 200 virtual µs
    /// and finishes the commit handshake by ~600µs, so timed events
    /// here land in the first ~1.5 virtual ms, every schedule carries
    /// at least one event, crashed stages restart quickly enough to
    /// re-enter the swap path, and device joins are drawn more often
    /// (a join re-homes the repartitioned stage mid-protocol).
    pub fn random_migration(seed: u64, n_stages: usize) -> Self {
        let mut state = seed ^ 0x4D49_4752_4154_4531; // "MIGRATE1"
        let mut next = move |bound: u64| splitmix64(&mut state) % bound.max(1);
        let n_links = 2 * n_stages + 1;
        let n_events = 1 + next(5); // 1..=5 — every schedule hits the window
        let mut plan = Self::none();
        for _ in 0..n_events {
            match next(10) {
                0..=3 => {
                    let kind = match next(5) {
                        0 => SimFaultKind::Delay { us: 500 + next(60_000) },
                        1 => SimFaultKind::Drop,
                        2 => SimFaultKind::Duplicate,
                        3 => SimFaultKind::Corrupt,
                        _ => SimFaultKind::Disconnect,
                    };
                    // Low frame ordinals: the propose/ready/commit and
                    // KV-chunk frames all travel within the first ~16
                    // frames of a migration run.
                    plan.link_events.push(SimLinkEvent {
                        link: next(n_links as u64) as usize,
                        after_frames: next(16),
                        kind,
                    });
                }
                4 | 5 => {
                    let at_us = 100 + next(1_400);
                    let heal_at_us =
                        if next(4) == 0 { None } else { Some(at_us + 500 + next(60_000)) };
                    plan.partitions.push(SimPartition {
                        link: next(n_links as u64) as usize,
                        at_us,
                        heal_at_us,
                    });
                }
                6 => {
                    plan.joins.push(SimDeviceJoin {
                        device: next(n_stages as u64 + 2) as usize,
                        at_us: next(1_500),
                    });
                }
                _ => {
                    let restart_after_us =
                        if next(4) == 0 { None } else { Some(1_000 + next(50_000)) };
                    plan.crashes.push(SimCrash {
                        stage: next(n_stages as u64) as usize,
                        at_us: 100 + next(1_400),
                        restart_after_us,
                    });
                }
            }
        }
        plan
    }

    /// Serialize to pretty JSON (the replayable counterexample format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }

    /// Parse a schedule back from [`SimFaultPlan::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad fault-schedule JSON: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_reorder_free() {
        for seed in 0..200 {
            let a = SimFaultPlan::random(seed, 2);
            let b = SimFaultPlan::random(seed, 2);
            assert_eq!(a, b, "seed {seed}");
            assert!(
                a.link_events.iter().all(|e| !matches!(e.kind, SimFaultKind::Reorder { .. })),
                "protocol schedules must be stream-faithful (seed {seed})"
            );
        }
    }

    #[test]
    fn json_round_trips() {
        let plan = SimFaultPlan {
            link_events: vec![SimLinkEvent {
                link: 1,
                after_frames: 3,
                kind: SimFaultKind::Delay { us: 77 },
            }],
            partitions: vec![SimPartition { link: 0, at_us: 10, heal_at_us: None }],
            crashes: vec![SimCrash { stage: 1, at_us: 5, restart_after_us: Some(9) }],
            joins: vec![SimDeviceJoin { device: 2, at_us: 40 }],
        };
        let back = SimFaultPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(plan, back);
        // Pre-join schedules (no `joins` key) still parse.
        let legacy = SimFaultPlan::from_json(r#"{"crashes":[{"stage":0,"at_us":1,"restart_after_us":null}]}"#)
            .expect("legacy JSON");
        assert!(legacy.joins.is_empty());
        assert_eq!(legacy.event_count(), 1);
    }

    #[test]
    fn without_walks_all_four_classes() {
        let plan = SimFaultPlan {
            link_events: vec![SimLinkEvent { link: 0, after_frames: 0, kind: SimFaultKind::Drop }],
            partitions: vec![SimPartition { link: 0, at_us: 0, heal_at_us: Some(5) }],
            crashes: vec![SimCrash { stage: 0, at_us: 0, restart_after_us: None }],
            joins: vec![SimDeviceJoin { device: 3, at_us: 7 }],
        };
        assert_eq!(plan.event_count(), 4);
        assert!(plan.without(0).link_events.is_empty());
        assert!(plan.without(1).partitions.is_empty());
        assert!(plan.without(2).crashes.is_empty());
        assert!(plan.without(3).joins.is_empty());
        assert_eq!(plan.without(3).event_count(), 3);
    }

    #[test]
    fn random_eventually_draws_joins() {
        let hit = (0..400).any(|seed| !SimFaultPlan::random(seed, 2).joins.is_empty());
        assert!(hit, "random schedules must be able to contain device joins");
    }
}
