//! Pure-`std` HTTP/1.1 front door for the continuous-batching engine —
//! the library half of `llmpq-serve`.
//!
//! No async runtime, no hyper: a blocking accept loop, one OS thread
//! per connection, and `std::net` sockets, which is plenty for a
//! reproduction-scale server and keeps the build hermetic. Three
//! routes:
//!
//! * `POST /v1/completions` — OpenAI-ish JSON: `{"prompt": [1,2,3] |
//!   "text", "max_tokens": 16, "priority": 2, "deadline_ms": 2000,
//!   "stream": false}`. Strict parsing: bad JSON, wrong types, and
//!   *unknown fields* are all 400s with the offending field named; an
//!   oversized body is 413 before the JSON is even looked at. With
//!   `"stream": true` the response is `Transfer-Encoding: chunked`,
//!   one JSON line per token as it lands, ending with a `done` chunk
//!   (drain-on-shutdown terminates live streams the same way).
//! * `GET /metrics` — the plain-text [`Telemetry::metrics_text`]
//!   snapshot (including the `serving:` block: in-flight gauge, batch
//!   and KV occupancy, TTFT/TPOT histograms) plus a `serving_dist:`
//!   line with the engine's live-swap epoch and restart counters.
//! * `GET /healthz` — liveness: `{"status":"ok"|"draining",
//!   "uptime_s":…, "epoch":…, "restarts":…, "queued":…}`.
//!
//! The connection thread hands the parsed request to the scheduler
//! thread through a channel ([`ServeHandle::submit`]) and blocks until
//! the request finishes, is shed (429), or expires (504) — so HTTP
//! backpressure is the admission controller's backpressure, not a
//! second queue with its own policy. Overload answers (429 shed, 503
//! draining) carry a `Retry-After` header derived from the queue depth
//! and the observed time-per-output-token.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock::Clock;
use crate::overload::Request;
use crate::serve::{ContinuousConfig, ContinuousReport, ContinuousScheduler, FinishedRequest, StepEngine};
use crate::telemetry::Telemetry;

/// Parser bounds: how much of a request we are willing to buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Max bytes across the request line + headers.
    pub max_header_bytes: usize,
    /// Max request-body bytes (a longer `Content-Length` is a 413).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self { max_header_bytes: 8 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with query string, e.g. `/v1/completions`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this response.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed; maps to a status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// Malformed request line.
    BadRequestLine(String),
    /// Malformed header line.
    BadHeader(String),
    /// Request line + headers exceed the limit.
    HeadersTooLarge,
    /// `Content-Length` exceeds the body limit.
    BodyTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// Unparseable `Content-Length`.
    BadLength(String),
    /// Socket error / truncated request.
    Io(String),
}

impl HttpParseError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpParseError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            HttpParseError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpParseError::Io(_) => (400, "Bad Request"),
            _ => (400, "Bad Request"),
        }
    }
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::BadRequestLine(l) => write!(f, "bad request line {l:?}"),
            HttpParseError::BadHeader(l) => write!(f, "bad header {l:?}"),
            HttpParseError::HeadersTooLarge => write!(f, "headers too large"),
            HttpParseError::BodyTooLarge { limit } => {
                write!(f, "body exceeds limit of {limit} bytes")
            }
            HttpParseError::BadLength(v) => write!(f, "bad content-length {v:?}"),
            HttpParseError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for HttpParseError {}

fn read_line_bounded<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, HttpParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(HttpParseError::Io("truncated request".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpParseError::HeadersTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpParseError::Io(e.to_string())),
        }
    }
}

/// Read one HTTP/1.1 request off `r`. `Ok(None)` means the peer closed
/// the connection cleanly between requests (keep-alive end).
pub fn read_request<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
) -> Result<Option<HttpRequest>, HttpParseError> {
    let mut budget = limits.max_header_bytes;
    let Some(request_line) = read_line_bounded(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v)
        }
        _ => return Err(HttpParseError::BadRequestLine(request_line)),
    };
    let _ = version;
    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(r, &mut budget)?
            .ok_or_else(|| HttpParseError::Io("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(HttpParseError::BadHeader(line));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let req = HttpRequest { method, path, headers, body: Vec::new() };
    let len = match req.header("content-length") {
        None => 0usize,
        Some(v) => v.trim().parse::<usize>().map_err(|_| HttpParseError::BadLength(v.into()))?,
    };
    if len > limits.max_body_bytes {
        return Err(HttpParseError::BodyTooLarge { limit: limits.max_body_bytes });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| HttpParseError::Io(e.to_string()))?;
    Ok(Some(HttpRequest { body, ..req }))
}

/// A validated `/v1/completions` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionRequest {
    /// Prompt token ids (a string prompt is byte-tokenized mod vocab).
    pub prompt: Vec<usize>,
    /// Tokens to generate.
    pub max_tokens: usize,
    /// Larger = more important (preemption victims are the smallest).
    pub priority: u32,
    /// SLO deadline relative to arrival, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Model name, echoed back (the server has exactly one).
    pub model: Option<String>,
    /// Stream tokens as they land (chunked transfer-encoding).
    pub stream: bool,
}

fn as_count(v: &serde::Value, field: &str) -> Result<usize, String> {
    match v {
        serde::Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        _ => Err(format!("field {field:?} must be a non-negative integer")),
    }
}

/// Parse + validate a completions body. Strict: unknown fields are
/// errors, so operator typos (`max_token`) fail loudly instead of
/// silently defaulting.
pub fn parse_completion(
    body: &[u8],
    vocab: usize,
    max_tokens_cap: usize,
) -> Result<CompletionRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse_value(text).map_err(|e| format!("bad JSON: {e}"))?;
    let serde::Value::Obj(pairs) = &value else {
        return Err("body must be a JSON object".to_string());
    };
    let mut out = CompletionRequest {
        prompt: Vec::new(),
        max_tokens: 16,
        priority: 1,
        deadline_ms: None,
        model: None,
        stream: false,
    };
    let mut saw_prompt = false;
    for (k, v) in pairs {
        match k.as_str() {
            "model" => match v {
                serde::Value::Str(s) => out.model = Some(s.clone()),
                _ => return Err("field \"model\" must be a string".to_string()),
            },
            "prompt" => {
                saw_prompt = true;
                match v {
                    serde::Value::Arr(items) => {
                        for item in items {
                            let tok = as_count(item, "prompt")?;
                            if tok >= vocab {
                                return Err(format!(
                                    "prompt token {tok} out of range (vocab {vocab})"
                                ));
                            }
                            out.prompt.push(tok);
                        }
                    }
                    serde::Value::Str(s) => {
                        out.prompt = s.bytes().map(|b| b as usize % vocab).collect();
                    }
                    _ => {
                        return Err(
                            "field \"prompt\" must be an array of token ids or a string".into()
                        )
                    }
                }
            }
            "max_tokens" => {
                let n = as_count(v, "max_tokens")?;
                if n == 0 {
                    return Err("field \"max_tokens\" must be at least 1".to_string());
                }
                if n > max_tokens_cap {
                    return Err(format!("max_tokens {n} exceeds the server cap {max_tokens_cap}"));
                }
                out.max_tokens = n;
            }
            "priority" => out.priority = as_count(v, "priority")? as u32,
            "deadline_ms" => out.deadline_ms = Some(as_count(v, "deadline_ms")? as u64),
            "stream" => match v {
                serde::Value::Bool(b) => out.stream = *b,
                _ => return Err("field \"stream\" must be a boolean".to_string()),
            },
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if !saw_prompt {
        return Err("missing field \"prompt\"".to_string());
    }
    if out.prompt.is_empty() {
        return Err("prompt must be non-empty".to_string());
    }
    Ok(out)
}

fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_hdrs(w, status, reason, content_type, &[], body, close)
}

fn write_response_hdrs(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Write one chunk of a `Transfer-Encoding: chunked` body and flush, so
/// a streaming client sees each token the moment it lands.
fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

fn json_error(msg: &str) -> Vec<u8> {
    let v = serde::Value::Obj(vec![("error".to_string(), serde::Value::Str(msg.to_string()))]);
    serde_json::to_string(&v).unwrap_or_else(|_| "{}".into()).into_bytes()
}

/// What `ServeHandle::submit` came back with.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Request completed; tokens inside.
    Done(FinishedRequest),
    /// Refused by admission (queue full / infeasible) → 429.
    Shed,
    /// Admitted but reaped past its deadline/timeout → 504.
    Expired,
    /// The scheduler thread is gone → 503.
    Closed,
}

/// One event on a (streaming) completion. Non-streaming submissions
/// only ever see the last three.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A token landed; `index` is its position in the output. After a
    /// ring restart the recompute re-lands earlier indices, so a
    /// consumer that already emitted an index must dedup on it.
    Token {
        /// Position in the generated output, starting at 0.
        index: usize,
        /// The token id.
        token: usize,
    },
    /// Completion finished; the full record inside.
    Done(FinishedRequest),
    /// Refused by admission (queue full / infeasible) → 429.
    Shed,
    /// Admitted but reaped past its deadline/timeout → 504.
    Expired,
}

struct Submission {
    req: Request,
    resp: mpsc::Sender<StreamEvent>,
    stream: bool,
}

/// Live serving gauges shared between the scheduler loop and the
/// connection threads: `/healthz` and `/metrics` report them, and
/// overload responses derive their `Retry-After` hint from them.
#[derive(Debug, Default)]
pub struct ServeStatus {
    /// Committed live-swap epoch of the engine's ring (0 = boot plan,
    /// local engines stay at 0).
    pub epoch: AtomicU64,
    /// Supervisor restarts the engine has absorbed.
    pub restarts: AtomicU64,
    /// Requests queued (not counting in-flight).
    pub queued: AtomicU64,
    /// EWMA of observed time-per-output-token, microseconds.
    pub tpot_us: AtomicU64,
    /// EWMA of tokens per finished request, scaled ×1000.
    tokens_per_req_milli: AtomicU64,
    /// Shutdown started; `/healthz` answers `"draining"`.
    pub draining: AtomicBool,
}

/// 1/8-weight EWMA on an atomic gauge (one writer — the serve loop —
/// many readers).
fn ewma_update(cell: &AtomicU64, sample: u64) {
    let prev = cell.load(Ordering::Relaxed);
    let next =
        if prev == 0 { sample } else { (prev as f64 * 0.875 + sample as f64 * 0.125) as u64 };
    cell.store(next.max(1), Ordering::Relaxed);
}

impl ServeStatus {
    /// Seconds a shed or drained client should wait before retrying:
    /// the work queued ahead of it — queue depth × tokens/request ×
    /// observed tpot, spread across the batch — rounded up and clamped
    /// to `[1, 60]`.
    pub fn retry_after_s(&self, max_batch: usize) -> u64 {
        let queued = self.queued.load(Ordering::Relaxed).max(1);
        let tpot_s = self.tpot_us.load(Ordering::Relaxed).max(1) as f64 / 1e6;
        let toks = self.tokens_per_req_milli.load(Ordering::Relaxed).max(1000) as f64 / 1e3;
        let wait = queued as f64 * toks * tpot_s / max_batch.max(1) as f64;
        (wait.ceil() as u64).clamp(1, 60)
    }

    fn observe_finished(&self, fin: &FinishedRequest) {
        let n = fin.tokens.len().max(1);
        ewma_update(&self.tpot_us, (fin.sojourn_s.max(0.0) / n as f64 * 1e6) as u64);
        ewma_update(&self.tokens_per_req_milli, n as u64 * 1000);
    }
}

/// Cloneable front door to the scheduler thread: stamps arrivals from
/// the shared clock, assigns ids, and blocks until the verdict.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Submission>,
    next_id: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    epoch: Duration,
    status: Arc<ServeStatus>,
    max_batch: usize,
}

impl ServeHandle {
    /// Seconds since the serve loop started.
    pub fn now_s(&self) -> f64 {
        self.clock.now().saturating_sub(self.epoch).as_secs_f64()
    }

    /// The live serving gauges (epoch, restarts, queue depth, tpot).
    pub fn status(&self) -> &ServeStatus {
        &self.status
    }

    /// Current `Retry-After` hint in whole seconds.
    pub fn retry_after_s(&self) -> u64 {
        self.status.retry_after_s(self.max_batch)
    }

    fn enqueue(
        &self,
        prompt: Vec<usize>,
        max_tokens: usize,
        priority: u32,
        deadline_ms: Option<u64>,
        stream: bool,
    ) -> Option<mpsc::Receiver<StreamEvent>> {
        let arrival_s = self.now_s();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as usize;
        let (resp_tx, resp_rx) = mpsc::channel();
        let req = Request {
            id,
            arrival_s,
            prompt,
            n_generate: max_tokens,
            deadline_s: deadline_ms.map(|ms| arrival_s + ms as f64 / 1000.0),
            priority,
        };
        if self.tx.send(Submission { req, resp: resp_tx, stream }).is_err() {
            return None;
        }
        Some(resp_rx)
    }

    /// Submit one request and wait for its outcome.
    pub fn submit(
        &self,
        prompt: Vec<usize>,
        max_tokens: usize,
        priority: u32,
        deadline_ms: Option<u64>,
    ) -> SubmitOutcome {
        let Some(rx) = self.enqueue(prompt, max_tokens, priority, deadline_ms, false) else {
            return SubmitOutcome::Closed;
        };
        loop {
            match rx.recv() {
                Ok(StreamEvent::Token { .. }) => continue, // not streaming
                Ok(StreamEvent::Done(fin)) => return SubmitOutcome::Done(fin),
                Ok(StreamEvent::Shed) => return SubmitOutcome::Shed,
                Ok(StreamEvent::Expired) => return SubmitOutcome::Expired,
                Err(_) => return SubmitOutcome::Closed,
            }
        }
    }

    /// Submit with per-token streaming: the receiver yields one
    /// [`StreamEvent::Token`] per landed token, ending with `Done`,
    /// `Shed`, or `Expired` (channel close = scheduler gone). `None`
    /// means the scheduler is already shut down.
    pub fn submit_stream(
        &self,
        prompt: Vec<usize>,
        max_tokens: usize,
        priority: u32,
        deadline_ms: Option<u64>,
    ) -> Option<mpsc::Receiver<StreamEvent>> {
        self.enqueue(prompt, max_tokens, priority, deadline_ms, true)
    }
}

#[allow(clippy::too_many_arguments)] // one call site; the args are the loop's whole world
fn run_serve_loop<E: StepEngine>(
    engine: E,
    cfg: ContinuousConfig,
    telemetry: Arc<Telemetry>,
    clock: Arc<dyn Clock>,
    epoch: Duration,
    rx: mpsc::Receiver<Submission>,
    stop: Arc<AtomicBool>,
    status: Arc<ServeStatus>,
) -> Result<ContinuousReport, String> {
    let mut sched = ContinuousScheduler::new(engine, cfg)?.with_telemetry(telemetry);
    let mut responders: HashMap<usize, (mpsc::Sender<StreamEvent>, bool)> = HashMap::new();
    let mut disconnected = false;
    let mut makespan = 0.0f64;
    loop {
        let now = clock.now().saturating_sub(epoch).as_secs_f64();
        loop {
            match rx.try_recv() {
                Ok(sub) => {
                    let id = sub.req.id;
                    if sched.offer(sub.req, now) {
                        responders.insert(id, (sub.resp, sub.stream));
                    } else {
                        let _ = sub.resp.send(StreamEvent::Shed);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let out = sched.step(now).map_err(|e| e.to_string())?;
        // Streamed tokens go out before the Done verdicts below, so a
        // streaming client sees every token and then the final record.
        for &(id, index, token) in &out.landed {
            if let Some((tx, true)) = responders.get(&id) {
                let _ = tx.send(StreamEvent::Token { index, token });
            }
        }
        for id in &out.expired_ids {
            if let Some((tx, _)) = responders.remove(id) {
                let _ = tx.send(StreamEvent::Expired);
            }
        }
        for id in &out.shed_ids {
            if let Some((tx, _)) = responders.remove(id) {
                let _ = tx.send(StreamEvent::Shed);
            }
        }
        for fin in out.finished {
            status.observe_finished(&fin);
            if let Some((tx, _)) = responders.remove(&fin.id) {
                let _ = tx.send(StreamEvent::Done(fin));
            }
        }
        status.epoch.store(sched.engine().epoch(), Ordering::Relaxed);
        status.restarts.store(sched.engine().restarts(), Ordering::Relaxed);
        status.queued.store(sched.queued() as u64, Ordering::Relaxed);
        if !out.idle {
            makespan = now + out.cost_s;
            continue;
        }
        let drained =
            responders.is_empty() && sched.queued() == 0 && sched.in_flight() == 0;
        if drained && (stop.load(Ordering::Relaxed) || disconnected) {
            break;
        }
        // Idle: park briefly on the channel so a new submission wakes
        // us without spinning.
        match rx.recv_timeout(Duration::from_millis(2)) {
            Ok(sub) => {
                let now = clock.now().saturating_sub(epoch).as_secs_f64();
                let id = sub.req.id;
                if sched.offer(sub.req, now) {
                    responders.insert(id, (sub.resp, sub.stream));
                } else {
                    let _ = sub.resp.send(StreamEvent::Shed);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                disconnected = true;
                if drained {
                    break;
                }
                // Still work in flight: let the loop finish it.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    Ok(sched.into_report(makespan, "continuous"))
}

/// Server knobs.
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Parser bounds.
    pub limits: HttpLimits,
    /// Vocabulary size prompts are validated against.
    pub vocab: usize,
    /// Largest `max_tokens` a request may ask for.
    pub max_tokens_cap: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Deadline applied when the request names none, milliseconds.
    pub default_deadline_ms: Option<u64>,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        Self {
            limits: HttpLimits::default(),
            vocab: 256,
            max_tokens_cap: 256,
            read_timeout: Duration::from_secs(30),
            default_deadline_ms: None,
        }
    }
}

/// Connection/response counters (atomics; read them live).
#[derive(Debug, Default)]
pub struct HttpServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed off sockets.
    pub requests: AtomicU64,
    /// 2xx responses written.
    pub ok_2xx: AtomicU64,
    /// 4xx responses written.
    pub client_err_4xx: AtomicU64,
    /// 5xx responses written.
    pub server_err_5xx: AtomicU64,
    /// Connections that died without a response (socket error).
    pub dropped: AtomicU64,
}

/// A running server: accept thread + scheduler thread.
pub struct HttpServer {
    /// Bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    loop_thread: JoinHandle<Result<ContinuousReport, String>>,
    handle: ServeHandle,
    stats: Arc<HttpServerStats>,
    telemetry: Arc<Telemetry>,
}

impl HttpServer {
    /// Bind `listener`'s traffic to `engine` and start serving.
    pub fn start<E: StepEngine + Send + 'static>(
        listener: TcpListener,
        engine: E,
        cfg: ContinuousConfig,
        http_cfg: HttpServerConfig,
        telemetry: Arc<Telemetry>,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, String> {
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(HttpServerStats::default());
        let status = Arc::new(ServeStatus::default());
        let (tx, rx) = mpsc::channel();
        let epoch = clock.now();
        let handle = ServeHandle {
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
            clock: clock.clone(),
            epoch,
            status: status.clone(),
            max_batch: cfg.max_batch,
        };
        let loop_telemetry = telemetry.clone();
        let loop_clock = clock.clone();
        let loop_stop = stop.clone();
        let loop_status = status;
        let loop_thread = std::thread::Builder::new()
            .name("llmpq-serve-sched".into())
            .spawn(move || {
                run_serve_loop(
                    engine,
                    cfg,
                    loop_telemetry,
                    loop_clock,
                    epoch,
                    rx,
                    loop_stop,
                    loop_status,
                )
            })
            .map_err(|e| e.to_string())?;
        let accept_stop = stop.clone();
        let accept_stats = stats.clone();
        let accept_handle = handle.clone();
        let accept_telemetry = telemetry.clone();
        let accept_thread = std::thread::Builder::new()
            .name("llmpq-serve-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            let h = accept_handle.clone();
                            let s = accept_stats.clone();
                            let t = accept_telemetry.clone();
                            let c = http_cfg.clone();
                            let _ = std::thread::Builder::new()
                                .name("llmpq-serve-conn".into())
                                .spawn(move || handle_connection(stream, h, t, c, s));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| e.to_string())?;
        Ok(Self { addr, stop, accept_thread, loop_thread, handle, stats, telemetry })
    }

    /// A submission handle bypassing HTTP (the soak driver uses this
    /// for direct load alongside socket traffic).
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Live server counters.
    pub fn stats(&self) -> &HttpServerStats {
        &self.stats
    }

    /// The telemetry hub behind `/metrics`.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Stop accepting, drain in-flight work, and return the scheduler's
    /// end-of-run report.
    pub fn shutdown(self) -> Result<ContinuousReport, String> {
        self.handle.status.draining.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        self.accept_thread.join().map_err(|_| "accept thread panicked".to_string())?;
        // Dropping our ServeHandle closes the channel once connection
        // threads finish; the loop drains and exits.
        drop(self.handle);
        self.loop_thread.join().map_err(|_| "scheduler thread panicked".to_string())?
    }
}

fn handle_connection(
    stream: TcpStream,
    handle: ServeHandle,
    telemetry: Arc<Telemetry>,
    cfg: HttpServerConfig,
    stats: Arc<HttpServerStats>,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, &cfg.limits) {
            Ok(None) => return, // clean close
            Ok(Some(r)) => r,
            Err(e) => {
                let (status, reason) = e.status();
                stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    status,
                    reason,
                    "application/json",
                    &json_error(&e.to_string()),
                    true,
                );
                return;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let close = req.wants_close();
        let ok = route(&req, &handle, &telemetry, &cfg, &stats, &mut writer, close);
        if ok.is_err() {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if close {
            return;
        }
    }
}

fn route(
    req: &HttpRequest,
    handle: &ServeHandle,
    telemetry: &Telemetry,
    cfg: &HttpServerConfig,
    stats: &HttpServerStats,
    w: &mut impl Write,
    close: bool,
) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let st = handle.status();
            let body = format!(
                "{{\"status\":\"{}\",\"uptime_s\":{:.3},\"epoch\":{},\"restarts\":{},\"queued\":{}}}",
                if st.draining.load(Ordering::Relaxed) { "draining" } else { "ok" },
                handle.now_s(),
                st.epoch.load(Ordering::Relaxed),
                st.restarts.load(Ordering::Relaxed),
                st.queued.load(Ordering::Relaxed),
            );
            stats.ok_2xx.fetch_add(1, Ordering::Relaxed);
            write_response(w, 200, "OK", "application/json", body.as_bytes(), close)
        }
        ("GET", "/metrics") => {
            stats.ok_2xx.fetch_add(1, Ordering::Relaxed);
            let st = handle.status();
            let mut text = telemetry.metrics_text();
            text.push_str(&format!(
                "serving_dist: epoch={} restarts={}\n",
                st.epoch.load(Ordering::Relaxed),
                st.restarts.load(Ordering::Relaxed),
            ));
            write_response(w, 200, "OK", "text/plain; charset=utf-8", text.as_bytes(), close)
        }
        ("POST", "/v1/completions") => {
            match parse_completion(&req.body, cfg.vocab, cfg.max_tokens_cap) {
                Err(msg) => {
                    stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
                    write_response(w, 400, "Bad Request", "application/json", &json_error(&msg), close)
                }
                Ok(c) if c.stream => stream_completion(w, handle, c, cfg, stats, close),
                Ok(c) => {
                    let deadline = c.deadline_ms.or(cfg.default_deadline_ms);
                    match handle.submit(c.prompt, c.max_tokens, c.priority, deadline) {
                        SubmitOutcome::Done(fin) => {
                            let tokens = fin
                                .tokens
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(",");
                            let body = format!(
                                "{{\"id\":\"cmpl-{}\",\"object\":\"text_completion\",\"model\":{:?},\"tokens\":[{}],\"usage\":{{\"completion_tokens\":{}}},\"ttft_ms\":{:.3},\"latency_ms\":{:.3}}}",
                                fin.id,
                                c.model.as_deref().unwrap_or("llmpq"),
                                tokens,
                                fin.tokens.len(),
                                fin.ttft_s * 1e3,
                                fin.sojourn_s * 1e3,
                            );
                            stats.ok_2xx.fetch_add(1, Ordering::Relaxed);
                            write_response(w, 200, "OK", "application/json", body.as_bytes(), close)
                        }
                        SubmitOutcome::Shed => {
                            stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
                            write_response_hdrs(
                                w,
                                429,
                                "Too Many Requests",
                                "application/json",
                                &[("Retry-After", handle.retry_after_s().to_string())],
                                &json_error("shed by admission control"),
                                close,
                            )
                        }
                        SubmitOutcome::Expired => {
                            stats.server_err_5xx.fetch_add(1, Ordering::Relaxed);
                            write_response(
                                w,
                                504,
                                "Gateway Timeout",
                                "application/json",
                                &json_error("deadline expired before service"),
                                close,
                            )
                        }
                        SubmitOutcome::Closed => {
                            stats.server_err_5xx.fetch_add(1, Ordering::Relaxed);
                            write_response_hdrs(
                                w,
                                503,
                                "Service Unavailable",
                                "application/json",
                                &[("Retry-After", handle.retry_after_s().to_string())],
                                &json_error("scheduler is shutting down"),
                                close,
                            )
                        }
                    }
                }
            }
        }
        ("GET" | "POST", _) => {
            stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
            write_response(w, 404, "Not Found", "application/json", &json_error("no such route"), close)
        }
        _ => {
            stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
            write_response(
                w,
                405,
                "Method Not Allowed",
                "application/json",
                &json_error("method not allowed"),
                close,
            )
        }
    }
}

/// Answer a `"stream": true` completion: chunked transfer-encoding,
/// one JSON line per token as it lands, then a final `done` chunk. The
/// status line is only committed once the first event arrives, so shed
/// and expired requests still get their proper 429/504.
fn stream_completion(
    w: &mut impl Write,
    handle: &ServeHandle,
    c: CompletionRequest,
    cfg: &HttpServerConfig,
    stats: &HttpServerStats,
    close: bool,
) -> std::io::Result<()> {
    let retry = || vec![("Retry-After", handle.retry_after_s().to_string())];
    let deadline = c.deadline_ms.or(cfg.default_deadline_ms);
    let Some(rx) = handle.submit_stream(c.prompt, c.max_tokens, c.priority, deadline) else {
        stats.server_err_5xx.fetch_add(1, Ordering::Relaxed);
        return write_response_hdrs(
            w,
            503,
            "Service Unavailable",
            "application/json",
            &retry(),
            &json_error("scheduler is shutting down"),
            close,
        );
    };
    let first = match rx.recv() {
        Ok(ev) => ev,
        Err(_) => {
            stats.server_err_5xx.fetch_add(1, Ordering::Relaxed);
            return write_response_hdrs(
                w,
                503,
                "Service Unavailable",
                "application/json",
                &retry(),
                &json_error("scheduler is shutting down"),
                close,
            );
        }
    };
    match first {
        StreamEvent::Shed => {
            stats.client_err_4xx.fetch_add(1, Ordering::Relaxed);
            write_response_hdrs(
                w,
                429,
                "Too Many Requests",
                "application/json",
                &retry(),
                &json_error("shed by admission control"),
                close,
            )
        }
        StreamEvent::Expired => {
            stats.server_err_5xx.fetch_add(1, Ordering::Relaxed);
            write_response(
                w,
                504,
                "Gateway Timeout",
                "application/json",
                &json_error("deadline expired before service"),
                close,
            )
        }
        ev @ (StreamEvent::Token { .. } | StreamEvent::Done(_)) => {
            stats.ok_2xx.fetch_add(1, Ordering::Relaxed);
            write!(
                w,
                "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                if close { "close" } else { "keep-alive" },
            )?;
            w.flush()?;
            let mut pending = Some(ev);
            // High-water dedup: after a ring restart the recompute
            // re-lands earlier indices, which must not be re-emitted.
            let mut next_index = 0usize;
            loop {
                let event = match pending.take() {
                    Some(e) => e,
                    None => match rx.recv() {
                        Ok(e) => e,
                        Err(_) => {
                            // Scheduler gone mid-stream (shutdown):
                            // terminate cleanly with a done chunk.
                            write_chunk(
                                w,
                                format!(
                                    "{{\"done\":true,\"reason\":\"shutdown\",\"tokens\":{next_index}}}\n"
                                )
                                .as_bytes(),
                            )?;
                            break;
                        }
                    },
                };
                match event {
                    StreamEvent::Token { index, token } => {
                        if index >= next_index {
                            write_chunk(
                                w,
                                format!("{{\"index\":{index},\"token\":{token}}}\n").as_bytes(),
                            )?;
                            next_index = index + 1;
                        }
                    }
                    StreamEvent::Done(fin) => {
                        write_chunk(
                            w,
                            format!(
                                "{{\"done\":true,\"id\":\"cmpl-{}\",\"usage\":{{\"completion_tokens\":{}}},\"ttft_ms\":{:.3},\"latency_ms\":{:.3}}}\n",
                                fin.id,
                                fin.tokens.len(),
                                fin.ttft_s * 1e3,
                                fin.sojourn_s * 1e3,
                            )
                            .as_bytes(),
                        )?;
                        break;
                    }
                    StreamEvent::Expired => {
                        write_chunk(w, b"{\"done\":true,\"reason\":\"expired\"}\n")?;
                        break;
                    }
                    StreamEvent::Shed => {
                        write_chunk(w, b"{\"done\":true,\"reason\":\"shed\"}\n")?;
                        break;
                    }
                }
            }
            w.write_all(b"0\r\n\r\n")?;
            w.flush()
        }
    }
}

/// Convenience for the CLI serve mode: start and block forever (the
/// process exits by signal).
pub fn run_http_server<E: StepEngine + Send + 'static>(
    listener: TcpListener,
    engine: E,
    cfg: ContinuousConfig,
    http_cfg: HttpServerConfig,
    telemetry: Arc<Telemetry>,
    clock: Arc<dyn Clock>,
) -> Result<(), String> {
    let server = HttpServer::start(listener, engine, cfg, http_cfg, telemetry, clock)?;
    eprintln!("listening on {}", server.addr);
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::real_clock;
    use crate::kvpool::KvPoolConfig;
    use crate::serve::{sim_oracle_tokens, IterCost, SimStepEngine};
    use std::io::{Cursor, Read};

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    fn parse(raw: &str) -> Result<Option<HttpRequest>, HttpParseError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &limits())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/completions");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn eof_between_requests_is_none() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(HttpParseError::BadRequestLine(_))));
        assert!(matches!(
            parse("GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpParseError::BadRequestLine(_))
        ));
    }

    #[test]
    fn rejects_bad_header_and_bad_length() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: soup\r\n\r\n"),
            Err(HttpParseError::BadLength(_))
        ));
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        let lim = HttpLimits { max_body_bytes: 8, ..limits() };
        let err = read_request(
            &mut Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_vec()),
            &lim,
        )
        .unwrap_err();
        assert_eq!(err, HttpParseError::BodyTooLarge { limit: 8 });
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn oversized_headers_are_431() {
        let lim = HttpLimits { max_header_bytes: 32, ..limits() };
        let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(100));
        let err = read_request(&mut Cursor::new(raw.into_bytes()), &lim).unwrap_err();
        assert_eq!(err, HttpParseError::HeadersTooLarge);
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn completion_parses_token_array_and_string() {
        let c = parse_completion(br#"{"prompt": [1, 2, 3], "max_tokens": 5}"#, 100, 64).unwrap();
        assert_eq!(c.prompt, vec![1, 2, 3]);
        assert_eq!(c.max_tokens, 5);
        let c = parse_completion(br#"{"prompt": "hi"}"#, 100, 64).unwrap();
        assert_eq!(c.prompt, vec![b'h' as usize % 100, b'i' as usize % 100]);
        assert_eq!(c.max_tokens, 16, "default");
    }

    #[test]
    fn completion_rejects_bad_json_unknown_fields_and_bad_types() {
        assert!(parse_completion(b"{nope", 100, 64).unwrap_err().contains("bad JSON"));
        assert!(parse_completion(br#"[1,2]"#, 100, 64).unwrap_err().contains("object"));
        let err = parse_completion(br#"{"prompt":[1],"max_token":3}"#, 100, 64).unwrap_err();
        assert!(err.contains("unknown field") && err.contains("max_token"), "{err}");
        assert!(parse_completion(br#"{"prompt":[1],"max_tokens":0}"#, 100, 64).is_err());
        assert!(parse_completion(br#"{"prompt":[1],"max_tokens":65}"#, 100, 64)
            .unwrap_err()
            .contains("cap"));
        assert!(parse_completion(br#"{"prompt":[250]}"#, 100, 64)
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_completion(br#"{"prompt":[1.5]}"#, 100, 64).is_err());
        assert!(parse_completion(br#"{"max_tokens":3}"#, 100, 64)
            .unwrap_err()
            .contains("missing field"));
        assert!(parse_completion(br#"{"prompt":[]}"#, 100, 64)
            .unwrap_err()
            .contains("non-empty"));
    }

    fn start_sim_server() -> HttpServer {
        let engine = SimStepEngine::new(
            KvPoolConfig { n_blocks: 512, block_tokens: 16 },
            vec![IterCost { base_s: 1e-5, per_prefill_token_s: 1e-7, per_decode_token_s: 1e-7 }],
            97,
            42,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        HttpServer::start(
            listener,
            engine,
            ContinuousConfig::default(),
            HttpServerConfig { vocab: 97, ..HttpServerConfig::default() },
            Telemetry::new(0),
            real_clock(),
        )
        .unwrap()
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut out = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    out.push_str(&String::from_utf8_lossy(&buf[..n]));
                    // For keep-alive responses, stop once the body of
                    // the first response is complete.
                    if let Some(done) = response_complete(&out) {
                        if done {
                            break;
                        }
                    }
                }
                Err(_) => break,
            }
        }
        out
    }

    fn response_complete(out: &str) -> Option<bool> {
        let head_end = out.find("\r\n\r\n")?;
        let len = out[..head_end]
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))?
            .split(':')
            .nth(1)?
            .trim()
            .parse::<usize>()
            .ok()?;
        Some(out.len() >= head_end + 4 + len)
    }

    #[test]
    fn healthz_metrics_completion_and_errors_over_real_sockets() {
        let server = start_sim_server();
        let addr = server.addr;

        let health = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""));

        let body = r#"{"prompt":[5,6,7],"max_tokens":4}"#;
        let raw = format!(
            "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let resp = roundtrip(addr, &raw);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let expect = sim_oracle_tokens(42, 97, &[5, 6, 7], 4)
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        assert!(resp.contains(&format!("\"tokens\":[{expect}]")), "{resp}");

        let bad = roundtrip(
            addr,
            "POST /v1/completions HTTP/1.1\r\nContent-Length: 6\r\nConnection: close\r\n\r\n{nope}",
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let unknown_body = r#"{"prompt":[1],"maxx":2}"#;
        let unknown = roundtrip(
            addr,
            &format!(
                "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{unknown_body}",
                unknown_body.len()
            ),
        );
        assert!(unknown.starts_with("HTTP/1.1 400"), "{unknown}");
        assert!(unknown.contains("unknown field"));

        let missing = roundtrip(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let wrong = roundtrip(addr, "DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(wrong.starts_with("HTTP/1.1 405"), "{wrong}");

        let huge = format!(
            "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            2 * 1024 * 1024
        );
        let too_big = roundtrip(addr, &huge);
        assert!(too_big.starts_with("HTTP/1.1 413"), "{too_big}");

        // Metrics: after a completion, the serving block must be there
        // with real counts.
        let metrics = roundtrip(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        for needle in
            ["# llmpq runtime telemetry snapshot", "serving:", "batch_occupancy:", "kv_occupancy:", "latency_us ttft:", "latency_us tpot:"]
        {
            assert!(metrics.contains(needle), "missing {needle:?} in {metrics}");
        }

        let report = server.shutdown().unwrap();
        assert!(report.conserves(), "{:?}", report.stats);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = start_sim_server();
        let mut s = TcpStream::connect(server.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for i in 0..3 {
            let body = format!(r#"{{"prompt":[{i}],"max_tokens":2}}"#);
            write!(
                s,
                "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
            s.flush().unwrap();
            let mut out = String::new();
            let mut buf = [0u8; 2048];
            while response_complete(&out) != Some(true) {
                let n = s.read(&mut buf).unwrap();
                assert!(n > 0, "server closed a keep-alive connection");
                out.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(out.starts_with("HTTP/1.1 200"), "request {i}: {out}");
        }
        drop(s);
        let report = server.shutdown().unwrap();
        assert_eq!(report.completed, 3);
        assert!(report.conserves());
    }

    #[test]
    fn shed_when_queue_full_returns_429() {
        use crate::overload::AdmissionConfig;
        let engine = SimStepEngine::new(
            KvPoolConfig { n_blocks: 64, block_tokens: 16 },
            vec![IterCost { base_s: 0.05, per_prefill_token_s: 0.0, per_decode_token_s: 0.0 }],
            97,
            42,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = HttpServer::start(
            listener,
            engine,
            ContinuousConfig {
                admission: AdmissionConfig { max_queue: 1, ..AdmissionConfig::default() },
                max_batch: 1,
                ..ContinuousConfig::default()
            },
            HttpServerConfig { vocab: 97, ..HttpServerConfig::default() },
            Telemetry::new(0),
            real_clock(),
        )
        .unwrap();
        // Flood more requests than queue(1) + batch(1) can hold; at
        // least one must come back 429, every connection gets *some*
        // answer.
        let mut threads = Vec::new();
        for i in 0..8 {
            let addr = server.addr;
            threads.push(std::thread::spawn(move || {
                let body = format!(r#"{{"prompt":[{i}],"max_tokens":2}}"#);
                let raw = format!(
                    "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                roundtrip(addr, &raw)
            }));
        }
        let mut codes = Vec::new();
        for t in threads {
            let resp = t.join().unwrap();
            assert!(!resp.is_empty(), "dropped connection");
            codes.push(resp.split_whitespace().nth(1).unwrap().to_string());
        }
        assert!(codes.iter().any(|c| c == "429"), "codes: {codes:?}");
        assert!(codes.iter().any(|c| c == "200"), "codes: {codes:?}");
        let report = server.shutdown().unwrap();
        assert!(report.conserves());
        assert_eq!(server_drops(&report), 0);
    }

    fn server_drops(_r: &ContinuousReport) -> u64 {
        0 // placeholder: drops are asserted via stats in the soak CLI
    }

    /// Split a chunked response into (headers, decoded body). Panics on
    /// malformed framing — that *is* the assertion.
    fn decode_chunked(raw: &str) -> (String, String) {
        let head_end = raw.find("\r\n\r\n").expect("headers");
        let head = raw[..head_end].to_string();
        let mut rest = &raw[head_end + 4..];
        let mut body = String::new();
        loop {
            let line_end = rest.find("\r\n").expect("chunk size line");
            let size = usize::from_str_radix(rest[..line_end].trim(), 16).expect("hex size");
            rest = &rest[line_end + 2..];
            if size == 0 {
                break;
            }
            body.push_str(&rest[..size]);
            assert_eq!(&rest[size..size + 2], "\r\n", "chunk terminator");
            rest = &rest[size + 2..];
        }
        (head, body)
    }

    #[test]
    fn streaming_completion_delivers_tokens_as_chunks() {
        let server = start_sim_server();
        let body = r#"{"prompt":[5,6,7],"max_tokens":4,"stream":true}"#;
        let raw = format!(
            "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let resp = roundtrip(server.addr, &raw);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let (head, body) = decode_chunked(&resp);
        assert!(
            head.to_ascii_lowercase().contains("transfer-encoding: chunked"),
            "{head}"
        );
        let lines: Vec<&str> = body.lines().collect();
        let expect = sim_oracle_tokens(42, 97, &[5, 6, 7], 4);
        assert_eq!(lines.len(), expect.len() + 1, "4 token lines + done: {body}");
        for (i, tok) in expect.iter().enumerate() {
            assert_eq!(lines[i], format!("{{\"index\":{i},\"token\":{tok}}}"), "{body}");
        }
        assert!(lines.last().unwrap().contains("\"done\":true"), "{body}");
        assert!(lines.last().unwrap().contains("\"completion_tokens\":4"), "{body}");
        let report = server.shutdown().unwrap();
        assert_eq!(report.completed, 1);
        assert!(report.conserves());
    }

    #[test]
    fn streamed_and_unstreamed_tokens_agree() {
        let server = start_sim_server();
        let plain = r#"{"prompt":[9,1],"max_tokens":3}"#;
        let streamed = r#"{"prompt":[9,1],"max_tokens":3,"stream":true}"#;
        let get = |body: &str| {
            roundtrip(
                server.addr,
                &format!(
                    "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            )
        };
        let plain_resp = get(plain);
        let stream_resp = get(streamed);
        let expect = sim_oracle_tokens(42, 97, &[9, 1], 3);
        let joined = expect.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",");
        assert!(plain_resp.contains(&format!("\"tokens\":[{joined}]")), "{plain_resp}");
        let (_, body) = decode_chunked(&stream_resp);
        for (i, tok) in expect.iter().enumerate() {
            assert!(
                body.contains(&format!("{{\"index\":{i},\"token\":{tok}}}")),
                "missing token {i} in {body}"
            );
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn shed_responses_carry_a_parseable_retry_after() {
        use crate::overload::AdmissionConfig;
        let engine = SimStepEngine::new(
            KvPoolConfig { n_blocks: 64, block_tokens: 16 },
            vec![IterCost { base_s: 0.05, per_prefill_token_s: 0.0, per_decode_token_s: 0.0 }],
            97,
            42,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = HttpServer::start(
            listener,
            engine,
            ContinuousConfig {
                admission: AdmissionConfig { max_queue: 1, ..AdmissionConfig::default() },
                max_batch: 1,
                ..ContinuousConfig::default()
            },
            HttpServerConfig { vocab: 97, ..HttpServerConfig::default() },
            Telemetry::new(0),
            real_clock(),
        )
        .unwrap();
        let mut threads = Vec::new();
        for i in 0..8 {
            let addr = server.addr;
            threads.push(std::thread::spawn(move || {
                let body = format!(r#"{{"prompt":[{i}],"max_tokens":2}}"#);
                let raw = format!(
                    "POST /v1/completions HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                roundtrip(addr, &raw)
            }));
        }
        let mut sheds = 0;
        for t in threads {
            let resp = t.join().unwrap();
            if resp.starts_with("HTTP/1.1 429") {
                sheds += 1;
                let retry = resp
                    .lines()
                    .find(|l| l.to_ascii_lowercase().starts_with("retry-after:"))
                    .unwrap_or_else(|| panic!("429 without Retry-After:\n{resp}"));
                let secs: u64 = retry.split(':').nth(1).unwrap().trim().parse().unwrap();
                assert!((1..=60).contains(&secs), "retry-after {secs} out of range");
            }
        }
        assert!(sheds > 0, "flood produced no 429s");
        server.shutdown().unwrap();
    }

    #[test]
    fn healthz_reports_epoch_restarts_and_queue() {
        let server = start_sim_server();
        let health = roundtrip(server.addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        for needle in ["\"status\":\"ok\"", "\"epoch\":0", "\"restarts\":0", "\"queued\":"] {
            assert!(health.contains(needle), "missing {needle} in {health}");
        }
        let metrics = roundtrip(server.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(metrics.contains("serving_dist: epoch=0 restarts=0"), "{metrics}");
        server.shutdown().unwrap();
    }

    #[test]
    fn stream_field_must_be_a_boolean() {
        let err = parse_completion(br#"{"prompt":[1],"stream":1}"#, 100, 64).unwrap_err();
        assert!(err.contains("stream") && err.contains("boolean"), "{err}");
        let c = parse_completion(br#"{"prompt":[1],"stream":true}"#, 100, 64).unwrap();
        assert!(c.stream);
    }
}
