//! Per-stage observability for the pipeline runtime.
//!
//! The paper evaluates its runtime through end-to-end latency and
//! throughput tables only (Tables 4–8); a production pipeline needs
//! *per-stage* visibility to find stragglers, validate the §4.1 cost
//! model against observed stage times, and feed the
//! [`supervisor`](crate::supervisor) real signals instead of heartbeats
//! alone. This module provides that layer:
//!
//! * **Lock-free metric recorders** ([`StageRecorder`]) — one per
//!   pipeline stage, holding log-bucketed latency histograms
//!   ([`LatencyHistogram`], p50/p95/p99 per phase), input-queue depth
//!   gauges with peak tracking, KV-cache occupancy, item/sequence
//!   counters and busy time. All counters are plain atomics, so workers
//!   never contend on a lock in the hot path.
//! * **Span-style structured tracing** ([`Span`]) of every micro-batch's
//!   lifecycle through every stage — `wait` (enqueue → dequeue),
//!   `compute`, and `send` — tagged with the generative phase
//!   (prefill/decode), the stage's bitwidths, and the global step id.
//! * **Two exporters**: [`Telemetry::to_chrome_trace`] emits Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev), and
//!   [`Telemetry::metrics_text`] renders a plain-text snapshot with
//!   per-stage percentiles, throughput, and the supervisor's restart and
//!   replan counters.
//!
//! The cost-model cross-check that compares these observed stage times
//! against the analytical prediction lives in `llmpq-cost`
//! (`fidelity::stage_crosscheck`), keeping this crate free of the cost
//! models; `llmpq-dist --trace-out/--metrics-out` wires the two
//! together so every distributed run doubles as a cost-model fidelity
//! experiment.

use crate::clock::{real_clock, Clock};
use llmpq_model::Phase;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two latency buckets: bucket 0 holds `0 µs`,
/// bucket `k ≥ 1` holds `[2^(k-1), 2^k)` µs. 40 buckets cover up to
/// ~2^39 µs ≈ 6 days, far beyond any run.
const N_BUCKETS: usize = 40;

/// A lock-free latency histogram over power-of-two microsecond buckets.
///
/// Recording is a handful of relaxed atomic adds; percentile queries
/// ([`LatencyHistogram::percentile`]) interpolate within the winning
/// bucket and clamp to the exact observed `[min, max]`, so single-sample
/// histograms report the sample itself. Querying while writers are
/// active yields a slightly stale but internally consistent-enough
/// snapshot (the exporters run after the pipeline drains).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

/// An immutable copy of a histogram's state, on which the percentile
/// math runs. Snapshots of different histograms can be merged to get
/// all-phase percentiles from per-phase recorders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; N_BUCKETS],
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values, µs.
    pub sum_us: u64,
    /// Smallest recorded value, µs (`u64::MAX` when empty).
    pub min_us: u64,
    /// Largest recorded value, µs (0 when empty).
    pub max_us: u64,
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

/// Inclusive value range covered by bucket `b`.
fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (b - 1);
        let hi = if b == N_BUCKETS - 1 { u64::MAX } else { (1u64 << b) - 1 };
        (lo, hi)
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in microseconds. Lock-free.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state for percentile queries and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; N_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            min_us: self.min_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }

    /// Percentile in microseconds; see [`HistogramSnapshot::percentile`].
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.snapshot().percentile(p)
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`HistogramSnapshot::merge`]).
    pub fn empty() -> Self {
        Self { buckets: [0; N_BUCKETS], count: 0, sum_us: 0, min_us: u64::MAX, max_us: 0 }
    }

    /// Combine two snapshots (e.g. prefill + decode → all phases).
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = [0u64; N_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i] + other.buckets[i];
        }
        Self {
            buckets,
            count: self.count + other.count,
            sum_us: self.sum_us + other.sum_us,
            min_us: self.min_us.min(other.min_us),
            max_us: self.max_us.max(other.max_us),
        }
    }

    /// Estimate the `p`-th percentile (`p ∈ [0, 1]`) in microseconds.
    ///
    /// Returns `None` for an empty histogram. The estimate interpolates
    /// linearly inside the winning power-of-two bucket and is clamped to
    /// the exact observed `[min, max]`, so a single-sample histogram
    /// returns that sample exactly, for every `p`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // 1-based rank of the order statistic we want.
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= seen + c {
                let (lo, hi) = bucket_bounds(b);
                let within = (rank - seen) as f64 / c as f64; // (0, 1]
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * within;
                return Some(est.clamp(self.min_us as f64, self.max_us as f64));
            }
            seen += c;
        }
        // Unreachable when counters are consistent; fall back to max.
        Some(self.max_us as f64)
    }

    /// Mean of the recorded samples, µs.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }
}

/// Lock-free per-stage metric recorder.
///
/// One lives per pipeline stage inside a [`Telemetry`]; the stage's
/// worker thread updates it with relaxed atomics on every work item.
#[derive(Debug)]
pub struct StageRecorder {
    /// Compute latency of prefill work items.
    pub prefill_latency: LatencyHistogram,
    /// Compute latency of decode work items.
    pub decode_latency: LatencyHistogram,
    /// Items currently sitting in (or in flight toward) this stage's
    /// input queue.
    queue_depth: AtomicI64,
    /// High-water mark of `queue_depth`.
    queue_peak: AtomicI64,
    /// Work items processed.
    items: AtomicU64,
    /// Sequence-forwards executed (items × sequences per item).
    seq_forwards: AtomicU64,
    /// Busy time, µs (compute only, excludes channel waits).
    busy_us: AtomicU64,
    /// Current KV-cache occupancy: cached positions summed over every
    /// in-flight sequence × local layers.
    kv_entries: AtomicU64,
    /// Times the supervisor restarted an attempt after this stage was
    /// implicated in a failure.
    restarts: AtomicU64,
}

impl Default for StageRecorder {
    fn default() -> Self {
        Self {
            prefill_latency: LatencyHistogram::new(),
            decode_latency: LatencyHistogram::new(),
            queue_depth: AtomicI64::new(0),
            queue_peak: AtomicI64::new(0),
            items: AtomicU64::new(0),
            seq_forwards: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            kv_entries: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        }
    }
}

impl StageRecorder {
    /// A work item was sent toward this stage.
    pub fn on_enqueue(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(d, Ordering::Relaxed);
    }

    /// The stage's worker picked an item off its input queue.
    pub fn on_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// The worker finished computing an item: record its latency under
    /// the right phase histogram and bump the work counters.
    pub fn on_compute(&self, phase: Phase, compute_us: u64, n_seqs: usize) {
        match phase {
            Phase::Prefill => self.prefill_latency.record(compute_us),
            Phase::Decode => self.decode_latency.record(compute_us),
        }
        self.items.fetch_add(1, Ordering::Relaxed);
        self.seq_forwards.fetch_add(n_seqs as u64, Ordering::Relaxed);
        self.busy_us.fetch_add(compute_us, Ordering::Relaxed);
    }

    /// Update the KV-occupancy gauge (cached positions × local layers).
    pub fn set_kv_entries(&self, entries: u64) {
        self.kv_entries.store(entries, Ordering::Relaxed);
    }

    /// Count one supervisor restart against this stage.
    pub fn on_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Work items processed.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// Sequence-forwards executed.
    pub fn seq_forwards(&self) -> u64 {
        self.seq_forwards.load(Ordering::Relaxed)
    }

    /// Busy (compute) seconds.
    pub fn busy_s(&self) -> f64 {
        self.busy_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// High-water mark of the input queue depth.
    pub fn queue_peak(&self) -> u64 {
        self.queue_peak.load(Ordering::Relaxed).max(0) as u64
    }

    /// Current KV-cache occupancy gauge.
    pub fn kv_entries(&self) -> u64 {
        self.kv_entries.load(Ordering::Relaxed)
    }

    /// Supervisor restarts attributed to this stage.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Combined prefill + decode latency distribution.
    pub fn latency_all(&self) -> HistogramSnapshot {
        self.prefill_latency.snapshot().merge(&self.decode_latency.snapshot())
    }
}

/// Immutable copy of one link's transfer counters — what a remote stage
/// ships home in its end-of-run report, and what the
/// `cost::fidelity` link cross-check consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes written to the link (frame headers included).
    pub bytes_tx: u64,
    /// Bytes read from the link (frame headers included).
    pub bytes_rx: u64,
    /// Frames written.
    pub frames_tx: u64,
    /// Frames read.
    pub frames_rx: u64,
    /// Microseconds spent serializing + writing outbound frames — the
    /// observed transfer time the α-β interconnect model predicts.
    pub comm_us: u64,
    /// Inbound frames rejected by checksum or framing validation.
    pub corrupt_frames: u64,
}

impl LinkStats {
    /// Observed outbound transfer time in seconds.
    pub fn comm_s(&self) -> f64 {
        self.comm_us as f64 / 1e6
    }
}

/// Lock-free transfer counters for one inter-stage link.
///
/// Link `i` is the edge *into* stage `i`: link 0 is master → stage 0,
/// link `n` (for an `n`-stage pipeline) is the last stage → master. The
/// sender of a link bumps its `tx` side, the receiver the `rx` side; in
/// a single-process run both live in the same [`Telemetry`], while in a
/// multi-process run each side counts locally and the master merges the
/// stage reports at shutdown ([`LinkRecorder::merge`]).
#[derive(Debug, Default)]
pub struct LinkRecorder {
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    frames_tx: AtomicU64,
    frames_rx: AtomicU64,
    comm_us: AtomicU64,
    corrupt_frames: AtomicU64,
}

impl LinkRecorder {
    /// One frame of `bytes` was written to the link.
    pub fn on_tx(&self, bytes: u64) {
        self.bytes_tx.fetch_add(bytes, Ordering::Relaxed);
        self.frames_tx.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame of `bytes` was read off the link.
    pub fn on_rx(&self, bytes: u64) {
        self.bytes_rx.fetch_add(bytes, Ordering::Relaxed);
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `us` microseconds of outbound serialize+write time.
    pub fn add_comm_us(&self, us: u64) {
        self.comm_us.fetch_add(us, Ordering::Relaxed);
    }

    /// An inbound frame failed checksum or framing validation.
    pub fn on_corrupt(&self) {
        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable copy of the counters.
    pub fn snapshot(&self) -> LinkStats {
        LinkStats {
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            comm_us: self.comm_us.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
        }
    }

    /// Fold a remote side's counters into this recorder (additive).
    pub fn merge(&self, s: &LinkStats) {
        self.bytes_tx.fetch_add(s.bytes_tx, Ordering::Relaxed);
        self.bytes_rx.fetch_add(s.bytes_rx, Ordering::Relaxed);
        self.frames_tx.fetch_add(s.frames_tx, Ordering::Relaxed);
        self.frames_rx.fetch_add(s.frames_rx, Ordering::Relaxed);
        self.comm_us.fetch_add(s.comm_us, Ordering::Relaxed);
        self.corrupt_frames.fetch_add(s.corrupt_frames, Ordering::Relaxed);
    }
}

/// One traced interval of a micro-batch's lifecycle on one pipeline
/// actor (the master, or a stage worker).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Trace thread id: 0 is the master, stage *s* is `s + 1`.
    pub tid: usize,
    /// Interval kind: `"wait"` (enqueue → dequeue), `"compute"`,
    /// `"send"`, `"sample"` (master-side logits + sampling), or
    /// `"comm"` (wire transfer of one frame on a TCP link).
    pub name: &'static str,
    /// Generative phase of the work item.
    pub phase: Phase,
    /// Start, µs since the telemetry epoch.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Global step id of the work item.
    pub step: u64,
    /// Micro-batch id of the work item.
    pub microbatch: usize,
    /// Bitwidths of the stage that produced the span (empty for the
    /// master).
    pub bits: Arc<str>,
}

impl Span {
    /// Pipeline stage this span ran on (`None` for the master).
    pub fn stage(&self) -> Option<usize> {
        self.tid.checked_sub(1)
    }
}

/// Shared observability hub for one pipeline run (plus its supervised
/// restarts). Create with [`Telemetry::new`], pass to
/// `run_pipeline_observed` / `run_pipeline_supervised_observed`, then
/// export with [`Telemetry::to_chrome_trace`] and
/// [`Telemetry::metrics_text`].
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    stages: Vec<StageRecorder>,
    /// Per-link transfer counters: `n_stages + 1` edges, link `i` being
    /// the edge into stage `i` and the last the return to the master.
    links: Vec<LinkRecorder>,
    spans: Mutex<Vec<Span>>,
    restarts: AtomicU64,
    replans: AtomicU64,
    // Plan provenance (see `llm_pq::PlanOrigin`): how many installed
    // plans came from the exact solver, the Algorithm-2 heuristic
    // fallback, and the warm-started incremental path.
    plans_ilp: AtomicU64,
    plans_heuristic: AtomicU64,
    plans_warm: AtomicU64,
    // Fleet-health alarm: replans refused because the surviving fleet
    // cannot hold the model even at the lowest rung (the old plan was
    // held instead).
    fleet_infeasible: AtomicU64,
    retried_batches: AtomicU64,
    tokens: AtomicU64,
    // Overload-control signals (see `crate::overload`).
    shed: AtomicU64,
    expired: AtomicU64,
    preempted: AtomicU64,
    rung: AtomicU64,
    rung_peak: AtomicU64,
    queue_pressure_milli: AtomicU64,
    queue_pressure_peak_milli: AtomicU64,
    // Live plan-migration signals (see `crate::migrate`).
    swap_latency: LatencyHistogram,
    epoch: AtomicU64,
    kv_migrated_bytes: AtomicU64,
    swaps: AtomicU64,
    migration_aborts: AtomicU64,
    // Continuous-batching serving signals (see `crate::serve`).
    ttft: LatencyHistogram,
    tpot: LatencyHistogram,
    request_latency: LatencyHistogram,
    batch_occupancy: AtomicU64,
    batch_occupancy_peak: AtomicU64,
    kv_occupancy_milli: AtomicU64,
    kv_occupancy_peak_milli: AtomicU64,
    inflight: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("stages", &self.stages.len())
            .field("links", &self.links.len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry for a pipeline of `n_stages` stages. Replanning after
    /// device loss only ever *shrinks* the pipeline, so the initial
    /// stage count is the high-water mark. Timestamps are wall-clock,
    /// with epoch = creation.
    pub fn new(n_stages: usize) -> Arc<Self> {
        Self::with_clock(n_stages, real_clock())
    }

    /// Telemetry stamping spans from `clock` — under [`crate::simnet`]
    /// every span carries a *virtual* timestamp, so traces from a
    /// simulated run are deterministic too.
    pub fn with_clock(n_stages: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            clock,
            stages: (0..n_stages).map(|_| StageRecorder::default()).collect(),
            links: (0..=n_stages).map(|_| LinkRecorder::default()).collect(),
            spans: Mutex::new(Vec::new()),
            restarts: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            plans_ilp: AtomicU64::new(0),
            plans_heuristic: AtomicU64::new(0),
            plans_warm: AtomicU64::new(0),
            fleet_infeasible: AtomicU64::new(0),
            retried_batches: AtomicU64::new(0),
            tokens: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            preempted: AtomicU64::new(0),
            rung: AtomicU64::new(0),
            rung_peak: AtomicU64::new(0),
            queue_pressure_milli: AtomicU64::new(0),
            queue_pressure_peak_milli: AtomicU64::new(0),
            swap_latency: LatencyHistogram::new(),
            epoch: AtomicU64::new(0),
            kv_migrated_bytes: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            migration_aborts: AtomicU64::new(0),
            ttft: LatencyHistogram::new(),
            tpot: LatencyHistogram::new(),
            request_latency: LatencyHistogram::new(),
            batch_occupancy: AtomicU64::new(0),
            batch_occupancy_peak: AtomicU64::new(0),
            kv_occupancy_milli: AtomicU64::new(0),
            kv_occupancy_peak_milli: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        })
    }

    /// Microseconds elapsed since this telemetry's clock epoch.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Number of stage recorders.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// The recorder of stage `i`, if in range.
    pub fn stage(&self, i: usize) -> Option<&StageRecorder> {
        self.stages.get(i)
    }

    /// Number of link recorders (`n_stages + 1`).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The transfer counters of link `i` (the edge *into* stage `i`;
    /// the last link is the return edge to the master), if in range.
    pub fn link(&self, i: usize) -> Option<&LinkRecorder> {
        self.links.get(i)
    }

    /// Snapshot of every link's counters, in link order.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.iter().map(LinkRecorder::snapshot).collect()
    }

    /// Append a span to the trace.
    pub fn record_span(&self, span: Span) {
        self.spans.lock().push(span);
    }

    /// Copy of all spans recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Count one supervisor restart (optionally against the stage the
    /// failure implicated).
    pub fn note_restart(&self, stage: Option<usize>) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = stage.and_then(|s| self.stages.get(s)) {
            s.on_restart();
        }
    }

    /// Count one replan-on-device-loss.
    pub fn note_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the provenance of an installed plan. `origin` is the
    /// `Display` form of `llm_pq::PlanOrigin` (`"ilp"`, `"heuristic"`,
    /// `"warm-start"`) — stringly typed so the runtime crate stays
    /// decoupled from the solver crate's types; unknown strings count
    /// as heuristic (the conservative bucket).
    pub fn note_plan_origin(&self, origin: &str) {
        match origin {
            "ilp" => self.plans_ilp.fetch_add(1, Ordering::Relaxed),
            "warm-start" => self.plans_warm.fetch_add(1, Ordering::Relaxed),
            _ => self.plans_heuristic.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Raise the fleet-health alarm: a replan was refused because the
    /// survivors cannot hold the model; the old plan stays in force.
    pub fn note_fleet_infeasible(&self) {
        self.fleet_infeasible.fetch_add(1, Ordering::Relaxed);
    }

    /// Plans whose provenance was the exact solver.
    pub fn plans_ilp(&self) -> u64 {
        self.plans_ilp.load(Ordering::Relaxed)
    }

    /// Plans whose provenance was the Algorithm-2 heuristic fallback.
    pub fn plans_heuristic(&self) -> u64 {
        self.plans_heuristic.load(Ordering::Relaxed)
    }

    /// Plans whose provenance was the warm-started incremental solver.
    pub fn plans_warm(&self) -> u64 {
        self.plans_warm.load(Ordering::Relaxed)
    }

    /// Fleet-infeasible alarms raised so far.
    pub fn fleet_infeasible(&self) -> u64 {
        self.fleet_infeasible.load(Ordering::Relaxed)
    }

    /// Count one retried batch (online serving; see
    /// `llmpq_workload::OnlineStats::retried`).
    pub fn note_retried_batch(&self) {
        self.retried_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count generated tokens (for tokens/s in the snapshot).
    pub fn add_tokens(&self, n: u64) {
        self.tokens.fetch_add(n, Ordering::Relaxed);
    }

    /// Supervisor restarts observed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Replans observed so far.
    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// Retried batches observed so far.
    pub fn retried_batches(&self) -> u64 {
        self.retried_batches.load(Ordering::Relaxed)
    }

    /// Generated tokens observed so far.
    pub fn tokens(&self) -> u64 {
        self.tokens.load(Ordering::Relaxed)
    }

    /// Count requests turned away by admission control.
    pub fn note_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Count admitted requests dropped after their deadline or queue
    /// timeout expired.
    pub fn note_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the shed counter with an authoritative total — for
    /// loops (like `overload::serve`) that own the canonical count and
    /// mirror it into the hub rather than incrementing in two places.
    pub fn sync_shed(&self, total: u64) {
        self.shed.store(total, Ordering::Relaxed);
    }

    /// Overwrite the expired counter with an authoritative total.
    pub fn sync_expired(&self, total: u64) {
        self.expired.store(total, Ordering::Relaxed);
    }

    /// Count one KV-pressure preemption (the batch is requeued, not
    /// lost).
    pub fn note_preempted(&self) {
        self.preempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests expired so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// KV-pressure preemptions so far.
    pub fn preempted(&self) -> u64 {
        self.preempted.load(Ordering::Relaxed)
    }

    /// Set the degradation-ladder rung gauge (0 = normal quality).
    pub fn set_rung(&self, rung: usize) {
        self.rung.store(rung as u64, Ordering::Relaxed);
        self.rung_peak.fetch_max(rung as u64, Ordering::Relaxed);
    }

    /// Current degradation-ladder rung.
    pub fn rung(&self) -> usize {
        self.rung.load(Ordering::Relaxed) as usize
    }

    /// Deepest rung reached so far.
    pub fn rung_peak(&self) -> usize {
        self.rung_peak.load(Ordering::Relaxed) as usize
    }

    /// Set the admission-queue pressure gauge (`pending / max_queue`,
    /// clamped to `[0, 1]`; stored in milli-units).
    pub fn set_queue_pressure(&self, pressure: f64) {
        let milli = (pressure.clamp(0.0, 1.0) * 1000.0).round() as u64;
        self.queue_pressure_milli.store(milli, Ordering::Relaxed);
        self.queue_pressure_peak_milli.fetch_max(milli, Ordering::Relaxed);
    }

    /// Current admission-queue pressure in `[0, 1]`.
    pub fn queue_pressure(&self) -> f64 {
        self.queue_pressure_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// High-water mark of the queue-pressure gauge.
    pub fn queue_pressure_peak(&self) -> f64 {
        self.queue_pressure_peak_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Count one committed live plan swap: its commit-window latency and
    /// the KV bytes that crossed the wire (or moved locally) for it.
    pub fn note_swap(&self, latency_us: u64, kv_bytes: u64) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.swap_latency.record(latency_us);
        self.kv_migrated_bytes.fetch_add(kv_bytes, Ordering::Relaxed);
    }

    /// Count one migration attempt that aborted back to the old plan.
    pub fn note_migration_aborted(&self) {
        self.migration_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the active plan-epoch gauge (bumps on every committed swap).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Committed live swaps so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Aborted migration attempts so far.
    pub fn migration_aborts(&self) -> u64 {
        self.migration_aborts.load(Ordering::Relaxed)
    }

    /// Active plan epoch (0 = the plan the pipeline started on).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// KV bytes migrated across all committed swaps.
    pub fn kv_migrated_bytes(&self) -> u64 {
        self.kv_migrated_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the swap commit-window latency histogram.
    pub fn swap_latency(&self) -> HistogramSnapshot {
        self.swap_latency.snapshot()
    }

    /// Record one request's time-to-first-token (µs).
    pub fn record_ttft_us(&self, us: u64) {
        self.ttft.record(us);
    }

    /// Record one request's mean time-per-output-token (µs).
    pub fn record_tpot_us(&self, us: u64) {
        self.tpot.record(us);
    }

    /// Record one request's arrival→completion latency (µs).
    pub fn record_request_us(&self, us: u64) {
        self.request_latency.record(us);
    }

    /// Snapshot of the time-to-first-token histogram.
    pub fn ttft(&self) -> HistogramSnapshot {
        self.ttft.snapshot()
    }

    /// Snapshot of the time-per-output-token histogram.
    pub fn tpot(&self) -> HistogramSnapshot {
        self.tpot.snapshot()
    }

    /// Snapshot of the per-request sojourn histogram.
    pub fn request_latency(&self) -> HistogramSnapshot {
        self.request_latency.snapshot()
    }

    /// Set the continuous-batching occupancy gauge: sequences in the
    /// in-flight batch right now.
    pub fn set_batch_occupancy(&self, n: u64) {
        self.batch_occupancy.store(n, Ordering::Relaxed);
        self.batch_occupancy_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Sequences in the in-flight batch.
    pub fn batch_occupancy(&self) -> u64 {
        self.batch_occupancy.load(Ordering::Relaxed)
    }

    /// High-water mark of the batch-occupancy gauge.
    pub fn batch_occupancy_peak(&self) -> u64 {
        self.batch_occupancy_peak.load(Ordering::Relaxed)
    }

    /// Set the paged-KV pool occupancy gauge (fraction of blocks in
    /// use, clamped to `[0, 1]`; stored in milli-units).
    pub fn set_kv_occupancy(&self, frac: f64) {
        let milli = (frac.clamp(0.0, 1.0) * 1000.0).round() as u64;
        self.kv_occupancy_milli.store(milli, Ordering::Relaxed);
        self.kv_occupancy_peak_milli.fetch_max(milli, Ordering::Relaxed);
    }

    /// KV pool occupancy in `[0, 1]`.
    pub fn kv_occupancy(&self) -> f64 {
        self.kv_occupancy_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// High-water mark of the KV-occupancy gauge.
    pub fn kv_occupancy_peak(&self) -> f64 {
        self.kv_occupancy_peak_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Set the requests-in-system gauge (queued + in flight).
    pub fn set_inflight(&self, n: u64) {
        self.inflight.store(n, Ordering::Relaxed);
    }

    /// Requests in the system (queued + in flight).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Spans grouped per trace thread, sorted by start time, with
    /// overlaps from µs rounding clamped away — the invariant the trace
    /// tests assert: per tid, spans are monotonically ordered and
    /// non-overlapping.
    pub fn ordered_spans(&self) -> Vec<(usize, Vec<Span>)> {
        let spans = self.spans.lock();
        let mut tids: Vec<usize> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.into_iter()
            .map(|tid| {
                let mut row: Vec<Span> = spans.iter().filter(|s| s.tid == tid).cloned().collect();
                row.sort_by_key(|s| (s.ts_us, s.step));
                let mut prev_end = 0u64;
                for s in &mut row {
                    if s.ts_us < prev_end {
                        s.ts_us = prev_end;
                    }
                    prev_end = s.ts_us + s.dur_us;
                }
                (tid, row)
            })
            .collect()
    }

    /// Export the trace as Chrome `trace_event` JSON (the "JSON Array
    /// Format" with a `traceEvents` wrapper), loadable in
    /// `chrome://tracing` and Perfetto. Complete `"ph":"X"` duration
    /// events; one metadata event names each thread.
    pub fn to_chrome_trace(&self) -> String {
        let rows = self.ordered_spans();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&ev);
        };
        for (tid, row) in &rows {
            let tname = match tid {
                0 => "master".to_string(),
                t => format!("stage {}", t - 1),
            };
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{tname}\"}}}}"
                ),
            );
            for s in row {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"step\":{},\"microbatch\":{},\"phase\":\"{}\",\"bits\":\"{}\"}}}}",
                        s.name,
                        s.phase.name(),
                        s.tid,
                        s.ts_us,
                        s.dur_us,
                        s.step,
                        s.microbatch,
                        s.phase.name(),
                        s.bits,
                    ),
                );
            }
        }
        out.push_str("\n]}");
        out
    }

    /// Render the plain-text metrics snapshot: wall clock, tokens/s,
    /// restart/replan/retry counters, and per-stage p50/p95/p99 latency
    /// (overall and per phase), queue peaks and KV occupancy.
    pub fn metrics_text(&self) -> String {
        let wall_s = self.clock.now().as_secs_f64();
        let tokens = self.tokens();
        let mut out = String::from("# llmpq runtime telemetry snapshot\n");
        out.push_str(&format!("wall_s: {wall_s:.4}\n"));
        out.push_str(&format!("tokens: {tokens}\n"));
        out.push_str(&format!(
            "tokens_per_s: {:.2}\n",
            if wall_s > 0.0 { tokens as f64 / wall_s } else { 0.0 }
        ));
        out.push_str(&format!("restarts: {}\n", self.restarts()));
        out.push_str(&format!("replans: {}\n", self.replans()));
        out.push_str(&format!(
            "plan_origin: ilp={} heuristic={} warm-start={}\n",
            self.plans_ilp(),
            self.plans_heuristic(),
            self.plans_warm()
        ));
        out.push_str(&format!("fleet_infeasible_alarms: {}\n", self.fleet_infeasible()));
        out.push_str(&format!("retried_batches: {}\n", self.retried_batches()));
        out.push_str(&format!("shed: {}\n", self.shed()));
        out.push_str(&format!("expired: {}\n", self.expired()));
        out.push_str(&format!("preempted: {}\n", self.preempted()));
        out.push_str(&format!("rung: {} (peak {})\n", self.rung(), self.rung_peak()));
        out.push_str(&format!(
            "queue_pressure: {:.3} (peak {:.3})\n",
            self.queue_pressure(),
            self.queue_pressure_peak()
        ));
        out.push_str(&format!("plan_epoch: {}\n", self.epoch()));
        out.push_str(&format!(
            "plan_swaps: {} (aborted {})\n",
            self.swaps(),
            self.migration_aborts()
        ));
        out.push_str(&format!("kv_migrated_bytes: {}\n", self.kv_migrated_bytes()));
        let fmt_hist = |label: &str, h: &HistogramSnapshot| -> String {
            match h.percentile(0.5) {
                None => format!("  latency_us {label}: (no samples)\n"),
                Some(p50) => format!(
                    "  latency_us {label}: p50={:.0} p95={:.0} p99={:.0} mean={:.0} max={}\n",
                    p50,
                    h.percentile(0.95).unwrap_or(0.0),
                    h.percentile(0.99).unwrap_or(0.0),
                    h.mean().unwrap_or(0.0),
                    h.max_us,
                ),
            }
        };
        out.push_str(&fmt_hist("plan_swap", &self.swap_latency()));
        out.push_str("serving:\n");
        out.push_str(&format!("  inflight: {}\n", self.inflight()));
        out.push_str(&format!(
            "  batch_occupancy: {} (peak {})\n",
            self.batch_occupancy(),
            self.batch_occupancy_peak()
        ));
        out.push_str(&format!(
            "  kv_occupancy: {:.3} (peak {:.3})\n",
            self.kv_occupancy(),
            self.kv_occupancy_peak()
        ));
        out.push_str(&fmt_hist("ttft", &self.ttft()));
        out.push_str(&fmt_hist("tpot", &self.tpot()));
        out.push_str(&fmt_hist("request", &self.request_latency()));
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "stage {i}: items={} seq_forwards={} busy_s={:.4} queue_peak={} kv_entries={} restarts={}\n",
                s.items(),
                s.seq_forwards(),
                s.busy_s(),
                s.queue_peak(),
                s.kv_entries(),
                s.restarts(),
            ));
            out.push_str(&fmt_hist("all", &s.latency_all()));
            out.push_str(&fmt_hist("prefill", &s.prefill_latency.snapshot()));
            out.push_str(&fmt_hist("decode", &s.decode_latency.snapshot()));
        }
        for (i, l) in self.links.iter().enumerate() {
            let s = l.snapshot();
            out.push_str(&format!(
                "link {i}: bytes_tx={} bytes_rx={} frames_tx={} frames_rx={} comm_s={:.6} corrupt={}\n",
                s.bytes_tx, s.bytes_rx, s.frames_tx, s.frames_rx, s.comm_s(), s.corrupt_frames,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.snapshot().mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(1234);
        for p in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(1234.0), "p={p}");
        }
        assert_eq!(h.snapshot().mean(), Some(1234.0));
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0.0));
        let s = h.snapshot();
        assert_eq!((s.min_us, s.max_us), (0, 0));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::new();
        for v in [3u64, 17, 90, 160, 900, 4_000, 22_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0.0f64;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = s.percentile(p).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            assert!(v >= s.min_us as f64 && v <= s.max_us as f64);
            prev = v;
        }
        // The p100 estimate must sit in the max's bucket (within 2× of
        // the true max, the log-bucket resolution).
        assert!(s.percentile(1.0).unwrap() >= 100_000.0 / 2.0);
    }

    #[test]
    fn uniform_samples_give_sane_median() {
        // 100 samples of exactly 1000 µs: every percentile is within the
        // [512, 1023] bucket, clamped to the exact observed bounds.
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        assert_eq!(h.percentile(0.5), Some(1000.0));
        assert_eq!(h.percentile(0.99), Some(1000.0));
    }

    #[test]
    fn skewed_samples_separate_p50_from_p99() {
        // 98 fast samples and 2 slow ones: p50 stays fast, p99 slow.
        let h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(100);
        }
        h.record(50_000);
        h.record(60_000);
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert_eq!(p50, 100.0);
        assert!(p99 >= 32_768.0, "p99 must land in the slow tail, got {p99}");
    }

    #[test]
    fn merge_combines_distributions() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(100);
            b.record(10_000);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 20);
        assert_eq!(m.min_us, 100);
        assert_eq!(m.max_us, 10_000);
        assert!(m.percentile(0.25).unwrap() <= 127.0);
        assert!(m.percentile(0.95).unwrap() >= 8192.0);
    }

    #[test]
    fn bucket_bounds_partition_the_axis() {
        // Every value belongs to exactly the bucket whose bounds contain
        // it.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2] {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(v >= lo && v <= hi, "{v} not in bucket {b} [{lo}, {hi}]");
        }
    }

    #[test]
    fn stage_recorder_tracks_queue_peak() {
        let r = StageRecorder::default();
        r.on_enqueue();
        r.on_enqueue();
        r.on_enqueue();
        r.on_dequeue();
        r.on_enqueue();
        assert_eq!(r.queue_peak(), 3);
    }

    #[test]
    fn recorder_routes_phases_to_their_histograms() {
        let r = StageRecorder::default();
        r.on_compute(Phase::Prefill, 500, 2);
        r.on_compute(Phase::Decode, 50, 2);
        r.on_compute(Phase::Decode, 60, 2);
        assert_eq!(r.prefill_latency.count(), 1);
        assert_eq!(r.decode_latency.count(), 2);
        assert_eq!(r.items(), 3);
        assert_eq!(r.seq_forwards(), 6);
        assert!((r.busy_s() - 610e-6).abs() < 1e-12);
        assert_eq!(r.latency_all().count, 3);
    }

    #[test]
    fn ordered_spans_sort_and_declamp_overlaps() {
        let tel = Telemetry::new(1);
        let span = |ts, dur, step| Span {
            tid: 1,
            name: "compute",
            phase: Phase::Decode,
            ts_us: ts,
            dur_us: dur,
            step,
            microbatch: 0,
            bits: Arc::from("int8"),
        };
        tel.record_span(span(100, 50, 2));
        tel.record_span(span(0, 120, 1)); // overlaps the first by 20 µs
        let rows = tel.ordered_spans();
        assert_eq!(rows.len(), 1);
        let row = &rows[0].1;
        assert_eq!(row[0].ts_us, 0);
        assert_eq!(row[1].ts_us, 120, "clamped to the previous span's end");
        assert!(row[0].ts_us + row[0].dur_us <= row[1].ts_us);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_thread_names() {
        let tel = Telemetry::new(2);
        tel.record_span(Span {
            tid: 1,
            name: "compute",
            phase: Phase::Prefill,
            ts_us: 10,
            dur_us: 40,
            step: 0,
            microbatch: 0,
            bits: Arc::from("int4,fp16"),
        });
        let json = tel.to_chrome_trace();
        let v = serde_json::parse_value(&json).expect("valid JSON");
        let serde::Value::Obj(pairs) = v else { panic!("object expected") };
        let events = pairs
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let serde::Value::Arr(evs) = events else { panic!("array expected") };
        assert_eq!(evs.len(), 2, "one metadata + one X event");
    }

    #[test]
    fn metrics_text_reports_percentiles_and_counters() {
        let tel = Telemetry::new(1);
        tel.stage(0).unwrap().on_compute(Phase::Decode, 777, 1);
        tel.add_tokens(42);
        tel.note_restart(Some(0));
        tel.note_replan();
        let text = tel.metrics_text();
        assert!(text.contains("p50=777"), "{text}");
        assert!(text.contains("p95=777") && text.contains("p99=777"));
        assert!(text.contains("tokens: 42"));
        assert!(text.contains("restarts: 1"));
        assert!(text.contains("replans: 1"));
        assert!(text.contains("latency_us prefill: (no samples)"));
    }

    #[test]
    fn overload_gauges_track_peaks() {
        let tel = Telemetry::new(1);
        tel.note_shed(3);
        tel.note_expired(2);
        tel.note_preempted();
        tel.set_rung(2);
        tel.set_rung(1);
        tel.set_queue_pressure(0.75);
        tel.set_queue_pressure(0.25);
        assert_eq!(tel.shed(), 3);
        assert_eq!(tel.expired(), 2);
        assert_eq!(tel.preempted(), 1);
        assert_eq!(tel.rung(), 1);
        assert_eq!(tel.rung_peak(), 2, "peak survives stepping back up");
        assert!((tel.queue_pressure() - 0.25).abs() < 1e-9);
        assert!((tel.queue_pressure_peak() - 0.75).abs() < 1e-9);
        let text = tel.metrics_text();
        assert!(text.contains("shed: 3"), "{text}");
        assert!(text.contains("rung: 1 (peak 2)"), "{text}");
        assert!(text.contains("queue_pressure: 0.250 (peak 0.750)"), "{text}");
    }

    #[test]
    fn queue_pressure_is_clamped_to_unit_interval() {
        let tel = Telemetry::new(1);
        tel.set_queue_pressure(7.3);
        assert_eq!(tel.queue_pressure(), 1.0);
        tel.set_queue_pressure(-1.0);
        assert_eq!(tel.queue_pressure(), 0.0);
        assert_eq!(tel.queue_pressure_peak(), 1.0);
    }

    #[test]
    fn link_recorders_count_and_merge() {
        let tel = Telemetry::new(2);
        assert_eq!(tel.n_links(), 3, "n_stages + 1 edges");
        let l0 = tel.link(0).unwrap();
        l0.on_tx(100);
        l0.on_tx(50);
        l0.on_rx(70);
        l0.add_comm_us(1_500);
        l0.on_corrupt();
        let s = l0.snapshot();
        assert_eq!((s.bytes_tx, s.frames_tx), (150, 2));
        assert_eq!((s.bytes_rx, s.frames_rx), (70, 1));
        assert_eq!(s.comm_us, 1_500);
        assert_eq!(s.corrupt_frames, 1);
        assert!((s.comm_s() - 0.0015).abs() < 1e-12);
        // Merging a remote report is additive.
        l0.merge(&s);
        assert_eq!(l0.snapshot().bytes_tx, 300);
        assert!(tel.link(3).is_none());
        let text = tel.metrics_text();
        assert!(text.contains("link 0: bytes_tx=300"), "{text}");
        assert!(text.contains("link 2: bytes_tx=0"), "{text}");
    }

    #[test]
    fn restart_attribution_is_bounds_checked() {
        let tel = Telemetry::new(1);
        tel.note_restart(Some(7)); // out of range: global counter only
        assert_eq!(tel.restarts(), 1);
        assert_eq!(tel.stage(0).unwrap().restarts(), 0);
    }
}
