//! Acceptance tests for the deterministic simulation harness
//! (`llmpq_runtime::simnet`):
//!
//! * fault-free runs are bit-identical to the sequential oracle;
//! * the same seed yields a byte-identical event trace and verdict
//!   across consecutive runs;
//! * a seed sweep over the master + 2-stage protocol is deterministic
//!   and violation-free;
//! * a deliberately injected admission-conservation bug is caught by
//!   the invariant checker and shrunk to a minimal (≤ 5 events,
//!   actually 1) replayable JSON counterexample.

use llmpq_runtime::{
    run_sim, seed_sweep, shrink_fault_plan, SimConfig, SimCrash, SimFaultKind, SimFaultPlan,
    SimLinkEvent, SimPartition,
};

fn cfg() -> SimConfig {
    SimConfig::default()
}

#[test]
fn fault_free_run_matches_oracle() {
    let report = run_sim(&cfg(), &SimFaultPlan::none());
    assert!(report.ok(), "violations: {:?}\ntrace:\n{}", report.violations, report.trace_text());
    assert!(report.tokens.is_some(), "fault-free run must produce tokens");
    assert_eq!(report.restarts, 0);
    assert_eq!(report.error, None);
    assert!(report.admission.conserves(report.pending));
    // Token correctness against the oracle is itself an invariant; a
    // passing verdict *is* the bit-identity assertion. Sanity-check the
    // shape anyway.
    let tokens = report.tokens.unwrap();
    assert_eq!(tokens.len(), cfg().prompts.len());
    assert!(tokens.iter().all(|t| t.len() == cfg().n_generate));
}

#[test]
fn same_seed_same_trace_byte_for_byte() {
    // A schedule with a crash-and-restart plus link noise: plenty of
    // nondeterminism surface if the scheduler had any.
    let plan = SimFaultPlan {
        link_events: vec![
            SimLinkEvent { link: 1, after_frames: 2, kind: SimFaultKind::Delay { us: 40_000 } },
            SimLinkEvent { link: 2, after_frames: 1, kind: SimFaultKind::Duplicate },
        ],
        partitions: vec![SimPartition { link: 0, at_us: 300, heal_at_us: Some(90_000) }],
        crashes: vec![SimCrash { stage: 1, at_us: 250, restart_after_us: Some(60_000) }],
        ..SimFaultPlan::none()
    };
    let a = run_sim(&cfg(), &plan);
    let b = run_sim(&cfg(), &plan);
    assert_eq!(a.trace_text(), b.trace_text(), "same seed must give a byte-identical trace");
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.tokens, b.tokens);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.final_virtual_us, b.final_virtual_us);
    assert!(a.ok(), "violations: {:?}\ntrace:\n{}", a.violations, a.trace_text());
}

#[test]
fn seed_sweep_is_deterministic_and_violation_free() {
    let c = cfg();
    let a = seed_sweep(&c, 0, 40);
    let b = seed_sweep(&c, 0, 40);
    let aj = serde_json::to_string(&a).unwrap();
    let bj = serde_json::to_string(&b).unwrap();
    assert_eq!(aj, bj, "two consecutive sweeps must agree byte-for-byte");
    assert!(
        a.ok(),
        "sweep found violations: {:?}",
        a.failures.iter().map(|f| (f.seed, f.violations.clone())).collect::<Vec<_>>()
    );
    // The sweep must actually exercise faults, not vacuously pass.
    assert!(a.runs_with_faults > 20, "only {} runs had faults", a.runs_with_faults);
    assert!(a.runs_with_restarts > 0, "no run recovered through a restart");
}

#[test]
fn injected_conservation_bug_is_caught_and_shrunk() {
    let mut c = cfg();
    c.inject_conservation_bug = true;
    // A crash forces one restart, which triggers the deliberate
    // accounting bug; the other events are noise the shrinker must shed.
    let plan = SimFaultPlan {
        link_events: vec![
            SimLinkEvent { link: 0, after_frames: 5, kind: SimFaultKind::Delay { us: 10_000 } },
            SimLinkEvent { link: 3, after_frames: 0, kind: SimFaultKind::Duplicate },
            SimLinkEvent { link: 2, after_frames: 4, kind: SimFaultKind::Delay { us: 5_000 } },
        ],
        partitions: vec![SimPartition { link: 4, at_us: 150, heal_at_us: Some(40_000) }],
        crashes: vec![SimCrash { stage: 0, at_us: 200, restart_after_us: Some(50_000) }],
        ..SimFaultPlan::none()
    };
    let report = run_sim(&c, &plan);
    assert!(
        report.violations.iter().any(|v| v.contains("conservation")),
        "checker missed the injected bug: {:?}\ntrace:\n{}",
        report.violations,
        report.trace_text()
    );

    let minimized = shrink_fault_plan(&c, &plan);
    assert!(minimized.event_count() <= 5, "shrink left {} events", minimized.event_count());
    assert_eq!(
        minimized.event_count(),
        1,
        "the crash alone reproduces; shrink kept: {}",
        minimized.to_json()
    );

    // The JSON counterexample replays: parse it back and reproduce.
    let replayed = SimFaultPlan::from_json(&minimized.to_json()).expect("replayable JSON");
    assert_eq!(replayed, minimized);
    let rerun = run_sim(&c, &replayed);
    assert!(
        rerun.violations.iter().any(|v| v.contains("conservation")),
        "minimized schedule must still reproduce the violation"
    );

    // Without the dev hook the same schedule is clean: the checker
    // reacted to the bug, not to the faults.
    let clean = run_sim(&cfg(), &plan);
    assert!(clean.ok(), "violations without the hook: {:?}", clean.violations);
}


// --- live plan migration under simulated faults -------------------------

#[test]
fn fault_free_migration_commits_and_ships_kv() {
    let c = SimConfig::migration_default();
    let report = run_sim(&c, &SimFaultPlan::none());
    assert!(report.ok(), "violations: {:?}\ntrace:\n{}", report.violations, report.trace_text());
    assert_eq!(report.restarts, 0);
    assert_eq!(report.swaps.len(), 1, "exactly one swap scheduled");
    let swap = &report.swaps[0];
    assert!(swap.committed, "fault-free migration must commit: {:?}", swap.reason);
    assert_eq!(swap.at_token, 2);
    assert!(swap.kv_bytes > 0, "a repartition swap must ship KV slices");
    // Every admitted request finishes full-length: zero dropped requests.
    let tokens = report.tokens.expect("committed run produces tokens");
    assert_eq!(tokens.len(), c.prompts.len());
    assert!(tokens.iter().all(|t| t.len() == c.n_generate));
    // The committed target (all-Int4) is visible in token space.
    let mut plain = c.clone();
    plain.migration = None;
    let without = run_sim(&plain, &SimFaultPlan::none());
    assert_ne!(Some(&tokens), without.tokens.as_ref(), "commit must change the output");
}

#[test]
fn mid_swap_crash_recovers_without_dropping_requests() {
    let c = SimConfig::migration_default();
    // 350 virtual µs is inside the prepare/commit window (the swap
    // proposes ~200µs in and finishes the handshake by ~600µs).
    let plan = SimFaultPlan {
        crashes: vec![SimCrash { stage: 1, at_us: 350, restart_after_us: Some(20_000) }],
        ..SimFaultPlan::none()
    };
    let report = run_sim(&c, &plan);
    assert!(report.ok(), "violations: {:?}\ntrace:\n{}", report.violations, report.trace_text());
    assert!(report.restarts >= 1, "the crash must force a restart");
    assert!(report.error.is_none(), "the run must recover, not fail over");
    let tokens = report.tokens.expect("recovered run completes every request");
    assert!(tokens.iter().all(|t| t.len() == c.n_generate), "no request may lose tokens");
    assert!(
        report.swaps.iter().any(|s| s.committed),
        "recovery re-enters the swap path and still commits: {:?}",
        report.swaps
    );
}

#[test]
fn duplicated_kv_chunk_frames_do_not_corrupt_the_cache() {
    // Regression: a transport-duplicated KvChunk frame arriving after
    // its slice assembled used to re-open the slice, and the worker
    // appended the same KV rows twice — tokens then matched no legal
    // swap history. Found by the migration seed sweep (seed 262),
    // shrunk to this one-event schedule.
    let c = SimConfig::migration_default();
    let plan = SimFaultPlan {
        link_events: vec![SimLinkEvent {
            link: 0,
            after_frames: 4,
            kind: SimFaultKind::Duplicate,
        }],
        ..SimFaultPlan::none()
    };
    let report = run_sim(&c, &plan);
    assert!(report.ok(), "violations: {:?}\ntrace:\n{}", report.violations, report.trace_text());
}

#[test]
fn migration_seed_sweep_is_violation_free() {
    let c = SimConfig::migration_default();
    let a = seed_sweep(&c, 0, 100);
    let b = seed_sweep(&c, 0, 100);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "migration sweeps must be deterministic"
    );
    assert!(
        a.ok(),
        "sweep violations: {:?}",
        a.failures.iter().map(|f| (f.seed, f.violations.clone())).collect::<Vec<_>>()
    );
    // The sweep must exercise the interesting outcomes, not vacuously pass.
    assert_eq!(a.runs_with_faults, 100, "every migration schedule carries a fault");
    assert!(a.runs_with_restarts > 20, "only {} runs restarted", a.runs_with_restarts);
    assert!(a.runs_committed > 50, "only {} swaps committed", a.runs_committed);
    assert!(a.runs_committed + a.runs_aborted <= 100);
}
