//! Property tests for the fault-tolerance subsystem: under *arbitrary*
//! bounded fault plans, supervised execution either completes with
//! output bit-identical to sequential execution of the quantized model,
//! or fails only because no devices survived — and never exceeds the
//! restart budget.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{quantize_model, BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{
    run_pipeline_supervised, FaultPlan, FoldReplanner, RecoveryPolicy, RuntimeError,
    SupervisorConfig,
};
use llmpq_workload::MicrobatchPlan;
use proptest::prelude::*;

fn two_stage_plan(bits: &[Bitwidth]) -> ExecutionPlan {
    let n = bits.len();
    let split = n / 2;
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "prop".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: split, bits: bits[..split].to_vec() },
            StagePlan { device: 1, layer_start: split, layer_end: n, bits: bits[split..].to_vec() },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 1,
            decode_size: 2,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn supervised_runs_are_bit_identical_or_out_of_devices(
        fault_seed in 0u64..1_000_000,
        model_seed in 0u64..4,
        n_generate in 3usize..7,
    ) {
        let m = RefModel::new(RefConfig::scaled_like(4, model_seed));
        let bits =
            vec![Bitwidth::Int8, Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Fp16];
        let plan = two_stage_plan(&bits);
        let prompts = vec![vec![1usize, 2, 3], vec![9, 8, 7]];
        let faults = FaultPlan::random(fault_seed, plan.stages.len(), 8, 4);
        let cfg = SupervisorConfig {
            heartbeat_timeout_ms: 100,
            progress_timeout_ms: 250,
            tick_ms: 1,
            max_restarts: faults.events.len() + 1,
            backoff_base_ms: 1,
            backoff_factor: 1.5,
            backoff_cap_ms: 4,
            policy: RecoveryPolicy::Replan,
            max_queue: None,
        };
        let res = run_pipeline_supervised(
            &m,
            &plan,
            &prompts,
            n_generate,
            Rounding::Deterministic,
            0,
            &cfg,
            Some(&faults),
            Some(&FoldReplanner),
        );
        match res {
            Ok(out) => {
                // Restart budget respected.
                prop_assert!(out.restarts <= cfg.max_restarts,
                    "restarts {} > bound {}", out.restarts, cfg.max_restarts);
                // The fold keeps every layer's bitwidth, so whatever
                // sequence of crashes/losses/replans happened, the
                // tokens must equal sequential execution of the
                // original quantized model.
                let qm = quantize_model(
                    &m,
                    &BitAssignment { bits: bits.clone() },
                    Rounding::Deterministic,
                    0,
                );
                for (i, p) in prompts.iter().enumerate() {
                    let want = qm.generate(p, n_generate, 0.0, 0).tokens;
                    prop_assert_eq!(&out.output.tokens[i], &want,
                        "sequence {} diverged under faults {:?}", i, faults);
                }
            }
            Err(e) => {
                // Only acceptable terminal failure: every device is
                // gone (both stages hit DeviceLoss), so neither
                // restart nor replan can make progress.
                let out_of_devices = matches!(e, RuntimeError::DeviceLost(_))
                    || matches!(&e, RuntimeError::BadPlan(msg)
                        if msg.contains("no surviving devices"));
                prop_assert!(out_of_devices,
                    "unexpected terminal error {e} under faults {faults:?}");
            }
        }
    }

    #[test]
    fn random_fault_plans_always_validate(seed in 0u64..1_000_000) {
        let fp = FaultPlan::random(seed, 3, 10, 5);
        prop_assert!(fp.validate(3).is_ok());
        prop_assert!(fp.events.len() <= 5);
    }
}
