//! Property tests for the wire layer: the frame codec and the message
//! codec must round-trip arbitrary traffic byte-exactly, reject every
//! corruption of the length prefix / magic / payload, and reassemble
//! frames delivered one fragment at a time.
//!
//! The second half drives the same codec through the simulated network
//! ([`llmpq_runtime::wire_exchange`]) under adversarial schedules —
//! delay, drop, duplicate, reorder, corrupt, disconnect, partition —
//! and asserts the connection-level invariants: no message is ever
//! invented, corruption always surfaces as a typed disconnect via the
//! real CRC, and stale-epoch dials are rejected wholesale.

use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{Matrix, Phase, RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::migrate::KV_CHUNK_ROWS;
use llmpq_runtime::net::frame::{
    crc32, encode_frame, read_frame, FrameError, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use llmpq_runtime::net::wire::{worker_msg_to_wire, worker_msg_wire_bytes, WireMsg};
use llmpq_runtime::{
    kv_to_chunks, wire_exchange, CommitDecision, KvAssembler, MigrationHost, SimFaultKind,
    SimLinkEvent, SimPartition, WireExchangeConfig, WorkItem, WorkerMsg, WorkerSwap,
};
use proptest::prelude::*;
use proptest::strategy::TestRng;
use std::io::Read;

/// Arbitrary worker messages: work items with random shapes and
/// bit-pattern-derived (finite) floats, shutdowns, protocol errors.
struct ArbMsg;

impl Strategy for ArbMsg {
    type Value = WorkerMsg;

    fn generate(&self, rng: &mut TestRng) -> WorkerMsg {
        match rng.below(4) {
            0 => WorkerMsg::Shutdown,
            1 => {
                let n = rng.below(48);
                let s: String =
                    (0..n).map(|_| (b' ' + rng.below(95) as u8) as char).collect();
                WorkerMsg::Protocol(s)
            }
            _ => {
                let n_seqs = rng.below(4);
                let seqs = (0..n_seqs)
                    .map(|_| {
                        let rows = 1 + rng.below(3);
                        let cols = 1 + rng.below(5);
                        let data = (0..rows * cols)
                            .map(|_| loop {
                                // Drawing from raw bit patterns covers
                                // negative zero, subnormals and extreme
                                // exponents, not just round numbers.
                                let v = f32::from_bits(rng.next_u64() as u32);
                                if v.is_finite() {
                                    break v;
                                }
                            })
                            .collect();
                        (rng.below(64), Matrix::from_vec(rows, cols, data))
                    })
                    .collect();
                WorkerMsg::Work(WorkItem {
                    step: rng.next_u64(),
                    epoch: rng.next_u64(),
                    microbatch: rng.below(1024),
                    phase: if rng.below(2) == 0 { Phase::Prefill } else { Phase::Decode },
                    sent_us: rng.next_u64(),
                    seqs,
                })
            }
        }
    }
}

/// Arbitrary adversarial link schedules for the simulated wire:
/// 0..=3 one-shot faults drawn from every kind, including `Reorder`,
/// which the protocol-level random schedules exclude.
#[derive(Clone, Copy)]
struct ArbFaults;

impl Strategy for ArbFaults {
    type Value = Vec<SimLinkEvent>;

    fn generate(&self, rng: &mut TestRng) -> Vec<SimLinkEvent> {
        let n = rng.below(4);
        (0..n)
            .map(|_| {
                let kind = match rng.below(6) {
                    0 => SimFaultKind::Delay { us: 1 + rng.below(50_000) as u64 },
                    1 => SimFaultKind::Drop,
                    2 => SimFaultKind::Duplicate,
                    3 => SimFaultKind::Corrupt,
                    4 => SimFaultKind::Reorder { us: rng.below(5_000) as u64 },
                    _ => SimFaultKind::Disconnect,
                };
                SimLinkEvent { link: 0, after_frames: rng.below(6) as u64, kind }
            })
            .collect()
    }
}

/// A reader that yields at most `chunk` bytes per `read` call, forcing
/// the frame decoder to reassemble from partial reads.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn worker_messages_round_trip_bit_exactly(msg in ArbMsg) {
        let wire = worker_msg_to_wire(msg.clone());
        let payload = wire.encode();
        prop_assert_eq!(payload.len(), wire.encoded_len(), "encoded_len must match encode");
        if matches!(&wire, WireMsg::Work(_)) {
            prop_assert_eq!(payload.len(), worker_msg_wire_bytes(&msg));
        }
        let framed = encode_frame(&payload);
        let back = read_frame(&mut framed.as_slice()).expect("well-formed frame");
        prop_assert_eq!(&back, &payload);
        let decoded = WireMsg::decode(&back).expect("well-formed payload");
        // Equality through the wire type: f32 payloads must be bit-exact.
        prop_assert_eq!(decoded, wire);
    }

    #[test]
    fn any_single_byte_payload_corruption_is_detected(
        msg in ArbMsg,
        at in 0usize..1 << 20,
        flip in 1u8..=255,
    ) {
        let payload = worker_msg_to_wire(msg).encode();
        let mut framed = encode_frame(&payload);
        // Flip one payload byte (past the 12-byte header): the CRC-32
        // must notice, whatever the byte and whatever the bit pattern.
        let i = FRAME_HEADER_BYTES + at % payload.len();
        framed[i] ^= flip;
        match read_frame(&mut framed.as_slice()) {
            Err(FrameError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "corruption at byte {i} undetected: {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_prefixes_never_cause_huge_allocations(
        msg in ArbMsg,
        len in 0u32..=u32::MAX,
    ) {
        let payload = worker_msg_to_wire(msg).encode();
        let mut framed = encode_frame(&payload);
        framed[4..8].copy_from_slice(&len.to_le_bytes());
        match read_frame(&mut framed.as_slice()) {
            Ok(p) => {
                // Only the true length can survive: the CRC covers the
                // exact payload.
                prop_assert_eq!(len as usize, payload.len());
                prop_assert_eq!(p, payload);
            }
            Err(FrameError::OversizedFrame(l)) => {
                prop_assert!(l > MAX_FRAME_BYTES, "rejected in-range length {l}");
            }
            Err(FrameError::Io(e)) => {
                // Claimed more bytes than the stream holds: clean EOF,
                // never an attempted quarter-gigabyte allocation.
                prop_assert!(len as usize > payload.len());
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            Err(FrameError::ChecksumMismatch { .. }) => {
                // Claimed fewer bytes: the CRC over the truncation fails.
                prop_assert!((len as usize) < payload.len());
            }
            Err(e) => prop_assert!(false, "unexpected rejection: {e:?}"),
        }
    }

    #[test]
    fn corrupt_magic_is_rejected(msg in ArbMsg, wrong in 0u32..=u32::MAX) {
        let payload = worker_msg_to_wire(msg).encode();
        let mut framed = encode_frame(&payload);
        if wrong.to_le_bytes() == [framed[0], framed[1], framed[2], framed[3]] {
            return Ok(()); // drew the genuine magic; nothing to corrupt
        }
        framed[..4].copy_from_slice(&wrong.to_le_bytes());
        match read_frame(&mut framed.as_slice()) {
            Err(FrameError::BadMagic { .. }) => {}
            other => prop_assert!(false, "bad magic accepted: {other:?}"),
        }
    }

    #[test]
    fn partial_reads_reassemble_exactly(msg in ArbMsg, chunk in 1usize..7) {
        let payload = worker_msg_to_wire(msg).encode();
        let framed = encode_frame(&payload);
        let mut r = Trickle { data: &framed, pos: 0, chunk };
        let back = read_frame(&mut r).expect("reassembles from fragments");
        prop_assert_eq!(back, payload);
        prop_assert_eq!(r.pos, framed.len(), "consumed exactly one frame");
    }

    #[test]
    fn truncated_streams_are_io_errors_not_panics(msg in ArbMsg, cut in 0usize..1 << 20) {
        let payload = worker_msg_to_wire(msg).encode();
        let framed = encode_frame(&payload);
        let keep = cut % framed.len(); // 0..len-1: always truncated
        match read_frame(&mut &framed[..keep]) {
            Err(FrameError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => prop_assert!(false, "truncation at {keep} gave {other:?}"),
        }
    }

    #[test]
    fn wire_decode_rejects_trailing_garbage(msg in ArbMsg, extra in 1usize..8) {
        let mut payload = worker_msg_to_wire(msg).encode();
        payload.extend(std::iter::repeat_n(0xA5, extra));
        prop_assert!(WireMsg::decode(&payload).is_err(), "trailing bytes accepted");
    }

    #[test]
    fn sim_link_never_invents_messages(
        msgs in prop::collection::vec(ArbMsg, 1..5),
        faults in ArbFaults,
    ) {
        let cfg = WireExchangeConfig {
            msgs: msgs.clone(),
            events: faults.clone(),
            ..WireExchangeConfig::default()
        };
        let out = wire_exchange(&cfg);
        for (i, d) in out.delivered.iter().enumerate() {
            prop_assert!(
                msgs.contains(d),
                "delivered[{i}] was never sent\ntrace:\n{}",
                out.trace.join("\n")
            );
        }
        let dups = faults
            .iter()
            .filter(|e| matches!(e.kind, SimFaultKind::Duplicate))
            .count();
        prop_assert!(
            out.delivered.len() <= msgs.len() + dups,
            "{} delivered from {} sent (+{dups} dup events)",
            out.delivered.len(),
            msgs.len()
        );
        // Without reordering the link is a faulty-but-FIFO stream: the
        // delivered sequence (consecutive duplicates collapsed) must be
        // a subsequence of what was sent.
        if faults.iter().all(|e| !matches!(e.kind, SimFaultKind::Reorder { .. })) {
            let mut collapsed: Vec<&WorkerMsg> = Vec::new();
            for d in &out.delivered {
                if collapsed.last().map(|l| *l == d) != Some(true) {
                    collapsed.push(d);
                }
            }
            let mut it = msgs.iter();
            for d in collapsed {
                prop_assert!(
                    it.any(|m| m == d),
                    "FIFO schedule delivered out of order\ntrace:\n{}",
                    out.trace.join("\n")
                );
            }
        }
    }

    #[test]
    fn corrupt_frames_surface_as_typed_disconnects(
        msgs in prop::collection::vec(ArbMsg, 1..5),
        at in 0usize..8,
    ) {
        let k = at % msgs.len();
        let cfg = WireExchangeConfig {
            msgs: msgs.clone(),
            events: vec![SimLinkEvent {
                link: 0,
                after_frames: k as u64,
                kind: SimFaultKind::Corrupt,
            }],
            ..WireExchangeConfig::default()
        };
        let out = wire_exchange(&cfg);
        prop_assert_eq!(out.corrupt_detected, 1, "CRC must catch the flipped byte");
        prop_assert!(out.clean_eof, "corruption must end the stream as a typed disconnect");
        prop_assert!(!out.timed_out);
        // Everything before the corrupt frame arrives intact; nothing
        // after it leaks through the poisoned connection.
        prop_assert_eq!(&out.delivered[..], &msgs[..k]);
    }

    #[test]
    fn stale_epoch_dials_are_rejected_wholesale(
        msgs in prop::collection::vec(ArbMsg, 1..5),
        behind in 1u64..4,
    ) {
        let cfg = WireExchangeConfig {
            msgs: msgs.clone(),
            sender_epoch: 0,
            receiver_epoch: behind, // the receiver has moved on
            ..WireExchangeConfig::default()
        };
        let out = wire_exchange(&cfg);
        prop_assert!(out.delivered.is_empty(), "stale-attempt frames must never deliver");
        prop_assert_eq!(out.stale_rejected, msgs.len() as u64);
        prop_assert!(out.timed_out, "a stale dial looks like silence, not EOF");
        prop_assert!(!out.clean_eof);
    }

    #[test]
    fn permanent_partition_times_out_without_inventing(
        msgs in prop::collection::vec(ArbMsg, 2..5),
    ) {
        // The partition lands after the first in-flight frame; the
        // sender keeps writing into the void and never closes.
        let cfg = WireExchangeConfig {
            msgs: msgs.clone(),
            partitions: vec![SimPartition { link: 0, at_us: 1, heal_at_us: None }],
            close_after_send: false,
            ..WireExchangeConfig::default()
        };
        let out = wire_exchange(&cfg);
        prop_assert!(out.timed_out, "a dead link must look like a timeout, not EOF");
        prop_assert!(!out.clean_eof);
        prop_assert_eq!(out.corrupt_detected, 0);
        prop_assert_eq!(&out.delivered[..], &msgs[..1]);
    }

    #[test]
    fn healed_partition_delivers_everything_in_order(
        msgs in prop::collection::vec(ArbMsg, 1..5),
        heal in 10_000u64..100_000,
    ) {
        let cfg = WireExchangeConfig {
            msgs: msgs.clone(),
            partitions: vec![SimPartition { link: 0, at_us: 1, heal_at_us: Some(heal) }],
            ..WireExchangeConfig::default()
        };
        let out = wire_exchange(&cfg);
        prop_assert_eq!(&out.delivered[..], &msgs[..], "heal must release the full stream");
        prop_assert!(out.clean_eof, "EOF after drain");
        prop_assert!(!out.timed_out);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(
        data in prop::collection::vec(0u8..=255, 1..128),
        bit in 0usize..1 << 20,
    ) {
        let before = crc32(&data);
        let mut flipped = data.clone();
        let b = bit % (data.len() * 8);
        flipped[b / 8] ^= 1 << (b % 8);
        prop_assert_ne!(before, crc32(&flipped));
    }
}

// ---- live plan migration: KV handoff + epoch rules -------------------

/// `splitmix64` output step, for deterministic in-test shuffles/fill.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A finite f32 from raw bit patterns — covers negative zero,
/// subnormals and extreme exponents, the cases where "close enough"
/// float handling would hide a broken bit-exact handoff.
fn finite_f32(seed: u64) -> f32 {
    let mut s = seed;
    loop {
        s = mix(s.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let v = f32::from_bits(s as u32);
        if v.is_finite() {
            return v;
        }
    }
}

fn kv_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|i| finite_f32(salt ^ ((i as u64) << 17))).collect(),
    )
}

fn one_stage_plan() -> ExecutionPlan {
    ExecutionPlan {
        model: "tiny-2l".into(),
        cluster: "solo".into(),
        stages: vec![StagePlan {
            device: 0,
            layer_start: 0,
            layer_end: 2,
            bits: vec![Bitwidth::Fp16; 2],
        }],
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn bit_patterns(m: &Matrix) -> Vec<u32> {
    m.data.iter().map(|f| f.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A `(seq, layer)` KV slice fragments into chunks, every fragment
    /// crosses the real wire codec and frame CRC, the fragments arrive
    /// shuffled with mid-stream duplicates, and the assembler rebuilds
    /// K and V with identical IEEE-754 bit patterns.
    #[test]
    fn kv_slices_survive_fragmentation_shuffling_and_duplication(
        rows in 0usize..40,
        cols in 1usize..6,
        epoch in 1u64..8,
        seq in 0u32..4,
        layer in 0u32..8,
        order_seed in 0u64..u64::MAX,
    ) {
        let k = kv_matrix(rows, cols, order_seed ^ 1);
        let v = kv_matrix(rows, cols, order_seed ^ 2);
        let chunks = kv_to_chunks(epoch, seq, layer, &k, &v);
        prop_assert_eq!(chunks.len(), rows.div_ceil(KV_CHUNK_ROWS).max(1));

        let mut wired = Vec::with_capacity(chunks.len());
        for c in &chunks {
            let payload = worker_msg_to_wire(WorkerMsg::KvChunk(c.clone())).encode();
            let framed = encode_frame(&payload);
            let back = read_frame(&mut framed.as_slice()).expect("well-formed frame");
            match WireMsg::decode(&back).expect("well-formed payload") {
                WireMsg::KvChunk(got) => {
                    prop_assert_eq!(&got, c, "codec must be bit-exact");
                    wired.push(got);
                }
                other => prop_assert!(false, "decoded to {other:?}"),
            }
        }

        // Deterministic shuffle, then duplicate fragments both *before*
        // and *after* the last one lands: duplicates must be absorbed
        // while the slice is incomplete AND once it has assembled (a
        // late transport duplicate must never re-open a completed slice
        // and hand the caller the same KV rows twice).
        wired.sort_by_key(|c| mix(order_seed ^ u64::from(c.chunk)));
        let last = wired.pop().expect("at least one fragment");
        let dups = wired.clone();
        let mut feed = wired;
        feed.extend(dups);
        feed.push(last.clone());
        feed.push(last);

        let mut asm = KvAssembler::new(epoch, &[(seq, layer)]);
        let mut done = None;
        for c in feed {
            if let Some(slice) = asm.push(c)? {
                prop_assert!(done.is_none(), "slice completed twice");
                done = Some(slice);
            }
        }
        prop_assert!(asm.done(), "assembler must report completion");
        let (s, l, gk, gv) = done.expect("slice completes");
        prop_assert_eq!((s, l), (seq, layer));
        prop_assert_eq!((gk.rows, gk.cols), (k.rows, k.cols));
        prop_assert_eq!(bit_patterns(&gk), bit_patterns(&k));
        prop_assert_eq!(bit_patterns(&gv), bit_patterns(&v));
    }

    /// Any single-byte corruption of a framed KV chunk surfaces as the
    /// typed CRC failure that aborts the migration — never as silently
    /// wrong cache rows.
    #[test]
    fn kv_chunk_corruption_is_detected_by_the_frame_crc(
        rows in 1usize..40,
        cols in 1usize..6,
        at in 0usize..1 << 20,
        flip in 1u8..=255,
        salt in 0u64..u64::MAX,
    ) {
        let k = kv_matrix(rows, cols, salt ^ 1);
        let v = kv_matrix(rows, cols, salt ^ 2);
        let chunks = kv_to_chunks(3, 0, 1, &k, &v);
        let c = chunks[at % chunks.len()].clone();
        let payload = worker_msg_to_wire(WorkerMsg::KvChunk(c)).encode();
        let mut framed = encode_frame(&payload);
        let i = FRAME_HEADER_BYTES + at % payload.len();
        framed[i] ^= flip;
        match read_frame(&mut framed.as_slice()) {
            Err(FrameError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "corrupt KV chunk passed the CRC: {other:?}"),
        }
    }

    /// A chunk from a different epoch is a typed assembler error, not a
    /// silently merged cache row.
    #[test]
    fn cross_epoch_kv_chunks_are_typed_errors(
        epoch in 0u64..6,
        other in 0u64..6,
        rows in 0usize..20,
        salt in 0u64..u64::MAX,
    ) {
        if epoch == other {
            return Ok(()); // only cross-epoch deliveries are interesting
        }
        let k = kv_matrix(rows, 3, salt ^ 1);
        let v = kv_matrix(rows, 3, salt ^ 2);
        let mut asm = KvAssembler::new(epoch, &[(0, 0)]);
        let err = asm.push(kv_to_chunks(other, 0, 0, &k, &v).remove(0)).unwrap_err();
        prop_assert!(err.contains("epoch"), "untyped rejection: {err}");
        prop_assert!(!asm.done());
    }

    /// Epoch rule with nothing prepared: a `PlanCommit` at or below the
    /// active epoch is a droppable duplicate; above it, a typed abort.
    /// It must never swap.
    #[test]
    fn stale_epoch_commits_never_swap(active in 0u64..6, commit in 0u64..10) {
        let swap = WorkerSwap { active_epoch: active, prepared: None };
        match swap.decide_commit(commit) {
            CommitDecision::Ignore => prop_assert!(commit <= active),
            CommitDecision::Abort(r) => {
                prop_assert!(commit > active);
                prop_assert!(r.contains("unprepared"), "reason must be typed: {r}");
            }
            CommitDecision::Swap => {
                prop_assert!(false, "commit for epoch {commit} swapped with nothing prepared")
            }
        }
    }

    /// With a genuinely prepared proposal (through the real requantize
    /// path), only the prepared epoch commits: stale commits are
    /// ignored, mismatched future commits abort.
    #[test]
    fn commits_only_swap_the_prepared_epoch(prepared_epoch in 1u64..6, commit in 0u64..10) {
        let host = MigrationHost::new(
            RefModel::new(RefConfig::scaled_like(2, 7)),
            Rounding::Deterministic,
            0,
        );
        let mut swap = WorkerSwap::new();
        let ready = swap
            .on_propose(&host, 0, prepared_epoch, &one_stage_plan().to_json())
            .expect("well-formed proposal prepares");
        prop_assert!(ready, "first proposal must answer PlanReady");
        match swap.decide_commit(commit) {
            CommitDecision::Swap => prop_assert_eq!(commit, prepared_epoch),
            CommitDecision::Ignore => prop_assert_eq!(commit, 0),
            CommitDecision::Abort(r) => {
                prop_assert!(commit > 0 && commit != prepared_epoch, "spurious abort: {r}");
            }
        }
        // Re-delivery of the same proposal is idempotent, not a re-prepare.
        let again = swap
            .on_propose(&host, 0, prepared_epoch, &one_stage_plan().to_json())
            .expect("duplicate proposal is benign");
        prop_assert!(!again, "duplicate proposal must not re-answer PlanReady");
    }
}
