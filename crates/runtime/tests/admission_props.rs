//! Property tests for the overload-control layer: under arbitrary
//! arrival traces, policies, KV budgets, and injected engine failures,
//! the serving loop conserves requests (served + shed + expired ==
//! offered), never executes a request it shed, and only moves the
//! degradation ladder one watermark-consistent rung at a time.

use llmpq_runtime::{
    poisson_requests, serve, AdmissionConfig, AdmissionPolicy, DegradationConfig, KvGuardConfig,
    Request, ServeConfig, SimEngine,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn policy_strategy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Reject),
        Just(AdmissionPolicy::DeadlineShed),
        Just(AdmissionPolicy::QueueTimeout),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every offered request ends up in exactly one terminal bucket, for
    /// any policy, rate, queue bound, and failure cadence.
    #[test]
    fn serve_conserves_requests(
        seed in 0u64..500,
        rate in 0.5f64..100.0,
        n in 1usize..80,
        max_queue in 1usize..24,
        policy in policy_strategy(),
        fail_every_raw in 0usize..6,
        max_retries in 0usize..3,
    ) {
        let requests = poisson_requests(n, rate, 4, 4, seed).unwrap();
        let mut engine = SimEngine::new(vec![(0.05, 0.01), (0.01, 0.002)], 3, 1.0);
        // 0 and 1 mean "never fail"; 2..6 fail every k-th batch call.
        engine.fail_every = (fail_every_raw >= 2).then_some(fail_every_raw);
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                policy,
                max_queue,
                default_deadline_s: Some(0.5),
                queue_timeout_s: 0.3,
            },
            kv_guard: None,
            degradation: Some(DegradationConfig::default()),
            max_inflight: 2,
            max_retries,
        };
        let rep = serve(&mut engine, &requests, &cfg, None);
        prop_assert_eq!(rep.stats.offered, n);
        prop_assert!(
            rep.stats.conserves(0),
            "offered {} != served {} + shed {} + expired {}",
            rep.stats.offered, rep.stats.served, rep.stats.shed, rep.stats.expired
        );
    }

    /// A shed or expired request never reaches the engine's execute
    /// path — shedding happens *before* compute is spent — and no served
    /// request executes twice.
    #[test]
    fn no_compute_after_shed(
        seed in 0u64..500,
        rate in 5.0f64..200.0,
        n in 1usize..60,
        max_queue in 1usize..8,
        policy in policy_strategy(),
    ) {
        let requests = poisson_requests(n, rate, 4, 4, seed).unwrap();
        let mut engine = SimEngine::new(vec![(0.1, 0.02)], 2, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                policy,
                max_queue,
                default_deadline_s: Some(0.2),
                queue_timeout_s: 0.2,
            },
            kv_guard: None,
            degradation: None,
            max_inflight: 1,
            max_retries: 1,
        };
        let rep = serve(&mut engine, &requests, &cfg, None);
        let executed = engine.executed_ids();
        let uniq: HashSet<usize> = executed.iter().copied().collect();
        prop_assert_eq!(executed.len(), uniq.len(), "a request executed twice");
        prop_assert_eq!(
            executed.len(), rep.stats.served,
            "executed set must be exactly the served set"
        );
        // With no engine failures, anything the engine touched was
        // served — dropped requests never reached run_batch.
        prop_assert_eq!(uniq.len() + rep.stats.shed + rep.stats.expired, n);
    }

    /// The KV guard preempts rather than loses: with a budget and mixed
    /// priorities, conservation still holds and nothing executes twice.
    #[test]
    fn kv_preemption_never_loses_requests(
        seed in 0u64..500,
        n in 2usize..40,
        budget in 20.0f64..200.0,
    ) {
        let mut requests = poisson_requests(n, 20.0, 4, 4, seed).unwrap();
        for (i, r) in requests.iter_mut().enumerate() {
            r.priority = (i % 5) as u32;
            if i % 3 == 0 {
                r.prompt = vec![1; 12]; // mix sizes so the budget binds
            }
        }
        let mut engine = SimEngine::new(vec![(0.02, 0.005)], 4, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_queue: 64, ..AdmissionConfig::default() },
            kv_guard: Some(KvGuardConfig { budget_bytes: budget, headroom: 0.1 }),
            degradation: None,
            max_inflight: 2,
            max_retries: 1,
        };
        let rep = serve(&mut engine, &requests, &cfg, None);
        prop_assert!(rep.stats.conserves(0));
        let executed = engine.executed_ids();
        let uniq: HashSet<usize> = executed.iter().copied().collect();
        prop_assert_eq!(executed.len(), uniq.len(), "preemption re-ran a request");
        prop_assert_eq!(executed.len(), rep.stats.served);
    }

    /// Ladder transitions are monotone per pressure episode: every step
    /// moves exactly one rung, downs only fire at/above the high
    /// watermark, ups only at/below the low watermark, and the rung
    /// stays inside the ladder.
    #[test]
    fn ladder_transitions_are_watermark_consistent(
        seed in 0u64..500,
        rate in 1.0f64..150.0,
        n in 5usize..80,
        high in 0.6f64..0.95,
        low_frac in 0.1f64..0.8,
        dwell in 1usize..5,
        n_rungs in 1usize..4,
    ) {
        let low = high * low_frac; // keep low < high so the band exists
        let requests = poisson_requests(n, rate, 4, 4, seed).unwrap();
        let costs: Vec<(f64, f64)> =
            (0..n_rungs).map(|r| (0.1 / (r + 1) as f64, 0.02 / (r + 1) as f64)).collect();
        let mut engine = SimEngine::new(costs, 3, 1.0);
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_queue: 8, ..AdmissionConfig::default() },
            kv_guard: None,
            degradation: Some(DegradationConfig { high, low, dwell }),
            max_inflight: 1,
            max_retries: 1,
        };
        let rep = serve(&mut engine, &requests, &cfg, None);
        let mut rung = 0usize;
        for tr in &rep.transitions {
            prop_assert_eq!(tr.from, rung, "transition chain broken: {:?}", rep.transitions);
            prop_assert_eq!(tr.from.abs_diff(tr.to), 1, "multi-rung jump: {:?}", tr);
            prop_assert!(tr.to < n_rungs.max(1), "rung out of range: {:?}", tr);
            if tr.to > tr.from {
                prop_assert!(tr.pressure >= high, "step-down below high watermark: {:?}", tr);
            } else {
                prop_assert!(tr.pressure <= low, "step-up above low watermark: {:?}", tr);
            }
            rung = tr.to;
        }
        prop_assert_eq!(rep.final_rung, rung);
        prop_assert!(rep.peak_rung < n_rungs.max(1));
    }

    /// Offering a hand-built adversarial trace (bursts, ties, identical
    /// arrival times) through the controller alone also conserves.
    #[test]
    fn controller_counters_conserve(
        n in 1usize..60,
        max_queue in 1usize..10,
        policy in policy_strategy(),
        takes in 0usize..40,
    ) {
        use llmpq_runtime::AdmissionController;
        let mut a = AdmissionController::new(AdmissionConfig {
            policy,
            max_queue,
            default_deadline_s: Some(0.1),
            queue_timeout_s: 0.05,
        });
        for i in 0..n {
            let t = (i / 3) as f64 * 0.04; // bursts of three per tick
            a.offer(
                Request {
                    id: i,
                    arrival_s: t,
                    prompt: vec![1, 2],
                    n_generate: 2,
                    deadline_s: None,
                    priority: (i % 3) as u32,
                },
                t,
            );
            if i % 5 == 4 {
                a.reap(t + 0.02);
            }
        }
        let mut served = 0usize;
        for _ in 0..takes {
            if a.take().is_some() {
                served += 1;
                a.note_served(1);
            }
        }
        a.reap(f64::MAX); // expire whatever the policy still can
        let s = a.stats();
        prop_assert!(s.conserves(a.pending()), "{:?} pending {}", s, a.pending());
        prop_assert_eq!(s.served, served);
    }
}
