//! Property tests for the paged KV allocator: arbitrary interleavings
//! of alloc / extend / free against a naive token-count model. The
//! scheduler trusts this bookkeeping for admission and preemption, so
//! the invariants here are the ones a corrupted free-list would break
//! first: every block is owned by exactly one chain or the free-list
//! (no double-grant, no leak, no double-free), accounting matches the
//! live sequences exactly, and fragmentation stays under one partial
//! block per live sequence.

use llmpq_runtime::{KvPool, KvPoolConfig, KvPoolError};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One allocator call, decoded from a raw `(kind, seq, tokens)` draw.
/// Sequence ids are kept small so ops collide on live and dead
/// sequences (double-alloc, unknown-extend, double-free paths).
#[derive(Debug, Clone)]
enum Op {
    Alloc { seq: u64, tokens: usize },
    Extend { seq: u64, tokens: usize },
    Free { seq: u64 },
}

fn decode(kind: usize, seq: u64, tokens: usize) -> Op {
    match kind {
        0 | 1 => Op::Alloc { seq, tokens },
        2 | 3 => Op::Extend { seq, tokens: tokens % 12 },
        _ => Op::Free { seq },
    }
}

/// Every invariant the scheduler relies on, checked after every op.
fn check_invariants(p: &KvPool, model: &BTreeMap<u64, usize>) {
    let cfg = p.config();
    let bt = cfg.block_tokens;

    // Accounting: the pool sees exactly the model's live sequences.
    assert_eq!(p.live_seqs(), model.len(), "live sequence count");
    let mut expect_used = 0usize;
    for (&seq, &tokens) in model {
        assert_eq!(p.tokens_of(seq), Some(tokens), "seq {seq} token count");
        let blocks = p.blocks_of(seq).expect("live seq has a chain");
        // Fragmentation bound: the chain is exactly ceil(tokens/bt)
        // blocks — at most one partially filled block per sequence,
        // never a fully empty trailing block.
        assert_eq!(blocks.len(), tokens.div_ceil(bt), "seq {seq} chain length");
        expect_used += blocks.len();
    }
    assert_eq!(p.used_blocks(), expect_used, "used == sum of live chains");
    assert_eq!(p.free_blocks() + p.used_blocks(), cfg.n_blocks, "free + used == total");

    // Ownership: every block id appears exactly once across all chains
    // (the free-list holds the rest) — a double-grant would show up as
    // a duplicate, a leak as a missing id.
    let mut seen = BTreeSet::new();
    for &seq in model.keys() {
        for &b in p.blocks_of(seq).unwrap() {
            assert!((b as usize) < cfg.n_blocks, "block {b} out of range");
            assert!(seen.insert(b), "block {b} granted to two chains");
        }
    }
    assert_eq!(seen.len(), expect_used);

    // Lifetime counters never drift from the live state.
    let stats = p.stats();
    assert_eq!(
        stats.block_allocs - stats.block_frees,
        expect_used as u64,
        "allocs - frees == blocks in use"
    );
    assert!(stats.peak_blocks >= expect_used, "peak below current usage");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary op interleavings keep the pool consistent with the
    /// naive model, error for error.
    // The contains_key/insert split mirrors the three-way outcome match;
    // the entry API would bury the per-branch assertions.
    #[test]
    #[allow(clippy::map_entry)]
    fn interleavings_match_model(
        n_blocks in 1usize..24,
        block_tokens in 1usize..8,
        raw_ops in prop::collection::vec((0usize..6, 0u64..8, 0usize..40), 1..120),
    ) {
        let cfg = KvPoolConfig { n_blocks, block_tokens };
        let mut p = KvPool::new(cfg);
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        let mut free_model = n_blocks;

        for (kind, seq, tokens) in raw_ops {
            match decode(kind, seq, tokens) {
                Op::Alloc { seq, tokens } => {
                    let needed = tokens.div_ceil(block_tokens);
                    let r = p.alloc(seq, tokens);
                    if model.contains_key(&seq) {
                        prop_assert_eq!(r, Err(KvPoolError::DoubleAlloc(seq)));
                    } else if needed > free_model {
                        prop_assert_eq!(
                            r,
                            Err(KvPoolError::Exhausted { needed, free: free_model })
                        );
                    } else {
                        prop_assert_eq!(r, Ok(()));
                        model.insert(seq, tokens);
                        free_model -= needed;
                    }
                }
                Op::Extend { seq, tokens } => {
                    let r = p.extend(seq, tokens);
                    match model.get_mut(&seq) {
                        None => prop_assert_eq!(r, Err(KvPoolError::UnknownSeq(seq))),
                        Some(have) => {
                            let old_blocks = have.div_ceil(block_tokens);
                            let new_blocks = (*have + tokens).div_ceil(block_tokens);
                            let grow = new_blocks - old_blocks;
                            if grow > free_model {
                                prop_assert_eq!(
                                    r,
                                    Err(KvPoolError::Exhausted { needed: grow, free: free_model })
                                );
                                // Failed extend must leave the sequence
                                // exactly as it was.
                                prop_assert_eq!(p.tokens_of(seq), Some(*have));
                            } else {
                                prop_assert_eq!(r, Ok(()));
                                *have += tokens;
                                free_model -= grow;
                            }
                        }
                    }
                }
                Op::Free { seq } => {
                    let freed = p.free(seq);
                    match model.remove(&seq) {
                        None => prop_assert_eq!(freed, 0, "double free must be a no-op"),
                        Some(tokens) => {
                            let chain = tokens.div_ceil(block_tokens);
                            prop_assert_eq!(freed, chain, "free returns the whole chain");
                            free_model += chain;
                        }
                    }
                    // Freeing again immediately is always a no-op.
                    prop_assert_eq!(p.free(seq), 0);
                }
            }
            prop_assert_eq!(p.free_blocks(), free_model);
            check_invariants(&p, &model);
        }

        // Drain everything: the pool must come back whole.
        for seq in model.keys().copied().collect::<Vec<_>>() {
            p.free(seq);
        }
        prop_assert_eq!(p.free_blocks(), n_blocks);
        prop_assert_eq!(p.live_seqs(), 0);
        let stats = p.stats();
        prop_assert_eq!(stats.block_allocs, stats.block_frees);
    }

    /// `blocks_needed` / `can_fit` / `feasible` are consistent oracles
    /// for what `alloc` / `extend` will actually do.
    #[test]
    fn planning_oracles_predict_grants(
        n_blocks in 1usize..16,
        block_tokens in 1usize..8,
        first in 0usize..40,
        grow in 0usize..24,
    ) {
        let cfg = KvPoolConfig { n_blocks, block_tokens };
        let mut p = KvPool::new(cfg);

        let fits = p.can_fit(first);
        prop_assert_eq!(fits, p.blocks_for(first) <= n_blocks);
        prop_assert_eq!(p.blocks_needed(1, first), p.blocks_for(first));
        let r = p.alloc(1, first);
        prop_assert_eq!(r.is_ok(), fits, "can_fit must predict alloc on an empty pool");
        if !fits {
            prop_assert!(!p.feasible(first), "infeasible requests can never fit");
            return Ok(());
        }

        let need = p.blocks_needed(1, grow);
        let would_fit = need <= p.free_blocks();
        let before = p.tokens_of(1);
        let r = p.extend(1, grow);
        prop_assert_eq!(r.is_ok(), would_fit, "blocks_needed must predict extend");
        if would_fit {
            prop_assert_eq!(p.tokens_of(1), Some(first + grow));
        } else {
            prop_assert_eq!(p.tokens_of(1), before, "failed extend leaves state intact");
        }
    }
}
