//! Criterion micro-benchmarks for the quantization kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llmpq_model::Matrix;
use llmpq_quant::{quantize_matrix, Bitwidth, Rounding};
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize_matrix");
    for size in [128usize, 512] {
        let m = Matrix::random(size, size, 0.3, 42);
        for bits in [Bitwidth::Int3, Bitwidth::Int4, Bitwidth::Int8] {
            g.bench_with_input(
                BenchmarkId::new(format!("{bits}/det"), size),
                &m,
                |b, m| b.iter(|| black_box(quantize_matrix(m, bits, Rounding::Deterministic, 0))),
            );
        }
        g.bench_with_input(BenchmarkId::new("int4/stochastic", size), &m, |b, m| {
            b.iter(|| black_box(quantize_matrix(m, Bitwidth::Int4, Rounding::Stochastic, 7)))
        });
    }
    g.finish();
}

fn bench_dequantize(c: &mut Criterion) {
    let m = Matrix::random(512, 512, 0.3, 42);
    let q = quantize_matrix(&m, Bitwidth::Int4, Rounding::Deterministic, 0);
    c.bench_function("dequantize_512", |b| b.iter(|| black_box(q.dequantize())));
}

criterion_group!(benches, bench_quantize, bench_dequantize);
criterion_main!(benches);
