//! Criterion benchmarks for the roofline kernel model and the pipeline
//! discrete-event simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use llmpq_cluster::GpuModel;
use llmpq_model::{zoo, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, simulate_pipeline, KernelEnv, PipelineWorkload, StageLoad};
use std::hint::black_box;

fn bench_layer_latency(c: &mut Criterion) {
    let spec = zoo::opt_30b();
    let dev = GpuModel::V100_32G.spec();
    let env = KernelEnv::default();
    let w = PhaseWorkload::decode(32, 512, 562);
    c.bench_function("layer_latency_decode", |b| {
        b.iter(|| black_box(layer_latency(&dev, &env, &spec, &w, Bitwidth::Int4, 16.0)))
    });
}

fn bench_pipeline_sim(c: &mut Criterion) {
    let stages = vec![
        StageLoad { prefill_time: 1.0, decode_time: 0.05, comm_prefill: 0.01, comm_decode: 0.001 };
        6
    ];
    let w = PipelineWorkload {
        prefill_microbatches: 16,
        decode_microbatches: 4,
        n_tokens: 100,
        master_prefill: 0.02,
        master_decode: 0.002,
    };
    c.bench_function("simulate_pipeline_6x100", |b| {
        b.iter(|| black_box(simulate_pipeline(&stages, &w)))
    });
}

criterion_group!(benches, bench_layer_latency, bench_pipeline_sim);
criterion_main!(benches);
