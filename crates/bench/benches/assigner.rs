//! Criterion benchmark for the end-to-end assigner (Algorithm 1) on a
//! paper cluster — the operation Table 10 times.

use criterion::{criterion_group, criterion_main, Criterion};
use llm_pq::{assign, AssignerConfig, SolverChoice};
use llmpq_bench::quality::zoo_indicator;
use llmpq_cluster::paper_cluster;
use llmpq_cost::CostDb;
use llmpq_model::zoo;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;
use std::hint::black_box;

fn bench_assign_cluster3(c: &mut Criterion) {
    let cluster = paper_cluster(3);
    let spec = zoo::opt_30b();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();
    let indicator = zoo_indicator(&spec);
    let cfg = AssignerConfig {
        solver: SolverChoice::Dp { group: 4 },
        xi: 4,
        max_orderings: 2,
        dp_grid: Some(10),
        ..Default::default()
    };
    let mut g = c.benchmark_group("assigner");
    g.sample_size(10);
    g.bench_function("cluster3_opt30b_dp", |b| {
        b.iter(|| black_box(assign(&cluster, &spec, &job, &db, &indicator, &cfg)))
    });
    let heuristic_cfg = AssignerConfig { solver: SolverChoice::Heuristic, ..cfg };
    g.bench_function("cluster3_opt30b_heuristic", |b| {
        b.iter(|| black_box(assign(&cluster, &spec, &job, &db, &indicator, &heuristic_cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_assign_cluster3);
criterion_main!(benches);
