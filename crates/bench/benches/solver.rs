//! Criterion benchmarks for the optimization substrate: simplex LP,
//! branch-and-bound MILP, and the exact partition DP.

use criterion::{criterion_group, criterion_main, Criterion};
use llmpq_solver::{
    solve_lp, solve_milp, solve_partition, Constraint, LinProg, MilpConfig, MilpSpec,
    PartitionProblem,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn knapsack_lp(n: usize) -> LinProg {
    let mut rng = SmallRng::seed_from_u64(1);
    let obj: Vec<f64> = (0..n).map(|_| -rng.gen_range(1.0..10.0)).collect();
    let mut lp = LinProg::minimize(obj);
    for v in 0..n {
        lp = lp.bound(v, 1.0);
    }
    lp.with(Constraint::le(
        (0..n).map(|i| (i, ((i % 4) + 1) as f64)).collect(),
        n as f64 / 2.0,
    ))
}

fn bench_simplex(c: &mut Criterion) {
    let lp = knapsack_lp(60);
    c.bench_function("simplex_knapsack_60", |b| b.iter(|| black_box(solve_lp(&lp))));
}

fn bench_milp(c: &mut Criterion) {
    let lp = knapsack_lp(14);
    let spec = MilpSpec { lp, integers: (0..14).collect() };
    c.bench_function("milp_knapsack_14", |b| {
        b.iter(|| black_box(solve_milp(&spec, &MilpConfig::default())))
    });
}

fn partition_instance(l: usize, n: usize, nb: usize) -> PartitionProblem {
    let mut rng = SmallRng::seed_from_u64(5);
    let size = l * n * nb;
    let mut gen = |lo: f64, hi: f64| -> Vec<f64> {
        (0..size).map(|_| rng.gen_range(lo..hi)).collect()
    };
    PartitionProblem {
        n_groups: l,
        n_devices: n,
        n_bits: nb,
        pre_time: gen(0.2, 1.0),
        dec_time: gen(0.02, 0.1),
        mem: gen(1.0, 4.0),
        lin_cost: gen(0.0, 1.0),
        capacity: vec![3.0 * l as f64 / n as f64; n],
        fixed_mem: vec![0.1; n],
        comm_pre: vec![0.02; n],
        comm_dec: vec![0.002; n],
        alpha_pre: 7.0,
        alpha_dec: 99.0,
        allow_empty_stages: true,
        grid: Some(16),
    }
}

fn bench_partition_dp(c: &mut Criterion) {
    let p = partition_instance(48, 4, 4);
    let mut g = c.benchmark_group("partition");
    g.sample_size(10);
    g.bench_function("dp_48x4x4", |b| b.iter(|| black_box(solve_partition(&p))));
    g.finish();
}

criterion_group!(benches, bench_simplex, bench_milp, bench_partition_dp);
criterion_main!(benches);
