//! # llmpq-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (see `src/bin/`), sharing the setup code in this library —
//! indicator construction, cost-database fitting, the serving-comparison
//! driver behind Tables 4/5/7, the quality harness that turns a plan's
//! bit assignment into perplexity/accuracy numbers, and plain-text table
//! rendering.
//!
//! Run any experiment with
//! `cargo run --release -p llmpq-bench --bin <name>`.

pub mod quality;
pub mod serving;
pub mod table;

pub use quality::{plan_ppl, scaled_teacher, zoo_indicator, QualityHarness};
pub use serving::{compare_cluster, ComparisonRow, ServingSetup};
pub use table::TextTable;
