//! Kernel-level throughput of the packed dequant-GEMM subsystem.
//!
//! Measures, on the host CPU, what Fig 5 measures on GPUs: sustained
//! weight throughput of the serving GEMM at each precision, for both
//! phases (prefill `m>1`, decode `m=1`), plus the dequantize-then-f32
//! baseline the fused kernel must beat. All precisions are reported as
//! **effective FP16-equivalent GB/s** — `(n·k·2 bytes) / time` — so a
//! kernel that moves fewer physical bytes per weight shows up as a
//! higher effective rate, exactly the quantity the planner's roofline
//! tables model.
//!
//! Also emits end-to-end tokens/s through the reference model at each
//! precision ladder rung, the solver's wall-clock overhead (the other
//! latency the serving path pays), and a [`kernel_crosscheck`] row per
//! quantized precision comparing the measured decode speedup over FP16
//! with the speedup the simulator's `KernelEnv` roofline predicts for a
//! modeled device.
//!
//! Flags: `--quick` (small shapes, CI-friendly), `--check-ordering`
//! (assert fused beats dequant-then-GEMM and effective GB/s orders
//! int4 ≥ int8 ≥ fp16 in decode), `--out PATH` (default
//! `BENCH_kernels.json`).

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::{assign, SolverChoice};
use llmpq_cluster::GpuModel;
use llmpq_cost::{kernel_crosscheck, CostDb, KernelCrosscheck, KernelObservation};
use llmpq_kernels::{qgemm_t, PackedMatrix};
use llmpq_model::{Matrix, PhaseWorkload, RefConfig, RefModel};
use llmpq_quant::{quantize_matrix, quantize_model_uniform, Bitwidth, Rounding};
use llmpq_sim::KernelEnv;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct GemmRow {
    phase: &'static str,
    kernel: String,
    m: usize,
    n: usize,
    k: usize,
    ms: f64,
    /// FP16-equivalent weight throughput: `n·k·2 bytes / time`.
    effective_gbs: f64,
}

#[derive(Serialize)]
struct TokensRow {
    bits: String,
    prefill_tok_s: f64,
    decode_tok_s: f64,
}

#[derive(Serialize)]
struct SolverRow {
    cluster: usize,
    solver: String,
    overhead_s: f64,
    throughput_tok_s: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    quick: bool,
    gemm: Vec<GemmRow>,
    tokens: Vec<TokensRow>,
    solver: SolverRow,
    /// Measured decode speedups vs the roofline prediction on a modeled
    /// device (scale-free ratio comparison).
    crosscheck_device: String,
    crosscheck: Vec<KernelCrosscheck>,
    fused_beats_dequant_decode: bool,
    decode_ordering_int4_int8_fp16: bool,
}

/// A labeled closure the interleaved timer can re-run.
type TimedKernel<'a> = (String, Box<dyn FnMut() + 'a>);

/// Interleaved best-of timer for a *set* of kernels: every round times
/// one batch of each kernel back-to-back, so slow drift on a shared
/// machine (noisy neighbors, frequency steps) hits all kernels alike
/// instead of whichever was measured last. Returns best per-call
/// seconds per kernel, in input order.
fn time_interleaved(iters: usize, rounds: usize, kernels: &mut [TimedKernel<'_>]) -> Vec<f64> {
    for (_, f) in kernels.iter_mut() {
        f();
    }
    let mut best = vec![f64::INFINITY; kernels.len()];
    for _ in 0..rounds {
        for (i, (_, f)) in kernels.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }
    best
}

fn pack(w: &Matrix, bits: Bitwidth) -> PackedMatrix {
    quantize_matrix(w, bits, Rounding::Deterministic, 3)
        .to_packed(llmpq_kernels::DEFAULT_GROUP)
}

fn gemm_suite(quick: bool, rows: &mut Vec<GemmRow>) {
    // Decode is the memory-bound phase: m = 1, square weight sized to
    // spill L2 even in quick mode so the run measures sustained traffic
    // (cache-resident shapes are instruction-bound and rank precisions
    // by vectorization luck, not by bytes moved).
    // The decode shape stays 4096 even in quick mode: smaller weights sit
    // in cache, where all precisions run at the same instructions/element
    // pace and the traffic-proportional ordering disappears into noise.
    let (dec_nk, pre_nk, pre_m) = if quick { (4096, 512, 16) } else { (4096, 1024, 32) };
    let (iters, rounds) = if quick { (2, 3) } else { (4, 5) };

    for (phase, m, nk) in [("decode", 1usize, dec_nk), ("prefill", pre_m, pre_nk)] {
        let w = Matrix::random(nk, nk, 0.2, 5);
        let x = Matrix::random(m, nk, 0.5, 9);
        let packs: Vec<(Bitwidth, PackedMatrix)> = [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3]
            .iter()
            .map(|&b| (b, pack(&w, b)))
            .collect();

        let (xr, wr) = (&x, &w);
        let mut kernels: Vec<TimedKernel<'_>> = Vec::new();
        kernels.push((
            "dense-f32".into(),
            Box::new(move || {
                black_box(xr.matmul_t(black_box(wr)));
            }),
        ));
        for (bits, p) in &packs {
            kernels.push((
                format!("fused-{bits}"),
                Box::new(move || {
                    black_box(qgemm_t(black_box(&xr.data), m, black_box(p)));
                }),
            ));
        }
        // The baseline the fused kernel exists to beat: expand the packed
        // weight to f32, then run the dense GEMM — what serving would pay
        // per step without a fused kernel.
        for (bits, p) in packs.iter().filter(|(b, _)| *b != Bitwidth::Int3) {
            kernels.push((
                format!("dequant-then-f32-{bits}"),
                Box::new(move || {
                    let dense = Matrix { rows: p.rows, cols: p.cols, data: p.unpack() };
                    black_box(xr.matmul_t(black_box(&dense)));
                }),
            ));
        }

        let times = time_interleaved(iters, rounds, &mut kernels);
        let eq_bytes = (nk * nk * 2) as f64;
        for ((kernel, _), s) in kernels.iter().zip(&times) {
            rows.push(GemmRow {
                phase,
                kernel: kernel.clone(),
                m,
                n: nk,
                k: nk,
                ms: s * 1e3,
                effective_gbs: eq_bytes / s / 1e9,
            });
        }
    }
}

fn tokens_suite(quick: bool) -> Vec<TokensRow> {
    let cfg = RefConfig {
        n_layers: 4,
        hidden: if quick { 128 } else { 256 },
        n_heads: 4,
        ffn: if quick { 512 } else { 1024 },
        vocab: 256,
        max_seq: 128,
        seed: 11,
        alibi: false,
    };
    let base = RefModel::new(cfg);
    let prompt: Vec<usize> = (0..48).map(|i| 1 + (i * 7) % 251).collect();
    let n_new = if quick { 16 } else { 32 };
    let all_bits = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4];
    let models: Vec<RefModel> = all_bits
        .iter()
        .map(|&bits| {
            if bits == Bitwidth::Fp16 {
                base.clone()
            } else {
                quantize_model_uniform(&base, bits, Rounding::Deterministic, 0)
            }
        })
        .collect();
    // Interleave precisions round-robin (like the GEMM suite) so host
    // drift hits every bitwidth alike instead of skewing whichever model
    // happened to run during a noisy window.
    let mut pre_kernels: Vec<TimedKernel<'_>> = Vec::new();
    let mut gen_kernels: Vec<TimedKernel<'_>> = Vec::new();
    for (bits, model) in all_bits.iter().zip(&models) {
        let p = &prompt;
        pre_kernels.push((
            format!("prefill-{bits}"),
            Box::new(move || {
                black_box(model.prefill(black_box(p)));
            }),
        ));
        gen_kernels.push((
            format!("generate-{bits}"),
            Box::new(move || {
                black_box(model.generate(black_box(&p[..8]), n_new, 0.0, 1));
            }),
        ));
    }
    let s_pre = time_interleaved(2, 3, &mut pre_kernels);
    let s_gen = time_interleaved(2, 3, &mut gen_kernels);
    // generate() = prefill over 8 tokens + n_new decode steps; the
    // prompt is short so the decode steps dominate.
    all_bits
        .iter()
        .enumerate()
        .map(|(i, bits)| TokensRow {
            bits: bits.to_string(),
            prefill_tok_s: prompt.len() as f64 / s_pre[i],
            decode_tok_s: n_new as f64 / s_gen[i],
        })
        .collect()
}

fn solver_suite() -> SolverRow {
    let db = CostDb::oracle(&KernelEnv::default());
    let mut setup = ServingSetup::paper(3);
    setup.cfg.solver = SolverChoice::Dp { group: 2 };
    let indicator = zoo_indicator(&setup.spec);
    let out = assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg)
        .expect("paper cluster 3 must be solvable");
    SolverRow {
        cluster: 3,
        solver: "Dp{group=2}".into(),
        overhead_s: out.overhead_s,
        throughput_tok_s: out.report.throughput,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check-ordering");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".into());

    println!("bench_kernels — packed dequant-GEMM throughput{}\n", if quick { " (quick)" } else { "" });

    let mut gemm = Vec::new();
    gemm_suite(quick, &mut gemm);

    let mut t = TextTable::new(&["phase", "kernel", "m", "n=k", "ms", "eff GB/s (fp16-eq)"]);
    for r in &gemm {
        t.row(vec![
            r.phase.into(),
            r.kernel.clone(),
            r.m.to_string(),
            r.n.to_string(),
            format!("{:.3}", r.ms),
            format!("{:.2}", r.effective_gbs),
        ]);
    }
    println!("{}", t.render());

    let tokens = tokens_suite(quick);
    let mut t = TextTable::new(&["bits", "prefill tok/s", "decode tok/s"]);
    for r in &tokens {
        t.row(vec![
            r.bits.clone(),
            format!("{:.1}", r.prefill_tok_s),
            format!("{:.1}", r.decode_tok_s),
        ]);
    }
    println!("{}", t.render());

    let solver = solver_suite();
    println!(
        "solver overhead: cluster {} {} -> {:.3} s ({:.1} tok/s plan)\n",
        solver.cluster, solver.solver, solver.overhead_s, solver.throughput_tok_s
    );

    // Cross-check measured decode speedups against the roofline tables
    // for a modeled device. Absolute scales differ (CPU vs modeled GPU);
    // only the fp16-relative ratios are compared.
    let eff = |kernel: &str| {
        gemm.iter()
            .find(|r| r.phase == "decode" && r.kernel == kernel)
            .map(|r| r.effective_gbs)
            .expect("decode row present")
    };
    let obs = [
        KernelObservation { bits: Bitwidth::Fp16, throughput: eff("dense-f32") },
        KernelObservation { bits: Bitwidth::Int8, throughput: eff("fused-int8") },
        KernelObservation { bits: Bitwidth::Int4, throughput: eff("fused-int4") },
        KernelObservation { bits: Bitwidth::Int3, throughput: eff("fused-int3") },
    ];
    let gpu = GpuModel::A100_40G;
    let crosscheck = kernel_crosscheck(
        &gpu.spec(),
        &KernelEnv::default(),
        &llmpq_model::zoo::opt_13b(),
        &PhaseWorkload::decode(8, 512, 512),
        16.0,
        &obs,
    );
    let mut t = TextTable::new(&["bits", "predicted speedup", "measured speedup", "rel err"]);
    for r in &crosscheck {
        t.row(vec![
            r.bits.to_string(),
            format!("{:.2}x", r.predicted_speedup),
            format!("{:.2}x", r.observed_speedup),
            format!("{:.2}", r.rel_err),
        ]);
    }
    println!("decode speedup vs {gpu} roofline:\n{}", t.render());

    let fused_beats_dequant = [Bitwidth::Int8, Bitwidth::Int4].iter().all(|&b| {
        eff(&format!("fused-{b}")) > eff(&format!("dequant-then-f32-{b}"))
    });
    // int8 must clearly beat dense f32 (the margin is large); int4 must
    // not fall materially below int8. The 3% tie tolerance covers the
    // cache-resident regime, where both packed kernels run at the same
    // instructions-per-element pace and only measurement noise separates
    // them — a real int4 regression (like a scalarized unpack) shows up
    // as tens of percent, far outside it.
    let ordering = eff("fused-int4") >= 0.97 * eff("fused-int8")
        && eff("fused-int8") >= eff("dense-f32");
    println!(
        "fused {} dequant-then-f32 in decode; effective-GB/s ordering int4 >= int8 >= fp16 {}",
        if fused_beats_dequant { "beats" } else { "DOES NOT beat" },
        if ordering { "holds (3% tie tolerance)" } else { "DOES NOT hold" },
    );

    let report = Report {
        bench: "bench_kernels",
        quick,
        gemm,
        tokens,
        solver,
        crosscheck_device: gpu.to_string(),
        crosscheck,
        fused_beats_dequant_decode: fused_beats_dequant,
        decode_ordering_int4_int8_fp16: ordering,
    };
    match std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serializable") + "\n") {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    if check {
        assert!(
            fused_beats_dequant,
            "fused dequant-GEMM must beat the dequantize-then-f32 baseline in decode"
        );
        assert!(
            ordering,
            "decode effective GB/s must order int4 >= int8 >= fp16"
        );
    }
}
