//! `bench_solver`: cold vs warm-started replan wall time as the fleet
//! scales. Emits `BENCH_solver.json` (committed at the repo root) with
//! one row per fleet size comparing a cold `assign` after a 1–2 device
//! loss against the incremental planner replanning the same delta from
//! its previous solution (repair-hint incumbent + memoized cost/eval
//! caches + seed lower-bound pruning).
//!
//! `--check` turns the elastic-replan acceptance bar into an exit
//! code: at fleet scale (≥ 50 devices) warm must be ≥ 5× faster than
//! cold, and at every size the warm objective must never be worse than
//! the cold one (the incumbent only prunes work, never the optimum;
//! under grid subsampling it may legitimately *beat* the cold grid).

use llm_pq::{assign, AssignerConfig, IncrementalPlanner, SolverChoice};
use llmpq_cluster::{Cluster, GpuModel, Interconnect};
use llmpq_cost::CostDb;
use llmpq_quant::IndicatorTable;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;
use serde::Serialize;
use std::time::Instant;

/// A heterogeneous mix in fixed proportions: 40% T4, 40% V100, 20%
/// A100 — the fleet shape ROADMAP item 5 targets.
fn mix(n: usize) -> [(GpuModel, usize); 3] {
    let t4 = n * 2 / 5;
    let v100 = n * 2 / 5;
    [(GpuModel::T4_16G, t4), (GpuModel::V100_32G, v100), (GpuModel::A100_40G, n - t4 - v100)]
}

fn fleet(name: &str, groups: &[(GpuModel, usize)]) -> Cluster {
    Cluster::from_groups(name, groups, Interconnect::Ethernet800G, None)
}

fn indicator(n_layers: usize) -> IndicatorTable {
    IndicatorTable {
        omega: (0..n_layers)
            .map(|l| {
                let base = 1.0 / (1.0 + l as f64 * 0.15);
                [base, base * 0.22, base * 0.01, 0.0]
            })
            .collect(),
    }
}

fn cfg() -> AssignerConfig {
    AssignerConfig {
        theta: 0.1,
        solver: SolverChoice::Dp { group: 8 },
        xi: 2,
        max_orderings: 6,
        dp_grid: Some(16),
        search_kv8: false,
        max_bits: None,
    }
}

#[derive(Serialize)]
struct Row {
    n_devices: usize,
    devices_lost: usize,
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
    cold_obj: f64,
    warm_obj: f64,
    /// Warm is never worse than cold (within fp tolerance); it may be
    /// strictly better when the repaired incumbent lands off the cold
    /// solver's subsampled candidate grid.
    equal_objective: bool,
    origin: String,
    hints_applied: u64,
    seeds_pruned: u64,
    cost_cache_hit_rate: f64,
    eval_cache_hit_rate: f64,
}

#[derive(Serialize)]
struct Report {
    model: String,
    theta: f64,
    rows: Vec<Row>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_solver.json".into());

    let spec = llmpq_model::zoo::opt_30b();
    let db = CostDb::oracle(&KernelEnv::default());
    let job = BatchJob::paper_default();
    let ind = indicator(spec.n_layers);
    let cfg = cfg();
    let theta = cfg.theta;

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for n in [8usize, 50, 100, 200] {
        // The elastic scenario: a fleet loses 1–2 devices (two at
        // scale, one on the small rig) and must be replanned *now* —
        // the window between loss and commit is served degraded.
        let lost = if n >= 50 { 2 } else { 1 };
        let full = fleet(&format!("fleet-{n}"), &mix(n));
        let mut shrunk_mix = mix(n);
        shrunk_mix[0].1 -= lost; // T4s die
        let shrunk = fleet(&format!("fleet-{n}-minus{lost}"), &shrunk_mix);

        // Warm path: the planner has already solved the full fleet
        // (steady state before the loss), then replans the survivors.
        let mut warm = IncrementalPlanner::new(spec.clone(), job.clone(), cfg.clone());
        warm.plan(&full, &db, &ind).expect("full fleet plans");
        let t0 = Instant::now();
        let w = warm.plan(&shrunk, &db, &ind).expect("warm replan");
        let warm_s = t0.elapsed().as_secs_f64();
        let warm_obj = w.objective(theta);

        // Cold path: a from-scratch assign on the survivors.
        let t1 = Instant::now();
        let out = assign(&shrunk, &spec, &job, &db, &ind, &cfg).expect("cold plan");
        let cold_s = t1.elapsed().as_secs_f64();
        let cold_obj = out.report.total_latency + theta * out.omega_total;

        let tol = 1e-9 * cold_obj.abs().max(1.0);
        let equal_objective = warm_obj <= cold_obj + tol;
        let speedup = cold_s / warm_s.max(1e-12);
        let row = Row {
            n_devices: n,
            devices_lost: lost,
            cold_s,
            warm_s,
            speedup,
            cold_obj,
            warm_obj,
            equal_objective,
            origin: w.origin.to_string(),
            hints_applied: w.stats.hints_applied,
            seeds_pruned: w.stats.seeds_pruned,
            cost_cache_hit_rate: w.stats.cost.hit_rate(),
            eval_cache_hit_rate: w.stats.eval.hit_rate(),
        };
        println!(
            "n={n} (-{lost}): cold {cold_s:.3}s obj {cold_obj:.4} | warm {warm_s:.3}s obj \
             {warm_obj:.4} ({}) | {speedup:.1}x, cost-cache {:.0}% eval-cache {:.0}%, \
             {} hint(s), {} seed(s) pruned",
            row.origin,
            100.0 * row.cost_cache_hit_rate,
            100.0 * row.eval_cache_hit_rate,
            row.hints_applied,
            row.seeds_pruned,
        );
        println!(
            "  warm stats: dp_calls {} pairs_pruned {} seeds_evaluated {} cost {}h/{}m eval {}h/{}m",
            w.stats.dp_calls,
            w.stats.pairs_pruned,
            w.stats.seeds_evaluated,
            w.stats.cost.hits,
            w.stats.cost.misses,
            w.stats.eval.hits,
            w.stats.eval.misses,
        );
        if !equal_objective {
            failures.push(format!(
                "n={n}: warm objective {warm_obj} worse than cold {cold_obj}"
            ));
        }
        if n >= 50 && speedup < 5.0 {
            failures.push(format!("n={n}: warm speedup {speedup:.2}x below the 5x bar"));
        }
        rows.push(row);
    }

    let report = Report { model: spec.name.clone(), theta, rows };
    match std::fs::write(&out_path, serde_json::to_string_pretty(&report).expect("serializable") + "\n") {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }

    if check && !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    if check {
        println!("acceptance held: warm never worse, >=5x at fleet scale");
    }
}
