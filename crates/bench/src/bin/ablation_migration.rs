//! Ablation: live plan migration vs. restart-from-checkpoint.
//!
//! Both mechanisms move a serving pipeline from a mixed Int8/Fp16 plan
//! to an all-Int4 plan with one layer re-homed onto the next stage,
//! mid-generation, with requests in flight:
//!
//! * **live swap** (`run_pipeline_with_swap`): the two-phase protocol —
//!   workers requantize the target shard while the old plan keeps
//!   serving, commit at the token boundary, and re-partitioned layers
//!   ship their KV slices as bit-exact chunks. The switch costs one
//!   commit window; nothing is recomputed.
//! * **restart baseline** (PR 1's recovery path): stop at the lock-step
//!   checkpoint, reload every stage on the target plan, re-prefill the
//!   prompt *plus every token generated so far*, and resume. The switch
//!   costs a full weight reload plus a KV recompute that grows with the
//!   prefix already served.
//!
//! Emits `BENCH_migration.json` so the recovery path has a tracked perf
//! trajectory, and prints a comparison table.

use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_bench::TextTable;
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::{
    load_stage_weights, run_pipeline, run_pipeline_with_swap, SupervisorConfig, SwapRequest,
};
use std::time::Instant;

/// Evenly partition `n_layers` into `n_stages`, alternating Int8/Fp16.
fn base_plan(n_layers: usize, n_stages: usize, n_seqs: usize) -> ExecutionPlan {
    let per = n_layers / n_stages;
    let rem = n_layers % n_stages;
    let mut stages = Vec::new();
    let mut start = 0usize;
    for s in 0..n_stages {
        let len = per + usize::from(s < rem);
        let bits = (start..start + len)
            .map(|l| if l % 2 == 0 { Bitwidth::Int8 } else { Bitwidth::Fp16 })
            .collect();
        stages.push(StagePlan { device: s, layer_start: start, layer_end: start + len, bits });
        start += len;
    }
    ExecutionPlan {
        model: format!("bench-{n_layers}l"),
        cluster: "ablation".into(),
        stages,
        microbatch: MicrobatchPlan {
            prefill_size: 2,
            prefill_count: n_seqs.div_ceil(2).max(1),
            decode_size: n_seqs.max(1),
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

/// All-Int4 target with one layer moved across the first stage boundary.
fn target_plan(base: &ExecutionPlan) -> ExecutionPlan {
    let mut cuts: Vec<(usize, usize)> =
        base.stages.iter().map(|s| (s.layer_start, s.layer_end)).collect();
    for i in 0..cuts.len().saturating_sub(1) {
        if cuts[i + 1].1 - cuts[i + 1].0 >= 2 {
            cuts[i].1 += 1;
            cuts[i + 1].0 += 1;
            break;
        }
    }
    let stages = cuts
        .iter()
        .zip(&base.stages)
        .map(|(&(lo, hi), s)| StagePlan {
            device: s.device,
            layer_start: lo,
            layer_end: hi,
            bits: vec![Bitwidth::Int4; hi - lo],
        })
        .collect();
    ExecutionPlan { stages, ..base.clone() }
}

fn main() {
    let n_layers = 16;
    let n_stages = 4;
    let batch = 4usize;
    let prompt_len = 8usize;
    let n_generate = 12usize;
    let at_token = 4usize;
    let seed = 0u64;

    println!(
        "Ablation — live plan migration vs. restart-from-checkpoint \
         ({n_layers} layers / {n_stages} stages, batch {batch}, swap at token {at_token}/{n_generate})\n"
    );

    let checkpoint = RefModel::new(RefConfig::scaled_like(n_layers, 0xBE7C));
    let base = base_plan(n_layers, n_stages, batch);
    let target = target_plan(&base);
    let prompts: Vec<Vec<usize>> = (0..batch)
        .map(|i| (0..prompt_len).map(|j| (i * 41 + j * 17) % checkpoint.cfg.vocab).collect())
        .collect();

    // --- live swap ------------------------------------------------------
    let t = Instant::now();
    let live = run_pipeline_with_swap(
        &checkpoint,
        &base,
        &prompts,
        n_generate,
        Rounding::Deterministic,
        seed,
        &[SwapRequest { at_token, plan: target.clone() }],
        &SupervisorConfig::default(),
        None,
        None,
    )
    .expect("live swap run");
    let live_wall_s = t.elapsed().as_secs_f64();
    let swap = live.swaps.first().expect("one swap scheduled");
    assert!(swap.committed, "fault-free live swap must commit");

    // --- restart-from-checkpoint baseline -------------------------------
    // Serve the prefix under the old plan, stop at the boundary.
    let t = Instant::now();
    let prefix = run_pipeline(&checkpoint, &base, &prompts, at_token, Rounding::Deterministic, seed, None)
        .expect("prefix run");
    let prefix_s = t.elapsed().as_secs_f64();
    // Reload every stage's weights on the target plan (serving is down).
    let t = Instant::now();
    let mut reload_modules = 0usize;
    for sp in &target.stages {
        let (w, stats) = load_stage_weights(&checkpoint, sp.layer_start, &sp.bits, Rounding::Deterministic, seed);
        reload_modules += stats.modules;
        std::hint::black_box(w);
    }
    let reload_s = t.elapsed().as_secs_f64();
    // Re-prefill prompt + served prefix, then decode the remainder.
    let resumed_prompts: Vec<Vec<usize>> = prompts
        .iter()
        .zip(&prefix.tokens)
        .map(|(p, gen)| p.iter().chain(gen.iter()).copied().collect())
        .collect();
    let t = Instant::now();
    let tail = run_pipeline(
        &checkpoint,
        &target,
        &resumed_prompts,
        n_generate - at_token,
        Rounding::Deterministic,
        seed,
        None,
    )
    .expect("resumed run");
    let resume_s = t.elapsed().as_secs_f64();
    let baseline_wall_s = prefix_s + reload_s + resume_s;
    // KV the restart recomputes at the boundary: every cached position of
    // every layer, k + v rows of `hidden` f32s per position.
    let recomputed_rows = batch * (prompt_len + at_token);
    let recomputed_kv_bytes = recomputed_rows * n_layers * checkpoint.cfg.hidden * 2 * 4;

    // Same tokens either way is NOT expected (Int4 vs the hybrid history
    // differ) — but both must serve every request full-length.
    assert!(live.output.tokens.iter().all(|t| t.len() == n_generate));
    assert!(tail.tokens.iter().all(|t| t.len() == n_generate - at_token));

    let mut table = TextTable::new(&["mechanism", "total wall (s)", "switch cost", "KV moved/recomputed"]);
    table.row(vec![
        "live swap".into(),
        format!("{live_wall_s:.3}"),
        format!("{} µs commit window", swap.latency_us),
        format!("{} B shipped", swap.kv_bytes),
    ]);
    table.row(vec![
        "restart+checkpoint".into(),
        format!("{baseline_wall_s:.3}"),
        format!("{:.3} s reload + {:.3} s re-prefill+decode", reload_s, resume_s),
        format!("{recomputed_kv_bytes} B recomputed"),
    ]);
    println!("{}", table.render());
    println!(
        "live swap commit window: {} µs; restart switch gap: {:.1} ms ({} modules reloaded)",
        swap.latency_us,
        (reload_s + resume_s) * 1e3,
        reload_modules
    );

    let report = BenchReport {
        bench: "ablation_migration",
        config: BenchConfig { n_layers, n_stages, batch, prompt_len, n_generate, at_token },
        live_swap: LiveSwap {
            wall_s: live_wall_s,
            commit_latency_us: swap.latency_us,
            kv_bytes_shipped: swap.kv_bytes,
            restarts: live.restarts,
            committed: swap.committed,
        },
        restart_baseline: RestartBaseline {
            wall_s: baseline_wall_s,
            reload_s,
            resume_s,
            reloaded_modules: reload_modules,
            kv_bytes_recomputed: recomputed_kv_bytes,
        },
    };
    let path = "BENCH_migration.json";
    match std::fs::write(path, serde_json::to_string_pretty(&report).expect("serializable") + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[derive(serde::Serialize)]
struct BenchReport {
    bench: &'static str,
    config: BenchConfig,
    live_swap: LiveSwap,
    restart_baseline: RestartBaseline,
}

#[derive(serde::Serialize)]
struct BenchConfig {
    n_layers: usize,
    n_stages: usize,
    batch: usize,
    prompt_len: usize,
    n_generate: usize,
    at_token: usize,
}

#[derive(serde::Serialize)]
struct LiveSwap {
    wall_s: f64,
    commit_latency_us: u64,
    kv_bytes_shipped: u64,
    restarts: usize,
    committed: bool,
}

#[derive(serde::Serialize)]
struct RestartBaseline {
    wall_s: f64,
    reload_s: f64,
    resume_s: f64,
    reloaded_modules: usize,
    kv_bytes_recomputed: usize,
}
