//! Ablation: phase-aware vs prefill-only partitioning (Opportunity 1).
//!
//! Identical assigner with the decode terms zeroed (a PipeEdge-style
//! single-phase objective) vs the full phase-aware objective, on the
//! mixed clusters. The gap quantifies the value of modelling both
//! phases when devices are heterogeneous.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assigner::{build_problem, device_orderings, solution_to_plan};
use llm_pq::evaluate_plan;
use llmpq_cost::CostDb;
use llmpq_quant::Bitwidth;
use llmpq_sim::KernelEnv;
use llmpq_solver::solve_partition;
use llmpq_workload::microbatch_counts;

fn best_throughput(setup: &ServingSetup, phase_aware: bool) -> Option<f64> {
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = zoo_indicator(&setup.spec);
    let mut best: Option<f64> = None;
    for ordering in device_orderings(&setup.cluster, setup.cfg.max_orderings) {
        for mb in microbatch_counts(&setup.job, ordering.len(), setup.cfg.xi) {
            let (problem, _q, sizes) = build_problem(
                &setup.cluster,
                &ordering,
                &setup.spec,
                &setup.job,
                &db,
                Some(&indicator),
                setup.cfg.theta,
                &mb,
                2,
                &Bitwidth::ALL,
                phase_aware,
                setup.cfg.dp_grid,
                16.0,
            );
            let Some(sol) = solve_partition(&problem) else { continue };
            let plan = solution_to_plan(
                &setup.cluster,
                &ordering,
                &setup.spec,
                &sizes,
                &sol,
                &mb,
                if phase_aware { "phase-aware" } else { "prefill-only" },
                &Bitwidth::ALL,
                16,
            );
            if let Ok(r) = evaluate_plan(&plan, &setup.cluster, &setup.spec, &db, &setup.job) {
                if best.is_none_or(|b| r.throughput > b) {
                    best = Some(r.throughput);
                }
            }
        }
    }
    best
}

fn main() {
    println!("Ablation — phase-aware vs prefill-only partition objective\n");
    let mut t = TextTable::new(&["Cluster", "Model", "prefill-only (tok/s)", "phase-aware (tok/s)", "gain"]);
    for n in [3usize, 4, 5, 6] {
        let setup = ServingSetup::paper(n);
        let single = best_throughput(&setup, false);
        let aware = best_throughput(&setup, true);
        t.row(vec![
            n.to_string(),
            setup.spec.name.clone(),
            single.map_or("-".into(), |x| format!("{x:.2}")),
            aware.map_or("-".into(), |x| format!("{x:.2}")),
            match (single, aware) {
                (Some(s), Some(a)) => format!("{:.2}x", a / s),
                _ => "-".into(),
            },
        ]);
    }
    println!("{}", t.render());
    println!("Expectation: phase-aware ≥ prefill-only on heterogeneous clusters — the");
    println!("decode phase dominates wall-clock (n=100 steps) and balances differently.");
}
