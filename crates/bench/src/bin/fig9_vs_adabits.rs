//! Figure 9: LLM-PQ vs pure adaptive quantization (adabits).
//!
//! adabits is the seed of Algorithm 2: quality-only bit assignment on an
//! even partition, no phase-aware placement, no micro-batch tuning.
//! Clusters 3, 5, 6, 9 at s=512 and cluster 4 at s=128. Paper shape:
//! LLM-PQ outperforms adabits everywhere — joint optimization matters.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::{adabits_plan, assign};
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Figure 9 — LLM-PQ vs pure adaptive quantization\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&["Cluster", "Model", "adabits (tok/s)", "LLM-PQ (tok/s)", "gain"]);
    let cases: Vec<(usize, bool)> = vec![(3, false), (5, false), (6, false), (9, false), (4, true)];
    for (n, short) in cases {
        let setup = if short { ServingSetup::paper_short(n) } else { ServingSetup::paper(n) };
        let indicator = zoo_indicator(&setup.spec);
        let ada = adabits_plan(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, setup.cfg.theta);
        let pq = assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg);
        let (ada_t, pq_t) = (
            ada.as_ref().ok().map(|(_, r)| r.throughput),
            pq.as_ref().ok().map(|o| o.report.throughput),
        );
        t.row(vec![
            format!("{n}{}", if short { " (s=128)" } else { "" }),
            setup.spec.name.clone(),
            ada_t.map_or("OOM".into(), |x| format!("{x:.2}")),
            pq_t.map_or("-".into(), |x| format!("{x:.2}")),
            match (ada_t, pq_t) {
                (Some(a), Some(p)) => format!("{:.2}x", p / a),
                _ => "-".into(),
            },
        ]);
    }
    println!("{}", t.render());
    println!("Paper shape check: LLM-PQ ≥ adabits in all selected cases.");
}
