//! Ablation: the offline plan under online traffic (paper §7).
//!
//! Serves Poisson arrivals with ShareGPT-like prompt lengths through the
//! cluster-3 LLM-PQ plan, batching requests offline-style (pad to the
//! longest prompt, generate to the longest request). Sweeps the arrival
//! rate to find the saturation knee and reports the padding waste the
//! paper's offline assumption incurs on unpredictable workloads — the
//! gap ORCA-style iteration scheduling and vLLM's paged KV attack.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::evaluate::stage_loads;
use llm_pq::assign;
use llmpq_cost::CostDb;
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload};
use llmpq_workload::{simulate_online, BatchJob, OnlineConfig, PromptLengthModel};

fn main() {
    println!("Ablation — offline plan under online (Poisson) traffic, cluster 3\n");
    let setup = ServingSetup::paper(3);
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = zoo_indicator(&setup.spec);
    let out = assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg)
        .expect("plan");
    println!(
        "plan: {} stages, {:.1} mean bits, offline throughput {:.1} tok/s\n",
        out.plan.stages.len(),
        out.report.mean_bits,
        out.report.throughput
    );

    // Batch-cost function: rebuild the pipeline profile for the batch's
    // padded shape and simulate it.
    let cluster = setup.cluster.clone();
    let spec = setup.spec.clone();
    let plan = out.plan.clone();
    let batch_cost = move |s: usize, n: usize, b: usize| -> f64 {
        let job = BatchJob { global_batch: b, prompt_len: s, n_generate: n };
        let mut p = plan.clone();
        // Clamp micro-batch counts to the actual batch size.
        p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
        p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
        p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
        p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
        let loads = stage_loads(&p, &cluster, &spec, &db, &job);
        let wl = PipelineWorkload {
            prefill_microbatches: p.microbatch.prefill_count,
            decode_microbatches: p.microbatch.decode_count,
            n_tokens: n,
            master_prefill: 0.0,
            master_decode: 0.0,
        };
        simulate_pipeline(&loads, &wl).total_latency
    };

    let prompt_model = PromptLengthModel::default();
    let mut t = TextTable::new(&[
        "arrival (req/s)", "failure rate", "p50 latency (s)", "p95 latency (s)",
        "queue wait (s)", "throughput (tok/s)", "retried", "padding waste",
    ]);
    for (rate, failure_rate) in
        [(0.2, 0.0), (0.5, 0.0), (1.0, 0.0), (2.0, 0.0), (2.0, 0.1), (4.0, 0.0), (8.0, 0.0)]
    {
        let cfg = OnlineConfig { arrival_rate: rate, n_requests: 150, batch_size: 8, max_wait_s: 2.0, n_generate: (50, 150), failure_rate, seed: 5 };
        let stats = simulate_online(&cfg, &prompt_model, &batch_cost).expect("online sim");
        t.row(vec![
            format!("{rate}"),
            format!("{:.0}%", failure_rate * 100.0),
            format!("{:.2}", stats.p50_latency),
            format!("{:.2}", stats.p95_latency),
            format!("{:.2}", stats.mean_queue_wait),
            format!("{:.1}", stats.throughput),
            format!("{}", stats.retried),
            format!("{:.0}%", stats.padding_fraction * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("Expectation: a saturation knee — past the engine's capacity the queue wait");
    println!("dominates p95; padding waste stays large because offline batching pads to");
    println!("the longest prompt (the inefficiency ORCA/vLLM address, paper §7). With a");
    println!("10% per-batch failure rate, retried batches appear and tail latency grows.");
}
