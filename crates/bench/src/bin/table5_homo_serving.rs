//! Table 5: serving performance on the homogeneous clusters (9–11).
//!
//! Same protocol as Table 4. Paper shape: LLM-PQ still helps on
//! homogeneous clusters but by smaller margins (1.02–2.57×), and on the
//! very memory-tight cluster 9 FlexGen-int8 can win (heavy compression
//! makes compute slower while swapping gets efficient).

use llmpq_bench::serving::{compare_cluster, llmpq_speedup, rows_to_table, ServingSetup};

fn main() {
    println!("Table 5 — homogeneous clusters (s=512, n=100, batch 32)\n");
    for n in 9..=11 {
        let setup = ServingSetup::paper(n);
        println!(
            "cluster {n}: {:?} -> {}",
            setup.cluster.model_counts(),
            setup.spec.name
        );
        let rows = compare_cluster(&setup, true);
        println!("{}", rows_to_table(&setup.spec.name, &setup.cluster.name, &rows).render());
        if let Some(s) = llmpq_speedup(&rows) {
            println!("LLM-PQ vs PipeEdge: {s:.2}x (paper: 2.57x / 1.02x / 1.08x)\n");
        }
    }
}
