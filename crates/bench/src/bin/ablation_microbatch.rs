//! Ablation: the micro-batch pruning window ξ and hybrid sizing
//! (Optimization #1).
//!
//! Sweeps the prefill window ξ and compares hybrid (per-phase) sizing
//! against PipeEdge's single shared micro-batch size on cluster 3.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assign;
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Ablation — micro-batch pruning window ξ (cluster 3, OPT-30b)\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut setup = ServingSetup::paper(3);
    let indicator = zoo_indicator(&setup.spec);

    let mut t = TextTable::new(&["xi", "Throughput (tok/s)", "prefill µ", "decode µ", "Overhead (s)"]);
    for xi in [1usize, 2, 4, 8, 16, 32] {
        setup.cfg.xi = xi;
        match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
            Ok(out) => t.row(vec![
                xi.to_string(),
                format!("{:.2}", out.report.throughput),
                out.plan.microbatch.prefill_size.to_string(),
                out.plan.microbatch.decode_size.to_string(),
                format!("{:.2}", out.overhead_s),
            ]),
            Err(e) => t.row(vec![xi.to_string(), e, "-".into(), "-".into(), "-".into()]),
        }
    }
    println!("{}", t.render());
    println!("Expectation: throughput saturates once ξ covers the useful prefill sizes,");
    println!("while overhead grows with the enumeration; the chosen decode µ stays large");
    println!("(weight-read amortization) and the prefill µ small (bubble control).");
}
