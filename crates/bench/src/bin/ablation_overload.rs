//! Ablation: overload behavior past the saturation point.
//!
//! Calibrates the cluster-3 LLM-PQ plan's serving capacity from the
//! cost profile, then drives the admission + KV-guard + degradation
//! serving loop at 0.5×/1×/2×/4× that capacity under each admission
//! policy, reporting goodput, tail sojourn, shed/expired counts, and
//! the degradation ladder's rung trajectory. The acceptance bar: at 4×
//! capacity under deadline shedding, goodput stays within 90% of the
//! 1× goodput (load shedding keeps useful work flowing instead of
//! collapsing), and the ladder demonstrably steps down and recovers.
//!
//! `--soak <seconds>` instead runs the *real* supervised thread
//! pipeline (tiny stand-in model) at 2× capacity with a fault plan
//! active, checking request conservation and that RSS stays bounded —
//! the CI overload-soak job drives this mode under a wall-clock
//! watchdog.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::evaluate::stage_loads;
use llm_pq::{degradation_ladder, AssignerConfig, ExecutionPlan, DEFAULT_CAPS};
use llmpq_cost::CostDb;
use llmpq_model::{RefConfig, RefModel};
use llmpq_runtime::{
    poisson_requests, serve, AdmissionConfig, AdmissionPolicy, DegradationConfig, FaultPlan,
    KvGuardConfig, PipelineEngine, Request, ServeConfig, SimEngine, SupervisorConfig,
};
use llmpq_sim::{simulate_pipeline, KernelEnv, PipelineWorkload};
use llmpq_workload::BatchJob;

const PROMPT_LEN: usize = 32;
const N_GENERATE: usize = 32;
const MAX_BATCH: usize = 8;

fn plan_cost(
    plan: &ExecutionPlan,
    setup: &ServingSetup,
    db: &CostDb,
    b: usize,
) -> f64 {
    let job = BatchJob { global_batch: b, prompt_len: PROMPT_LEN, n_generate: N_GENERATE };
    let mut p = plan.clone();
    p.microbatch.prefill_size = p.microbatch.prefill_size.min(b).max(1);
    p.microbatch.prefill_count = b.div_ceil(p.microbatch.prefill_size);
    p.microbatch.decode_size = p.microbatch.decode_size.min(b).max(1);
    p.microbatch.decode_count = b.div_ceil(p.microbatch.decode_size);
    let loads = stage_loads(&p, &setup.cluster, &setup.spec, db, &job);
    let wl = PipelineWorkload {
        prefill_microbatches: p.microbatch.prefill_count,
        decode_microbatches: p.microbatch.decode_count,
        n_tokens: N_GENERATE,
        master_prefill: 0.0,
        master_decode: 0.0,
    };
    simulate_pipeline(&loads, &wl).total_latency
}

fn rss_kib() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4) // 4 KiB pages
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--soak") {
        let secs: u64 = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(30);
        soak(secs);
        return;
    }
    sweep();
}

/// The rate sweep over admission policies, on the cost-profile engine.
fn sweep() {
    println!("Ablation — overload control past saturation, cluster 3\n");
    let setup = ServingSetup::paper(3);
    let db = CostDb::oracle(&KernelEnv::default());
    let indicator = zoo_indicator(&setup.spec);
    // Trimmed search so the four ladder solves stay interactive.
    let cfg = AssignerConfig { max_orderings: 2, dp_grid: Some(8), ..setup.cfg };
    let job = BatchJob { global_batch: MAX_BATCH, prompt_len: PROMPT_LEN, n_generate: N_GENERATE };
    let ladder =
        degradation_ladder(&setup.cluster, &setup.spec, &job, &db, &indicator, &cfg, &DEFAULT_CAPS)
            .expect("ladder");
    println!("degradation ladder: {} rungs", ladder.len());
    for r in &ladder.rungs {
        println!(
            "  {}: predicted {:.2}s/batch, quality cost {:.3}, mean {:.1} bits",
            r.label, r.predicted_latency_s, r.quality_cost, r.mean_bits
        );
    }

    // Affine per-rung batch cost, and capacity from rung 0 at full batch.
    let rung_cost_s: Vec<(f64, f64)> = ladder
        .rungs
        .iter()
        .map(|r| {
            let c1 = plan_cost(&r.plan, &setup, &db, 1);
            let cb = plan_cost(&r.plan, &setup, &db, MAX_BATCH);
            ((c1).max(1e-6), ((cb - c1) / (MAX_BATCH - 1) as f64).max(0.0))
        })
        .collect();
    let (b0, p0) = rung_cost_s[0];
    let capacity_rps = MAX_BATCH as f64 / (b0 + p0 * MAX_BATCH as f64);
    println!("\ncalibrated capacity (rung 0, batch {MAX_BATCH}): {capacity_rps:.2} req/s\n");

    // KV budget from the cost model: per-token KV bytes × sequence
    // length × a small multiple of the batch size.
    let kv_per_token =
        setup.spec.kv_bytes_per_layer(1, 1, 16.0) * setup.spec.n_layers as f64;
    let seq = (PROMPT_LEN + N_GENERATE) as f64;
    let kv_budget = kv_per_token * seq * (2 * MAX_BATCH) as f64;

    let n_requests = 200usize;
    let deadline_s = 8.0 * (b0 + p0); // generous SLO: 8× single-request service
    let policies =
        [AdmissionPolicy::Reject, AdmissionPolicy::DeadlineShed, AdmissionPolicy::QueueTimeout];
    let mut table = TextTable::new(&[
        "rate", "policy", "offered", "served", "shed", "expired", "goodput (req/s)",
        "p50 (s)", "p99 (s)", "rung peak", "rung final",
    ]);
    let mut goodput_1x_deadline = 0.0f64;
    let mut goodput_4x_deadline = 0.0f64;
    let mut peak_rung_4x = 0usize;
    let mut final_rung_4x = 0usize;
    for mult in [0.5, 1.0, 2.0, 4.0] {
        let rate = capacity_rps * mult;
        // Burst at the target rate, then a quiet drain tail so the
        // ladder's recovery (step back up) is observable in-run.
        let mut requests =
            poisson_requests(n_requests, rate, PROMPT_LEN, N_GENERATE, 17).expect("arrivals");
        let burst_end = requests.last().map(|r| r.arrival_s).unwrap_or(0.0);
        for (i, mut r) in poisson_requests(20, capacity_rps * 0.2, PROMPT_LEN, N_GENERATE, 18)
            .expect("tail")
            .into_iter()
            .enumerate()
        {
            r.id = n_requests + i;
            r.arrival_s += burst_end;
            requests.push(r);
        }
        for policy in policies {
            let mut engine = SimEngine::new(rung_cost_s.clone(), MAX_BATCH, kv_per_token);
            let cfg = ServeConfig {
                admission: AdmissionConfig {
                    policy,
                    max_queue: 4 * MAX_BATCH,
                    default_deadline_s: Some(deadline_s),
                    queue_timeout_s: deadline_s,
                },
                kv_guard: Some(KvGuardConfig { budget_bytes: kv_budget, headroom: 0.1 }),
                degradation: Some(DegradationConfig { high: 0.75, low: 0.25, dwell: 2 }),
                max_inflight: 2,
                max_retries: 2,
            };
            let rep = serve(&mut engine, &requests, &cfg, None);
            assert!(rep.stats.conserves(0), "conservation violated: {:?}", rep.stats);
            table.row(vec![
                format!("{mult:.1}x"),
                policy.to_string(),
                format!("{}", rep.stats.offered),
                format!("{}", rep.stats.served),
                format!("{}", rep.stats.shed),
                format!("{}", rep.stats.expired),
                format!("{:.2}", rep.goodput_rps),
                format!("{:.2}", rep.p50_sojourn_s),
                format!("{:.2}", rep.p99_sojourn_s),
                format!("{}", rep.peak_rung),
                format!("{}", rep.final_rung),
            ]);
            if policy == AdmissionPolicy::DeadlineShed {
                if mult == 1.0 {
                    goodput_1x_deadline = rep.goodput_rps;
                }
                if mult == 4.0 {
                    goodput_4x_deadline = rep.goodput_rps;
                    peak_rung_4x = rep.peak_rung;
                    final_rung_4x = rep.final_rung;
                }
            }
        }
    }
    println!("{}", table.render());

    // Acceptance: overload must not collapse goodput, and the ladder
    // must both engage and release.
    println!(
        "deadline-shed goodput: 1x {:.2} req/s, 4x {:.2} req/s ({:.0}% retained)",
        goodput_1x_deadline,
        goodput_4x_deadline,
        100.0 * goodput_4x_deadline / goodput_1x_deadline.max(1e-9),
    );
    assert!(
        goodput_4x_deadline >= 0.9 * goodput_1x_deadline,
        "goodput collapsed past saturation: 4x {goodput_4x_deadline:.2} vs 1x {goodput_1x_deadline:.2}"
    );
    assert!(peak_rung_4x >= 1, "ladder never stepped down at 4x capacity");
    assert_eq!(final_rung_4x, 0, "ladder did not recover after the burst drained");
    println!("PASS: goodput retained >= 90% at 4x, ladder engaged (peak rung {peak_rung_4x}) and recovered");
}

/// `--soak <seconds>`: the real pipeline under sustained 2× overload
/// with faults injected, watching conservation and RSS.
fn soak(secs: u64) {
    println!("Overload soak: real pipeline at 2x capacity with faults, {secs}s\n");
    let n_layers = 4usize;
    let checkpoint = RefModel::new(RefConfig::scaled_like(n_layers, 77));
    // Two rungs built by hand (full-quality and all-int4) — the soak
    // exercises the serving loop and supervisor, not the solver.
    let mk_plan = |bits: llmpq_quant::Bitwidth| ExecutionPlan {
        model: "soak".into(),
        cluster: "duo".into(),
        stages: vec![
            llm_pq::StagePlan { device: 0, layer_start: 0, layer_end: 2, bits: vec![bits; 2] },
            llm_pq::StagePlan { device: 1, layer_start: 2, layer_end: 4, bits: vec![bits; 2] },
        ],
        microbatch: llmpq_workload::MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 1,
            decode_size: 2,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    };
    let plans = vec![mk_plan(llmpq_quant::Bitwidth::Fp16), mk_plan(llmpq_quant::Bitwidth::Int4)];
    let sup = SupervisorConfig {
        heartbeat_timeout_ms: 200,
        progress_timeout_ms: 600,
        tick_ms: 1,
        max_restarts: 4,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
        backoff_cap_ms: 8,
        max_queue: Some(2),
        ..SupervisorConfig::default()
    };

    // Calibrate real capacity with one warmup batch.
    let mut engine = PipelineEngine::new(checkpoint, plans, sup);
    engine.max_batch = 4;
    let warm: Vec<Request> = (0..4)
        .map(|id| Request {
            id,
            arrival_s: 0.0,
            prompt: vec![1 + id, 2, 3, 4],
            n_generate: 4,
            deadline_s: None,
            priority: 0,
        })
        .collect();
    let warm_cfg = ServeConfig { degradation: None, ..ServeConfig::default() };
    let warm_rep = serve(&mut engine, &warm, &warm_cfg, None);
    let capacity_rps = (warm_rep.stats.served as f64 / warm_rep.makespan_s).max(1.0);
    println!("calibrated capacity: {capacity_rps:.1} req/s");

    let rss_start = rss_kib().unwrap_or(0);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
    let mut round = 0u64;
    let mut total = llmpq_runtime::AdmissionStats::default();
    while std::time::Instant::now() < deadline {
        round += 1;
        engine.fault_plans = vec![
            FaultPlan::crash_schedule(&[(round as usize % 2, 1)]),
            FaultPlan::default(),
        ];
        engine.outputs.clear();
        let requests =
            poisson_requests(24, capacity_rps * 2.0, 4, 4, 1000 + round).expect("arrivals");
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                policy: AdmissionPolicy::DeadlineShed,
                max_queue: 12,
                default_deadline_s: Some(24.0 / capacity_rps),
                queue_timeout_s: 24.0 / capacity_rps,
            },
            kv_guard: None,
            degradation: Some(DegradationConfig { high: 0.7, low: 0.2, dwell: 2 }),
            max_inflight: 2,
            max_retries: 2,
        };
        let rep = serve(&mut engine, &requests, &cfg, None);
        assert!(rep.stats.conserves(0), "round {round}: conservation violated: {:?}", rep.stats);
        assert_eq!(
            engine.outputs.len(),
            rep.stats.served,
            "round {round}: served requests without outputs"
        );
        total.offered += rep.stats.offered;
        total.served += rep.stats.served;
        total.shed += rep.stats.shed;
        total.expired += rep.stats.expired;
        if round.is_multiple_of(5) {
            let rss = rss_kib().unwrap_or(0);
            println!(
                "round {round}: offered {} served {} shed {} expired {} | restarts {} | rss {} KiB",
                total.offered, total.served, total.shed, total.expired, engine.restarts, rss
            );
        }
    }
    let rss_end = rss_kib().unwrap_or(0);
    assert!(total.conserves(0), "soak lost requests: {total:?}");
    assert!(total.served > 0, "soak made no progress");
    // RSS must stay bounded: allow generous slack for allocator noise,
    // but catch a real leak (unbounded queues would grow far past this).
    let growth = rss_end.saturating_sub(rss_start);
    assert!(growth < 256 * 1024, "RSS grew {growth} KiB during the soak — leak?");
    println!(
        "\nPASS: {round} rounds, {} offered / {} served / {} shed / {} expired, \
         {} supervisor restarts, RSS {rss_start} -> {rss_end} KiB",
        total.offered, total.served, total.shed, total.expired, engine.restarts
    );
}
