//! Ablation: serving economics — the introduction's claim quantified.
//!
//! "Utilizing a heterogeneous cluster with a mix of available high- and
//! low-capacity GPUs can potentially substantially reduce the serving
//! cost." This bench prices each paper cluster at public-cloud-style
//! hourly rates and compares **dollars per million generated tokens**
//! under the best LLM-PQ plan, against both the PipeEdge baseline on the
//! same cluster and a homogeneous premium-GPU alternative.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::baselines::pipeedge_plan;
use llm_pq::assign;
use llmpq_cluster::{cluster_hourly_cost, serving_cost};
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Ablation — $/Mtok across clusters (on-demand-style rates)\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&[
        "Cluster", "Model", "$/hour", "PipeEdge $/Mtok", "LLM-PQ $/Mtok", "saving",
    ]);
    for n in [3usize, 4, 5, 6, 9, 10] {
        let setup = ServingSetup::paper(n);
        let indicator = zoo_indicator(&setup.spec);
        let hourly = cluster_hourly_cost(&setup.cluster);
        let pe = pipeedge_plan(&setup.cluster, &setup.spec, &setup.job, &db)
            .ok()
            .map(|(_, r)| serving_cost(&setup.cluster, r.throughput));
        let pq = assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg)
            .ok()
            .map(|o| serving_cost(&setup.cluster, o.report.throughput));
        t.row(vec![
            n.to_string(),
            setup.spec.name.clone(),
            format!("{hourly:.2}"),
            pe.map_or("-".into(), |c| format!("{:.2}", c.dollars_per_mtok)),
            pq.map_or("-".into(), |c| format!("{:.2}", c.dollars_per_mtok)),
            match (pe, pq) {
                (Some(a), Some(b)) => format!("{:.0}%", (1.0 - b.dollars_per_mtok / a.dollars_per_mtok) * 100.0),
                _ => "-".into(),
            },
        ]);
    }
    println!("{}", t.render());
    println!("Expectation: LLM-PQ's throughput gains translate 1:1 into $/Mtok savings on");
    println!("the same hardware, and scavenged heterogeneous clusters (3, 5) become cost-");
    println!("competitive with premium homogeneous ones (10) — the Fig-1 motivation.");
}
