//! Ablation: telemetry overhead — observed vs. unobserved pipeline runs.
//!
//! The telemetry layer records per-item histograms (relaxed atomics) and
//! lifecycle spans (one mutex push per span) on the hot path of every
//! stage worker. This bench executes the same generation workload on the
//! live threaded runtime with telemetry off and on, takes the median
//! wall-clock of several trials each, and reports the overhead — the
//! observability layer must stay well under 2% so it can be left on in
//! production runs.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_bench::TextTable;
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::{run_pipeline, run_pipeline_observed, Telemetry};
use llmpq_workload::MicrobatchPlan;

fn plan(n_layers: usize) -> ExecutionPlan {
    let split = n_layers / 2;
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "bench".into(),
        stages: vec![
            StagePlan {
                device: 0,
                layer_start: 0,
                layer_end: split,
                bits: vec![Bitwidth::Int8; split],
            },
            StagePlan {
                device: 1,
                layer_start: split,
                layer_end: n_layers,
                bits: vec![Bitwidth::Fp16; n_layers - split],
            },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 2,
            decode_size: 4,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    println!("Ablation — telemetry overhead on the live pipeline runtime\n");
    let model = RefModel::new(RefConfig::tiny());
    let p = plan(model.cfg.n_layers);
    let prompts: Vec<Vec<usize>> =
        (0..4).map(|i| (0..12).map(|j| (i * 31 + j * 7) % model.cfg.vocab).collect()).collect();
    let n_generate = 48;
    let trials = 7;

    // Interleave off/on trials so drift (cache warmup, CPU frequency)
    // hits both arms equally.
    let mut off = Vec::with_capacity(trials);
    let mut on = Vec::with_capacity(trials);
    let mut spans_recorded = 0usize;
    for _ in 0..trials {
        let plain =
            run_pipeline(&model, &p, &prompts, n_generate, Rounding::Deterministic, 0, None)
                .expect("plain run");
        off.push(plain.wall_s);
        let tel = Telemetry::new(p.stages.len());
        let observed = run_pipeline_observed(
            &model,
            &p,
            &prompts,
            n_generate,
            Rounding::Deterministic,
            0,
            None,
            Some(tel.clone()),
        )
        .expect("observed run");
        assert_eq!(plain.tokens, observed.tokens, "telemetry must not perturb tokens");
        on.push(observed.wall_s);
        spans_recorded = tel.spans().len();
    }
    let (m_off, m_on) = (median(off.clone()), median(on.clone()));
    let overhead = (m_on - m_off) / m_off;

    let mut t = TextTable::new(&["telemetry", "median wall (ms)", "min (ms)", "max (ms)"]);
    for (label, xs) in [("off", &off), ("on", &on)] {
        t.row(vec![
            label.to_string(),
            format!("{:.2}", median(xs.clone()) * 1e3),
            format!("{:.2}", xs.iter().cloned().fold(f64::MAX, f64::min) * 1e3),
            format!("{:.2}", xs.iter().cloned().fold(0.0f64, f64::max) * 1e3),
        ]);
    }
    println!("{}", t.render());
    println!(
        "per run: {spans_recorded} spans, {} work items, {} trials each arm",
        p.microbatch.prefill_count + (n_generate - 1) * p.microbatch.decode_count,
        trials
    );
    println!("telemetry overhead: {:.2}% (median-over-median)", overhead * 100.0);
    println!("\nExpectation: overhead < 2% — the recorders are relaxed atomics and the");
    println!("span log is one short mutex push per item, both dwarfed by a layer forward.");
}
