//! Figure 1: GPU proportions and utilization in a production AI cluster.
//!
//! Regenerates both panels from the synthetic production trace:
//! (a) the fleet share per GPU type, (b) the one-month average
//! utilization per type. The paper's qualitative claims to reproduce:
//! high-calibre GPUs (A100/V100) are a minority of the fleet and run far
//! hotter than the plentiful inference cards (T4/P100).

use llmpq_bench::TextTable;
use llmpq_cluster::{ProductionTrace, TraceConfig};

fn main() {
    let cfg = TraceConfig::default();
    println!("Figure 1 — production-cluster trace (seed {}, {} GPUs, {} h)\n", cfg.seed, cfg.fleet_size, cfg.hours);
    let trace = ProductionTrace::generate(&cfg);

    let mut t = TextTable::new(&["GPU", "Fleet share", "Avg utilization", "Idle GPU-hours"]);
    let portions = trace.portions();
    let utils = trace.mean_utilization();
    let idle = trace.idle_gpu_hours();
    for ((g, share), ((_, util), (_, idle_h))) in portions.iter().zip(utils.iter().zip(idle.iter())) {
        t.row(vec![
            g.to_string(),
            format!("{:.1}%", share * 100.0),
            format!("{:.1}%", util * 100.0),
            format!("{:.0}", idle_h),
        ]);
    }
    println!("{}", t.render());

    let t4 = portions.iter().find(|(g, _)| g.to_string() == "T4-16G").unwrap().1;
    let a100 = portions.iter().find(|(g, _)| g.to_string() == "A100-40G").unwrap().1;
    let t4u = utils.iter().find(|(g, _)| g.to_string() == "T4-16G").unwrap().1;
    let a100u = utils.iter().find(|(g, _)| g.to_string() == "A100-40G").unwrap().1;
    println!("Paper shape check:");
    println!("  low-calibre cards dominate the fleet:  T4 share / A100 share = {:.1}x", t4 / a100);
    println!("  high-calibre cards run hot:            A100 util / T4 util   = {:.1}x", a100u / t4u);
    println!("\n=> idle low-calibre capacity is the resource pool LLM-PQ targets.");
}
