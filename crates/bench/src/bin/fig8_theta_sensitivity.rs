//! Figure 8: sensitivity to the user quality scalar θ.
//!
//! Clusters 9 (OPT-30b) and 5 (OPT-66b), sweeping θ over orders of
//! magnitude. Paper shape: growing θ trades throughput for model
//! quality — PPL (and Σω) falls, tokens/s falls or stays flat.

use llmpq_bench::quality::{zoo_indicator, QualityHarness};
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assign;
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Figure 8 — θ sensitivity\n");
    let db = CostDb::oracle(&KernelEnv::default());
    for cluster_no in [9usize, 5] {
        let mut setup = ServingSetup::paper(cluster_no);
        let indicator = zoo_indicator(&setup.spec);
        let harness = QualityHarness::new(&setup.spec);
        println!("{} on cluster {cluster_no} (fp16 PPL {:.3}):", setup.spec.name, harness.fp16_ppl);
        let mut t = TextTable::new(&["theta", "Throughput (tok/s)", "Σω", "PPL", "mean bits"]);
        for theta in [0.0, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            setup.cfg.theta = theta;
            match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
                Ok(out) => t.row(vec![
                    format!("{theta}"),
                    format!("{:.2}", out.report.throughput),
                    format!("{:.3}", out.omega_total),
                    format!("{:.3}", harness.ppl(&out.plan.bit_assignment())),
                    format!("{:.1}", out.report.mean_bits),
                ]),
                Err(e) => t.row(vec![format!("{theta}"), "-".into(), "-".into(), e, "-".into()]),
            }
        }
        println!("{}", t.render());
    }
    println!("Paper shape check: larger θ ⇒ lower Σω / PPL, generally lower throughput.");
}
