//! Table 8: grouping and heuristic approaches under a time limit.
//!
//! Clusters 3, 4, 6, 10 with three strategies: Group=2, Group=1 (full
//! space) and the Algorithm-2 heuristic, reporting resulting throughput
//! and solving overhead. Paper shapes: Group=1 usually matches or beats
//! Group=2 at higher overhead; the heuristic has the smallest overhead
//! and wins on some clusters (4 and 10 in the paper).

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::{assign, SolverChoice};
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Table 8 — optimizer strategies under a 60 s limit\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&["Model", "Cluster", "Method", "Throughput (tok/s)", "Overhead (s)"]);
    for n in [3usize, 4, 6, 10] {
        let base = ServingSetup::paper(n);
        let indicator = zoo_indicator(&base.spec);
        let methods: Vec<(&str, SolverChoice)> = vec![
            ("Group=2", SolverChoice::Dp { group: 2 }),
            ("Group=1", SolverChoice::Dp { group: 1 }),
            ("Heuristic", SolverChoice::Heuristic),
        ];
        for (name, solver) in methods {
            let mut setup = ServingSetup::paper(n);
            setup.cfg.solver = solver;
            match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
                Ok(out) => t.row(vec![
                    setup.spec.name.clone(),
                    n.to_string(),
                    name.into(),
                    format!("{:.2}", out.report.throughput),
                    format!("{:.2}", out.overhead_s),
                ]),
                Err(e) => t.row(vec![setup.spec.name.clone(), n.to_string(), name.into(), e, "-".into()]),
            }
        }
    }
    println!("{}", t.render());
    println!("Paper shape check: heuristic has the smallest overhead; Group=1 explores");
    println!("the largest space (highest overhead); throughputs stay in the same band.");
}
