//! Ablation: continuous (iteration-level) batching vs static batching
//! on the online serving path.
//!
//! Same arrival trace, same engine, same admission policy, same SLO —
//! the only variable is the scheduler:
//!
//! * **continuous** (`serve_continuous`): requests join the running
//!   batch at token boundaries the moment KV blocks free up, prefill is
//!   chunked and interleaved with decodes under one token budget, and
//!   finished sequences leave immediately.
//! * **static** (`serve_static`): the offline-style baseline —
//!   accumulate a batch (or time out), pad every prompt to the longest,
//!   lock-step decode to the longest generation, all finish together.
//!
//! The paper-facing metric is **goodput** (completions inside the SLO
//! per second) with the p99 deadline-miss picture alongside: padding
//! and lock-step decode make static batching burn budget on work that
//! was already late. Emits `BENCH_serving.json` and prints the table.
//!
//! A second section prices the distributed ring itself: the same
//! continuous scheduler over the real reference model, once on the
//! in-process [`ModelStepEngine`] and once on the two-stage
//! [`DistStepEngine`] channel ring (no faults). The rings must agree
//! token for token; the row pair shows what the pipeline hop costs in
//! throughput and tail latency.

use llmpq_bench::TextTable;
use llm_pq::{ExecutionPlan, MicrobatchPlan, StagePlan};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{BitAssignment, Bitwidth, Rounding};
use llmpq_runtime::{
    poisson_requests, serve_continuous, serve_static, ContinuousConfig, ContinuousReport,
    DistServeConfig, DistStepEngine, IterCost, KvPoolConfig, LatencySummary, ModelStepEngine,
    Request, SimStepEngine,
};
use llmpq_workload::{sample_arrivals, OnlineConfig, PromptLengthModel};
use serde::Serialize;
use std::time::Duration;

const N_REQUESTS: usize = 1500;
const DEADLINE_S: f64 = 2.0;
const SEED: u64 = 42;
const VOCAB: usize = 97;
const STATIC_BATCH: usize = 8;
const STATIC_WAIT_S: f64 = 0.25;

fn pool() -> KvPoolConfig {
    KvPoolConfig { n_blocks: 4096, block_tokens: 16 }
}

fn engine() -> SimStepEngine {
    SimStepEngine::new(pool(), IterCost::default_ladder(1), VOCAB, SEED)
}

/// Deterministic prompt tokens; the trace fixes only lengths.
fn fill_prompt(i: usize, len: usize) -> Vec<usize> {
    let mut x = SEED ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % VOCAB as u64) as usize
        })
        .collect()
}

fn trace(rate: f64) -> Vec<Request> {
    let cfg = OnlineConfig {
        arrival_rate: rate,
        n_requests: N_REQUESTS,
        n_generate: (4, 24),
        seed: SEED,
        ..OnlineConfig::default()
    };
    sample_arrivals(&cfg, &PromptLengthModel::default())
        .expect("valid trace config")
        .iter()
        .enumerate()
        .map(|(i, a)| Request {
            id: i,
            arrival_s: a.arrival_s,
            prompt: fill_prompt(i, a.prompt_len.min(512)),
            n_generate: a.n_generate,
            deadline_s: Some(a.arrival_s + DEADLINE_S),
            priority: a.priority,
        })
        .collect()
}

fn sched_cfg() -> ContinuousConfig {
    ContinuousConfig {
        admission: llmpq_runtime::AdmissionConfig {
            max_queue: 4096,
            ..Default::default()
        },
        ..ContinuousConfig::default()
    }
}

#[derive(Serialize, Clone, Copy)]
struct Pct {
    p50_ms: f64,
    p99_ms: f64,
}

fn pct(l: &Option<LatencySummary>) -> Pct {
    match l {
        Some(s) => Pct { p50_ms: s.p50 * 1e3, p99_ms: s.p99 * 1e3 },
        None => Pct { p50_ms: f64::NAN, p99_ms: f64::NAN },
    }
}

#[derive(Serialize)]
struct Row {
    rate_rps: f64,
    mode: String,
    completed: usize,
    goodput_rps: f64,
    deadline_miss_rate: f64,
    throughput_tok_s: f64,
    ttft: Pct,
    tpot: Pct,
    sojourn: Pct,
    mean_batch_occupancy: f64,
    peak_batch: usize,
    kv_peak_occupancy: f64,
    preemptions: u64,
    prefill_tokens: u64,
    conserves: bool,
}

fn row(rate: f64, r: &ContinuousReport) -> Row {
    Row {
        rate_rps: rate,
        mode: r.mode.clone(),
        completed: r.completed,
        goodput_rps: r.goodput_rps,
        deadline_miss_rate: r.deadline_miss_rate,
        throughput_tok_s: r.throughput_tok_s,
        ttft: pct(&r.ttft),
        tpot: pct(&r.tpot),
        sojourn: pct(&r.sojourn),
        mean_batch_occupancy: r.mean_batch_occupancy,
        peak_batch: r.peak_batch,
        kv_peak_occupancy: r.kv_peak_occupancy,
        preemptions: r.preemptions,
        prefill_tokens: r.prefill_tokens,
        conserves: r.conserves(),
    }
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    n_requests: usize,
    deadline_s: f64,
    static_batch: usize,
    static_wait_s: f64,
    rows: Vec<Row>,
    /// Continuous must win (or tie) goodput at every rate while its
    /// p99 deadline-miss picture is no worse — the claim CI checks.
    continuous_wins_goodput: bool,
    /// Requests in the distributed-vs-local section.
    dist_requests: usize,
    /// The `distributed` / `local-model` row pair must produce
    /// identical tokens for every request — the other claim CI checks.
    distributed_matches_local: bool,
}

/// Distributed-vs-local: the real tiny reference model served by the
/// continuous scheduler on the in-process engine and on the two-stage
/// channel ring, same trace, same quantization seed, no faults. Rows
/// land as modes `local-model` and `distributed`; returns whether the
/// two produced bit-identical outputs.
const DIST_REQUESTS: usize = 120;
const DIST_RATE_RPS: f64 = 50.0;

fn dist_stage_plan(bits: Bitwidth) -> ExecutionPlan {
    let n = RefConfig::tiny().n_layers;
    let split = n / 2;
    ExecutionPlan {
        model: "tiny".into(),
        cluster: "bench".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: split, bits: vec![bits; split] },
            StagePlan { device: 1, layer_start: split, layer_end: n, bits: vec![bits; n - split] },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 1,
            prefill_count: 1,
            decode_size: 1,
            decode_count: 1,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn dist_vs_local(rows: &mut Vec<Row>, table: &mut TextTable) -> bool {
    let model = RefModel::new(RefConfig::tiny());
    let n = model.cfg.n_layers;
    let bit_ladder = vec![
        BitAssignment::uniform(n, Bitwidth::Fp16),
        BitAssignment::uniform(n, Bitwidth::Int8),
    ];
    let reqs = poisson_requests(DIST_REQUESTS, DIST_RATE_RPS, 6, 8, SEED).expect("valid trace");
    let cfg = || ContinuousConfig {
        token_budget: 16,
        max_batch: 8,
        ..ContinuousConfig::default()
    };
    let local_engine = ModelStepEngine::new(
        &model,
        &bit_ladder,
        Rounding::Deterministic,
        SEED,
        KvPoolConfig::default(),
    )
    .expect("local engine");
    let local = serve_continuous(local_engine, &reqs, cfg(), None).expect("local run");
    let dist_engine = DistStepEngine::over_channels(
        &model,
        vec![dist_stage_plan(Bitwidth::Fp16), dist_stage_plan(Bitwidth::Int8)],
        Rounding::Deterministic,
        SEED,
        DistServeConfig { n_slots: 16, tick: Duration::from_millis(1), ..Default::default() },
        None,
    )
    .expect("channel ring");
    let dist = serve_continuous(dist_engine, &reqs, cfg(), None).expect("distributed run");
    assert!(local.conserves(), "local-model run must conserve");
    assert!(dist.conserves(), "distributed run must conserve");
    let tokens = |r: &ContinuousReport| {
        let mut m: Vec<(usize, Vec<usize>)> =
            r.outputs.iter().map(|f| (f.id, f.tokens.clone())).collect();
        m.sort();
        m
    };
    let matches = tokens(&local) == tokens(&dist);
    for (mode, r) in [("local-model", &local), ("distributed", &dist)] {
        let mut w = row(DIST_RATE_RPS, r);
        w.mode = mode.into();
        table.row(vec![
            format!("{DIST_RATE_RPS}"),
            w.mode.clone(),
            format!("{}", w.completed),
            format!("{:.1}", w.goodput_rps),
            format!("{:.1}", w.deadline_miss_rate * 100.0),
            format!("{:.2}", w.ttft.p99_ms),
            format!("{:.3}", w.tpot.p99_ms),
            format!("{:.1}", w.mean_batch_occupancy),
            format!("{}", w.prefill_tokens),
        ]);
        rows.push(w);
    }
    matches
}

fn main() {
    let rates = [50.0, 150.0, 400.0];
    let mut rows = Vec::new();
    let mut wins = true;
    let mut table = TextTable::new(&[
        "rate", "mode", "done", "goodput", "miss%", "ttft p99 ms", "tpot p99 ms", "occ", "prefill tok",
    ]);
    for rate in rates {
        let reqs = trace(rate);
        let cont = serve_continuous(engine(), &reqs, sched_cfg(), None).expect("continuous run");
        let stat = serve_static(engine(), &reqs, sched_cfg(), STATIC_BATCH, STATIC_WAIT_S)
            .expect("static run");
        assert!(cont.conserves(), "continuous must conserve at rate {rate}");
        assert!(stat.conserves(), "static must conserve at rate {rate}");
        wins &= cont.goodput_rps >= stat.goodput_rps
            && cont.deadline_miss_rate <= stat.deadline_miss_rate + 1e-9;
        for r in [&cont, &stat] {
            let w = row(rate, r);
            table.row(vec![
                format!("{rate}"),
                w.mode.clone(),
                format!("{}", w.completed),
                format!("{:.1}", w.goodput_rps),
                format!("{:.1}", w.deadline_miss_rate * 100.0),
                format!("{:.2}", w.ttft.p99_ms),
                format!("{:.3}", w.tpot.p99_ms),
                format!("{:.1}", w.mean_batch_occupancy),
                format!("{}", w.prefill_tokens),
            ]);
            rows.push(w);
        }
    }
    let matches = dist_vs_local(&mut rows, &mut table);
    println!("{}", table.render());
    println!(
        "continuous {} static batching on goodput at matched-or-better deadline-miss rate",
        if wins { "beats-or-ties" } else { "DOES NOT beat" }
    );
    println!(
        "distributed ring {} the local engine token-for-token on {DIST_REQUESTS} requests",
        if matches { "matches" } else { "DOES NOT match" }
    );
    let report = BenchReport {
        bench: "ablation_serving",
        n_requests: N_REQUESTS,
        deadline_s: DEADLINE_S,
        static_batch: STATIC_BATCH,
        static_wait_s: STATIC_WAIT_S,
        rows,
        continuous_wins_goodput: wins,
        dist_requests: DIST_REQUESTS,
        distributed_matches_local: matches,
    };
    let path = "BENCH_serving.json";
    match std::fs::write(path, serde_json::to_string_pretty(&report).expect("serializable") + "\n")
    {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    assert!(wins, "continuous batching must not lose to the static baseline");
    assert!(matches, "distributed ring must match the local engine token-for-token");
}
