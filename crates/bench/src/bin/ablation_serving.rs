//! Ablation: continuous (iteration-level) batching vs static batching
//! on the online serving path.
//!
//! Same arrival trace, same engine, same admission policy, same SLO —
//! the only variable is the scheduler:
//!
//! * **continuous** (`serve_continuous`): requests join the running
//!   batch at token boundaries the moment KV blocks free up, prefill is
//!   chunked and interleaved with decodes under one token budget, and
//!   finished sequences leave immediately.
//! * **static** (`serve_static`): the offline-style baseline —
//!   accumulate a batch (or time out), pad every prompt to the longest,
//!   lock-step decode to the longest generation, all finish together.
//!
//! The paper-facing metric is **goodput** (completions inside the SLO
//! per second) with the p99 deadline-miss picture alongside: padding
//! and lock-step decode make static batching burn budget on work that
//! was already late. Emits `BENCH_serving.json` and prints the table.

use llmpq_bench::TextTable;
use llmpq_runtime::{
    serve_continuous, serve_static, ContinuousConfig, ContinuousReport, IterCost, KvPoolConfig,
    LatencySummary, Request, SimStepEngine,
};
use llmpq_workload::{sample_arrivals, OnlineConfig, PromptLengthModel};
use serde::Serialize;

const N_REQUESTS: usize = 1500;
const DEADLINE_S: f64 = 2.0;
const SEED: u64 = 42;
const VOCAB: usize = 97;
const STATIC_BATCH: usize = 8;
const STATIC_WAIT_S: f64 = 0.25;

fn pool() -> KvPoolConfig {
    KvPoolConfig { n_blocks: 4096, block_tokens: 16 }
}

fn engine() -> SimStepEngine {
    SimStepEngine::new(pool(), IterCost::default_ladder(1), VOCAB, SEED)
}

/// Deterministic prompt tokens; the trace fixes only lengths.
fn fill_prompt(i: usize, len: usize) -> Vec<usize> {
    let mut x = SEED ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % VOCAB as u64) as usize
        })
        .collect()
}

fn trace(rate: f64) -> Vec<Request> {
    let cfg = OnlineConfig {
        arrival_rate: rate,
        n_requests: N_REQUESTS,
        n_generate: (4, 24),
        seed: SEED,
        ..OnlineConfig::default()
    };
    sample_arrivals(&cfg, &PromptLengthModel::default())
        .expect("valid trace config")
        .iter()
        .enumerate()
        .map(|(i, a)| Request {
            id: i,
            arrival_s: a.arrival_s,
            prompt: fill_prompt(i, a.prompt_len.min(512)),
            n_generate: a.n_generate,
            deadline_s: Some(a.arrival_s + DEADLINE_S),
            priority: a.priority,
        })
        .collect()
}

fn sched_cfg() -> ContinuousConfig {
    ContinuousConfig {
        admission: llmpq_runtime::AdmissionConfig {
            max_queue: 4096,
            ..Default::default()
        },
        ..ContinuousConfig::default()
    }
}

#[derive(Serialize, Clone, Copy)]
struct Pct {
    p50_ms: f64,
    p99_ms: f64,
}

fn pct(l: &Option<LatencySummary>) -> Pct {
    match l {
        Some(s) => Pct { p50_ms: s.p50 * 1e3, p99_ms: s.p99 * 1e3 },
        None => Pct { p50_ms: f64::NAN, p99_ms: f64::NAN },
    }
}

#[derive(Serialize)]
struct Row {
    rate_rps: f64,
    mode: String,
    completed: usize,
    goodput_rps: f64,
    deadline_miss_rate: f64,
    throughput_tok_s: f64,
    ttft: Pct,
    tpot: Pct,
    sojourn: Pct,
    mean_batch_occupancy: f64,
    peak_batch: usize,
    kv_peak_occupancy: f64,
    preemptions: u64,
    prefill_tokens: u64,
    conserves: bool,
}

fn row(rate: f64, r: &ContinuousReport) -> Row {
    Row {
        rate_rps: rate,
        mode: r.mode.clone(),
        completed: r.completed,
        goodput_rps: r.goodput_rps,
        deadline_miss_rate: r.deadline_miss_rate,
        throughput_tok_s: r.throughput_tok_s,
        ttft: pct(&r.ttft),
        tpot: pct(&r.tpot),
        sojourn: pct(&r.sojourn),
        mean_batch_occupancy: r.mean_batch_occupancy,
        peak_batch: r.peak_batch,
        kv_peak_occupancy: r.kv_peak_occupancy,
        preemptions: r.preemptions,
        prefill_tokens: r.prefill_tokens,
        conserves: r.conserves(),
    }
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    n_requests: usize,
    deadline_s: f64,
    static_batch: usize,
    static_wait_s: f64,
    rows: Vec<Row>,
    /// Continuous must win (or tie) goodput at every rate while its
    /// p99 deadline-miss picture is no worse — the claim CI checks.
    continuous_wins_goodput: bool,
}

fn main() {
    let rates = [50.0, 150.0, 400.0];
    let mut rows = Vec::new();
    let mut wins = true;
    let mut table = TextTable::new(&[
        "rate", "mode", "done", "goodput", "miss%", "ttft p99 ms", "tpot p99 ms", "occ", "prefill tok",
    ]);
    for rate in rates {
        let reqs = trace(rate);
        let cont = serve_continuous(engine(), &reqs, sched_cfg(), None).expect("continuous run");
        let stat = serve_static(engine(), &reqs, sched_cfg(), STATIC_BATCH, STATIC_WAIT_S)
            .expect("static run");
        assert!(cont.conserves(), "continuous must conserve at rate {rate}");
        assert!(stat.conserves(), "static must conserve at rate {rate}");
        wins &= cont.goodput_rps >= stat.goodput_rps
            && cont.deadline_miss_rate <= stat.deadline_miss_rate + 1e-9;
        for r in [&cont, &stat] {
            let w = row(rate, r);
            table.row(vec![
                format!("{rate}"),
                w.mode.clone(),
                format!("{}", w.completed),
                format!("{:.1}", w.goodput_rps),
                format!("{:.1}", w.deadline_miss_rate * 100.0),
                format!("{:.2}", w.ttft.p99_ms),
                format!("{:.3}", w.tpot.p99_ms),
                format!("{:.1}", w.mean_batch_occupancy),
                format!("{}", w.prefill_tokens),
            ]);
            rows.push(w);
        }
    }
    println!("{}", table.render());
    println!(
        "continuous {} static batching on goodput at matched-or-better deadline-miss rate",
        if wins { "beats-or-ties" } else { "DOES NOT beat" }
    );
    let report = BenchReport {
        bench: "ablation_serving",
        n_requests: N_REQUESTS,
        deadline_s: DEADLINE_S,
        static_batch: STATIC_BATCH,
        static_wait_s: STATIC_WAIT_S,
        rows,
        continuous_wins_goodput: wins,
    };
    let path = "BENCH_serving.json";
    match std::fs::write(path, serde_json::to_string_pretty(&report).expect("serializable") + "\n")
    {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    assert!(wins, "continuous batching must not lose to the static baseline");
}
