//! Ablation: tensor-parallel device meshes (paper §7).
//!
//! Enumerates the valid uniform TP widths on clusters with same-type
//! device groups (7 and 11) and plans at each width. The paper argues TP
//! "can be readily included in our search space" by treating a TP group
//! as a bigger virtual device; this bench shows when the trade pays:
//! wider TP cuts pipeline depth and buys memory (milder quantization)
//! at all-reduce cost.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::tp_sweep;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Ablation — tensor-parallel mesh search\n");
    for n in [7usize, 11] {
        let setup = ServingSetup::paper(n);
        let indicator = zoo_indicator(&setup.spec);
        println!("cluster {n}: {:?} -> {}", setup.cluster.model_counts(), setup.spec.name);
        let out = tp_sweep(
            &setup.cluster,
            &setup.spec,
            &setup.job,
            &KernelEnv::default(),
            &indicator,
            setup.cfg.theta,
            4,
        );
        let mut t = TextTable::new(&["TP width", "Pipeline stages", "Throughput (tok/s)", "mean bits"]);
        for o in &out {
            t.row(vec![
                o.tp_width.to_string(),
                o.n_stages.to_string(),
                format!("{:.2}", o.throughput),
                format!("{:.1}", o.mean_bits),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Expectation: TP widens memory per virtual device (higher mean bits) and");
    println!("shortens the pipeline; whether throughput improves depends on whether the");
    println!("all-reduce tax is cheaper than the pipeline bubbles it removes.");
}
