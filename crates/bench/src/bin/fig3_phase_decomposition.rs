//! Figure 3: phase time decomposition with different precisions,
//! P100 vs V100.
//!
//! Regenerates the per-layer prefill/decode execution times at prompt
//! length 512, batch size 8, for FP16/INT8/INT4/INT3 on both devices,
//! with the P100/V100 ratio annotated. Paper shape: the P100/V100 gap is
//! far larger in (compute-bound) prefill than in (bandwidth-bound)
//! decode — paper quotes 14.53× for prefill under FP16 — which is why
//! single-phase partitioning mis-balances heterogeneous pipelines.

use llmpq_bench::TextTable;
use llmpq_cluster::GpuModel;
use llmpq_model::{zoo, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, KernelEnv};

fn main() {
    let spec = zoo::opt_13b();
    let env = KernelEnv::default();
    let pre = PhaseWorkload::prefill(8, 512);
    let dec = PhaseWorkload::decode(8, 512, 512);
    println!("Figure 3 — single {} layer, s=512, b=8\n", spec.name);

    let mut t = TextTable::new(&["Precision", "Phase", "V100 (ms)", "P100 (ms)", "P100/V100"]);
    for bits in [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3] {
        for (phase, w) in [("prefill", &pre), ("decode", &dec)] {
            let v = layer_latency(&GpuModel::V100_32G.spec(), &env, &spec, w, bits, 16.0);
            let p = layer_latency(&GpuModel::P100_12G.spec(), &env, &spec, w, bits, 16.0);
            t.row(vec![
                bits.to_string(),
                phase.into(),
                format!("{:.3}", v * 1e3),
                format!("{:.3}", p * 1e3),
                format!("{:.2}x", p / v),
            ]);
        }
    }
    println!("{}", t.render());

    let v_pre = layer_latency(&GpuModel::V100_32G.spec(), &env, &spec, &pre, Bitwidth::Fp16, 16.0);
    let p_pre = layer_latency(&GpuModel::P100_12G.spec(), &env, &spec, &pre, Bitwidth::Fp16, 16.0);
    let v_dec = layer_latency(&GpuModel::V100_32G.spec(), &env, &spec, &dec, Bitwidth::Fp16, 16.0);
    let p_dec = layer_latency(&GpuModel::P100_12G.spec(), &env, &spec, &dec, Bitwidth::Fp16, 16.0);
    println!("Paper shape check (FP16): prefill ratio {:.2}x vs decode ratio {:.2}x", p_pre / v_pre, p_dec / v_dec);
    println!("(paper reports the prefill gap at 14.53x and a much smaller decode gap;");
    println!(" the divergence between the two ratios is the phase-awareness motivation)");
}
