//! Figure 4: perplexity and zero-shot accuracy vs quantization scheme.
//!
//! (a) BLOOM-3b-like PPL on three corpora under fp16 / int8 / int4 /
//!     int3 / mixed4-8 / mixed3-4 (mixed = uniformly random per layer,
//!     as in the paper);
//! (b) OPT-1.3b-like zero-shot accuracy on three task suites under the
//!     same schemes.
//!
//! Paper shapes: PPL rises (accuracy falls) as bits shrink, and each
//! mixed scheme lands **between** its two uniform endpoints.

use llmpq_bench::{scaled_teacher, TextTable};
use llmpq_model::zoo;
use llmpq_quant::{quantize_model, BitAssignment, Bitwidth, Rounding};
use llmpq_quality::tasks::standard_tasks;
use llmpq_quality::{accuracy_suite, perplexity_suite, standard_corpora};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mixed(n_layers: usize, a: Bitwidth, b: Bitwidth, seed: u64) -> BitAssignment {
    let mut rng = SmallRng::seed_from_u64(seed);
    BitAssignment {
        bits: (0..n_layers).map(|_| if rng.gen_bool(0.5) { a } else { b }).collect(),
    }
}

fn schemes(n_layers: usize) -> Vec<(String, BitAssignment)> {
    vec![
        ("fp16".into(), BitAssignment::uniform(n_layers, Bitwidth::Fp16)),
        ("int8".into(), BitAssignment::uniform(n_layers, Bitwidth::Int8)),
        ("mixed4-8".into(), mixed(n_layers, Bitwidth::Int4, Bitwidth::Int8, 48)),
        ("int4".into(), BitAssignment::uniform(n_layers, Bitwidth::Int4)),
        ("mixed3-4".into(), mixed(n_layers, Bitwidth::Int3, Bitwidth::Int4, 34)),
        ("int3".into(), BitAssignment::uniform(n_layers, Bitwidth::Int3)),
    ]
}

fn main() {
    // (a) BLOOM-3b PPL.
    let bloom = zoo::bloom_3b();
    let teacher = scaled_teacher(&bloom);
    let corpora = standard_corpora(&teacher, 6, 28);
    println!("Figure 4(a) — {}-like PPL vs bitwidth\n", bloom.name);
    let mut t = TextTable::new(&["Scheme", "wikitext2-syn", "ptb-syn", "c4-syn", "avg PPL"]);
    for (name, bits) in schemes(bloom.n_layers) {
        let q = quantize_model(&teacher, &bits, Rounding::Deterministic, 0);
        let r = perplexity_suite(&q, &corpora);
        t.row(vec![
            name,
            format!("{:.3}", r.per_corpus[0].1),
            format!("{:.3}", r.per_corpus[1].1),
            format!("{:.3}", r.per_corpus[2].1),
            format!("{:.3}", r.average),
        ]);
    }
    println!("{}", t.render());

    // (b) OPT-1.3b accuracy.
    let opt = zoo::opt_1_3b();
    let teacher = scaled_teacher(&opt);
    let tasks = standard_tasks(&teacher, 40);
    println!("Figure 4(b) — {}-like zero-shot accuracy vs bitwidth\n", opt.name);
    let mut t = TextTable::new(&["Scheme", "lambada-syn", "arc-syn", "piqa-syn", "avg acc (%)"]);
    for (name, bits) in schemes(opt.n_layers) {
        let q = quantize_model(&teacher, &bits, Rounding::Deterministic, 0);
        let per: Vec<f64> = tasks.iter().map(|s| llmpq_quality::task_accuracy(&q, s)).collect();
        let avg = accuracy_suite(&q, &tasks);
        t.row(vec![
            name,
            format!("{:.1}", per[0] * 100.0),
            format!("{:.1}", per[1] * 100.0),
            format!("{:.1}", per[2] * 100.0),
            format!("{:.1}", avg * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("Paper shape check: PPL monotone in bits; mixed4-8 between int4 and int8;");
    println!("mixed3-4 between int3 and int4; accuracy roughly the mirror image.");
}
