//! Figure 5: prefill/decode execution time under different precisions
//! and batch sizes.
//!
//! Regenerates the grid: one OPT-30b layer, prompt length 512, batch
//! sizes 1–32, precisions {FP16, INT8, INT4, INT3} on T4, V100 and
//! A100. Paper shapes to reproduce:
//!  * FP16 is often fastest in prefill (quantization overhead);
//!  * low-precision weight-only kernels win decode (weight traffic);
//!  * T4's INT8 ≈ FP16 while V100's INT8 is always slower.

use llmpq_bench::TextTable;
use llmpq_cluster::GpuModel;
use llmpq_model::{zoo, PhaseWorkload};
use llmpq_quant::Bitwidth;
use llmpq_sim::{layer_latency, KernelEnv};

#[allow(clippy::type_complexity)]
fn main() {
    let spec = zoo::opt_30b();
    let env = KernelEnv::default();
    println!("Figure 5 — single {} layer, s=512\n", spec.name);

    for gpu in [GpuModel::T4_16G, GpuModel::V100_32G, GpuModel::A100_40G] {
        let dev = gpu.spec();
        let phases: [(&str, fn(usize) -> PhaseWorkload); 2] = [
            ("prefill", |b| PhaseWorkload::prefill(b, 512)),
            ("decode", |b| PhaseWorkload::decode(b, 512, 512)),
        ];
        for (phase_name, mk) in phases {
            let mut t = TextTable::new(&["batch", "fp16 (ms)", "int8 (ms)", "int4 (ms)", "int3 (ms)", "fastest"]);
            for b in [1usize, 2, 4, 8, 16, 32] {
                let w = mk(b);
                let times: Vec<(Bitwidth, f64)> = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3]
                    .iter()
                    .map(|&bits| (bits, layer_latency(&dev, &env, &spec, &w, bits, 16.0)))
                    .collect();
                let fastest = times
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap()
                    .0;
                t.row(vec![
                    b.to_string(),
                    format!("{:.3}", times[0].1 * 1e3),
                    format!("{:.3}", times[1].1 * 1e3),
                    format!("{:.3}", times[2].1 * 1e3),
                    format!("{:.3}", times[3].1 * 1e3),
                    fastest.to_string(),
                ]);
            }
            println!("{gpu} / {phase_name}:\n{}", t.render());
        }
    }
    println!("Paper shape check: FP16 should dominate prefill columns on compute-rich");
    println!("devices, while int4/int3 dominate decode; T4's int8 stays close to fp16.");
}
