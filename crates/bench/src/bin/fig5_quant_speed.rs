//! Figure 5: prefill/decode execution time under different precisions
//! and batch sizes.
//!
//! Regenerates the grid: one OPT-30b layer, prompt length 512, batch
//! sizes 1–32, precisions {FP16, INT8, INT4, INT3} on T4, V100 and
//! A100. Paper shapes to reproduce:
//!  * FP16 is often fastest in prefill (quantization overhead);
//!  * low-precision weight-only kernels win decode (weight traffic);
//!  * T4's INT8 ≈ FP16 while V100's INT8 is always slower.
//!
//! A final section grounds the modeled grid in *measured* numbers: the
//! repo's fused dequant-GEMM (`llmpq-kernels`) is timed on this host at
//! the decode shape, and [`kernel_crosscheck`] compares the measured
//! fp16-relative speedups against the same roofline tables that
//! produced the grid above.

use llmpq_bench::TextTable;
use llmpq_cluster::GpuModel;
use llmpq_cost::{kernel_crosscheck, KernelObservation};
use llmpq_kernels::qgemm_t;
use llmpq_model::{zoo, Matrix, PhaseWorkload};
use llmpq_quant::{quantize_matrix, Bitwidth, Rounding};
use llmpq_sim::{layer_latency, KernelEnv};
use std::hint::black_box;
use std::time::Instant;

/// Measured decode-shape (m = 1) per-call seconds for dense f32 and each
/// packed precision, interleaved round-robin so machine drift hits every
/// kernel alike.
fn measure_decode(nk: usize) -> Vec<KernelObservation> {
    let w = Matrix::random(nk, nk, 0.2, 5);
    let x = Matrix::random(1, nk, 0.5, 9);
    let packs: Vec<_> = [Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3]
        .iter()
        .map(|&b| {
            (b, quantize_matrix(&w, b, Rounding::Deterministic, 3).to_packed(llmpq_kernels::DEFAULT_GROUP))
        })
        .collect();
    let mut best = vec![f64::INFINITY; 1 + packs.len()];
    black_box(x.matmul_t(&w));
    for (_, p) in &packs {
        black_box(qgemm_t(&x.data, 1, p));
    }
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..2 {
            black_box(x.matmul_t(black_box(&w)));
        }
        best[0] = best[0].min(t0.elapsed().as_secs_f64() / 2.0);
        for (i, (_, p)) in packs.iter().enumerate() {
            let t0 = Instant::now();
            for _ in 0..2 {
                black_box(qgemm_t(black_box(&x.data), 1, black_box(p)));
            }
            best[1 + i] = best[1 + i].min(t0.elapsed().as_secs_f64() / 2.0);
        }
    }
    let mut obs = vec![KernelObservation { bits: Bitwidth::Fp16, throughput: 1.0 / best[0] }];
    for (i, (b, _)) in packs.iter().enumerate() {
        obs.push(KernelObservation { bits: *b, throughput: 1.0 / best[1 + i] });
    }
    obs
}

#[allow(clippy::type_complexity)]
fn main() {
    let spec = zoo::opt_30b();
    let env = KernelEnv::default();
    println!("Figure 5 — single {} layer, s=512\n", spec.name);

    for gpu in [GpuModel::T4_16G, GpuModel::V100_32G, GpuModel::A100_40G] {
        let dev = gpu.spec();
        let phases: [(&str, fn(usize) -> PhaseWorkload); 2] = [
            ("prefill", |b| PhaseWorkload::prefill(b, 512)),
            ("decode", |b| PhaseWorkload::decode(b, 512, 512)),
        ];
        for (phase_name, mk) in phases {
            let mut t = TextTable::new(&["batch", "fp16 (ms)", "int8 (ms)", "int4 (ms)", "int3 (ms)", "fastest"]);
            for b in [1usize, 2, 4, 8, 16, 32] {
                let w = mk(b);
                let times: Vec<(Bitwidth, f64)> = [Bitwidth::Fp16, Bitwidth::Int8, Bitwidth::Int4, Bitwidth::Int3]
                    .iter()
                    .map(|&bits| (bits, layer_latency(&dev, &env, &spec, &w, bits, 16.0)))
                    .collect();
                let fastest = times
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap()
                    .0;
                t.row(vec![
                    b.to_string(),
                    format!("{:.3}", times[0].1 * 1e3),
                    format!("{:.3}", times[1].1 * 1e3),
                    format!("{:.3}", times[2].1 * 1e3),
                    format!("{:.3}", times[3].1 * 1e3),
                    fastest.to_string(),
                ]);
            }
            println!("{gpu} / {phase_name}:\n{}", t.render());
        }
    }
    // Measured grounding: the repo's fused dequant-GEMM on this host at
    // the decode shape, cross-checked (fp16-relative ratios) against the
    // same roofline tables that produced the modeled grid.
    let obs = measure_decode(4096);
    let gpu = GpuModel::A100_40G;
    let rows = kernel_crosscheck(
        &gpu.spec(),
        &env,
        &spec,
        &PhaseWorkload::decode(8, 512, 512),
        16.0,
        &obs,
    );
    let mut t = TextTable::new(&["bits", "predicted speedup", "measured speedup", "rel err"]);
    for r in &rows {
        t.row(vec![
            r.bits.to_string(),
            format!("{:.2}x", r.predicted_speedup),
            format!("{:.2}x", r.observed_speedup),
            format!("{:.2}", r.rel_err),
        ]);
    }
    println!("Measured fused-kernel decode speedups (this host, m=1 n=k=4096) vs");
    println!("{gpu} roofline — kernel_crosscheck rel_err on fp16-relative ratios:");
    println!("{}", t.render());
    assert!(
        rows.iter().all(|r| r.rel_err.is_finite()),
        "kernel_crosscheck must produce finite rel_err for every precision"
    );
    println!("Paper shape check: FP16 should dominate prefill columns on compute-rich");
    println!("devices, while int4/int3 dominate decode; T4's int8 stays close to fp16;");
    println!("measured speedups land within the roofline's band (finite rel_err).");
}
