//! Ablation: KV-cache precision (extension).
//!
//! The paper's memory model carries the KV-cache bitwidth as a
//! parameter but the evaluation keeps it at FP16. This extension lets
//! the assigner also consider an INT8 KV cache: it halves the dominant
//! decode-phase memory traffic *and* the largest memory consumer on
//! long-generation jobs, often buying back weight precision.
//! (Quality impact of KV quantization is not modelled — this bench
//! reports the systems-side trade only.)

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assign;
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;

fn main() {
    println!("Ablation — KV-cache precision in the search space\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&[
        "Cluster", "Job", "KV search", "chosen KV", "Throughput (tok/s)", "mean weight bits",
    ]);
    // A long-generation job makes the KV cache the dominant tenant.
    let long_job = BatchJob { global_batch: 32, prompt_len: 512, n_generate: 800 };
    for (n, job, label) in [
        (3usize, BatchJob::paper_default(), "s=512,n=100"),
        (3, long_job, "s=512,n=800"),
        (9, BatchJob::paper_default(), "s=512,n=100"),
        (9, long_job, "s=512,n=800"),
    ] {
        let mut setup = ServingSetup::paper(n);
        setup.job = job;
        let indicator = zoo_indicator(&setup.spec);
        for kv8 in [false, true] {
            setup.cfg.search_kv8 = kv8;
            match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
                Ok(out) => t.row(vec![
                    n.to_string(),
                    label.into(),
                    if kv8 { "fp16+int8" } else { "fp16 only" }.into(),
                    format!("kv{}", out.plan.kv_bits),
                    format!("{:.2}", out.report.throughput),
                    format!("{:.1}", out.report.mean_bits),
                ]),
                Err(e) => t.row(vec![n.to_string(), label.into(), if kv8 { "fp16+int8" } else { "fp16 only" }.into(), e, "-".into(), "-".into()]),
            }
        }
    }
    println!("{}", t.render());
    println!("Expectation: with short generations kv16 stays optimal; with n=800 the");
    println!("KV cache dominates memory and int8 KV unlocks higher weight precision");
    println!("and/or throughput on the memory-tight clusters.");
}
