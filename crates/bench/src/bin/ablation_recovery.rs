//! Ablation: fault-tolerance cost — restart vs. replan recovery.
//!
//! Plans cluster 3 (3×T4 + 1×V100, OPT-30b), then:
//!
//! 1. sweeps the per-stage MTTF and reports the expected latency
//!    overhead of transient-failure restarts (heartbeat detection +
//!    backoff + re-prefill of the lock-step checkpoint);
//! 2. permanently removes each device in turn, replans the survivors
//!    with Algorithm 1 (`replan_after_loss`), and compares the finite
//!    replan recovery latency against restart-only recovery, which can
//!    never complete on the old plan.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::evaluate::{representative_past, stage_loads};
use llm_pq::{assign, replan_after_loss};
use llmpq_cost::CostDb;
use llmpq_model::PhaseWorkload;
use llmpq_sim::{recovery_cost, simulate_pipeline, FailureModel, KernelEnv, PipelineWorkload};

fn main() {
    println!("Ablation — recovery cost: restart vs. replan (cluster 3, OPT-30b)\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let setup = ServingSetup::paper(3);
    let indicator = zoo_indicator(&setup.spec);
    let out = assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg)
        .expect("baseline plan");
    let plan = out.plan;

    let loads = stage_loads(&plan, &setup.cluster, &setup.spec, &db, &setup.job);
    let first_gpu = setup.cluster.devices[plan.stages[0].device].gpu;
    let mb = &plan.microbatch;
    let pre_w = PhaseWorkload::prefill(mb.prefill_size, setup.job.prompt_len);
    let dec_w = PhaseWorkload::decode(
        mb.decode_size,
        setup.job.prompt_len,
        representative_past(&setup.job),
    );
    let wl = PipelineWorkload {
        prefill_microbatches: mb.prefill_count,
        decode_microbatches: mb.decode_count,
        n_tokens: setup.job.n_generate,
        master_prefill: db.master_latency(first_gpu, &setup.spec, &pre_w),
        master_decode: db.master_latency(first_gpu, &setup.spec, &dec_w),
    };
    let t0 = simulate_pipeline(&loads, &wl).total_latency;
    println!("fault-free batch latency: {t0:.2} s over {} stages\n", plan.stages.len());

    // --- 1. transient failures: restart overhead vs. MTTF ---
    let mut t = TextTable::new(&["MTTF (s)", "E[failures]", "restart latency (s)", "overhead"]);
    for mttf in [30.0f64, 120.0, 600.0, 3600.0, 86400.0] {
        let fm = FailureModel { mttf_s: mttf, ..FailureModel::default() };
        let r = recovery_cost(&loads, &wl, &fm);
        t.row(vec![
            format!("{mttf:.0}"),
            format!("{:.3}", r.expected_transient_failures),
            format!("{:.2}", r.restart_latency),
            format!("{:.1}%", r.transient_overhead_fraction * 100.0),
        ]);
    }
    println!("{}", t.render());

    // --- 2. permanent device loss: replan on the survivors ---
    let mut t = TextTable::new(&[
        "lost device",
        "surviving plan",
        "slowdown",
        "replan latency (s)",
        "restart-only (s)",
    ]);
    for lost in 0..setup.cluster.len() {
        match replan_after_loss(
            &setup.cluster,
            &[lost],
            &setup.spec,
            &setup.job,
            &db,
            &indicator,
            &setup.cfg,
        ) {
            Ok(rp) => {
                let new_loads =
                    stage_loads(&rp.plan, &setup.cluster, &setup.spec, &db, &setup.job);
                let new_mb = &rp.plan.microbatch;
                let new_wl = PipelineWorkload {
                    prefill_microbatches: new_mb.prefill_count,
                    decode_microbatches: new_mb.decode_count,
                    ..wl
                };
                let t1 = simulate_pipeline(&new_loads, &new_wl).total_latency;
                let slowdown = (t1 / t0).max(1.0);
                let fm = FailureModel {
                    replan_overhead_s: rp.overhead_s + 5.0, // assigner + reload
                    replan_slowdown: slowdown,
                    ..FailureModel::default()
                };
                let r = recovery_cost(&loads, &wl, &fm);
                let shape = rp
                    .plan
                    .stages
                    .iter()
                    .map(|s| format!("d{}:{}L", s.device, s.bits.len()))
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row(vec![
                    format!("{lost} ({:?})", setup.cluster.devices[lost].gpu),
                    shape,
                    format!("{slowdown:.2}x"),
                    format!("{:.2}", r.replan_latency),
                    "inf".into(),
                ]);
            }
            Err(e) => {
                t.row(vec![lost.to_string(), e.to_string(), "-".into(), "-".into(), "-".into()])
            }
        }
    }
    println!("{}", t.render());
    println!("Expectation: restart overhead is linear in run length / MTTF; permanent loss");
    println!("is unrecoverable by restarts alone, while replanning completes the batch at");
    println!("the degraded plan's rate — losing the V100 hurts most (it anchors the");
    println!("high-precision layers), losing one of the T4s least.");
}
