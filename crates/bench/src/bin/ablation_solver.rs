//! Ablation: exact DP vs branch-and-bound ILP on the same instances.
//!
//! Builds one assigner subproblem per cluster and solves it with both
//! inner solvers. The ILP explores per-layer bit mixing (a superset of
//! the DP's per-stage-uniform class) so its objective can only be ≤,
//! but at branch-and-bound cost that explodes with instance size —
//! the reason the paper needs grouping and the heuristic at all.

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assigner::build_problem;
use llm_pq::ilp::solve_ilp;
use llmpq_cost::CostDb;
use llmpq_quant::Bitwidth;
use llmpq_sim::KernelEnv;
use llmpq_solver::{solve_partition, MilpConfig};
use llmpq_workload::{microbatch_counts, MicrobatchPlan};
use std::time::Instant;

fn main() {
    println!("Ablation — DP vs branch-and-bound ILP (one subproblem per cluster)\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&[
        "Cluster", "Groups", "DP objective", "DP time (s)", "ILP objective", "ILP time (s)",
    ]);
    for (n, group) in [(3usize, 6usize), (4, 6), (6, 8)] {
        let setup = ServingSetup::paper(n);
        let indicator = zoo_indicator(&setup.spec);
        let ordering: Vec<usize> = (0..setup.cluster.len()).collect();
        let mb: MicrobatchPlan = microbatch_counts(&setup.job, setup.cluster.len(), 4)[0];
        let (problem, _q, sizes) = build_problem(
            &setup.cluster,
            &ordering,
            &setup.spec,
            &setup.job,
            &db,
            Some(&indicator),
            setup.cfg.theta,
            &mb,
            group,
            &Bitwidth::ALL,
            true,
            None, // exact candidate grid
            16.0,
        );
        let t0 = Instant::now();
        let dp = solve_partition(&problem);
        let dp_time = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ilp = solve_ilp(&problem, &MilpConfig { time_limit_s: 60.0, ..Default::default() });
        let ilp_time = t0.elapsed().as_secs_f64();
        t.row(vec![
            n.to_string(),
            sizes.len().to_string(),
            dp.as_ref().map_or("-".into(), |s| format!("{:.3}", s.objective)),
            format!("{dp_time:.3}"),
            ilp.as_ref().map_or("timeout/-".into(), |s| format!("{:.3}", s.objective)),
            format!("{ilp_time:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!("Expectation: ILP objective ≤ DP objective (superset class), ILP time ≫ DP time.");
}
