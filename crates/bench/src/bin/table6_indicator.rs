//! Table 6: effectiveness of the variance indicator vs Random and
//! Hessian.
//!
//! Protocol (§6.5): build each indicator, normalize to a common range so
//! the ILP's latency/quality trade-off is unchanged, assign bits with
//! the same assigner setup, and compare the resulting perplexity and the
//! indicator-construction overhead. Paper shape: LLM-PQ's variance
//! indicator matches Hessian PPL at a 58–72× lower overhead and beats
//! Random.

use llmpq_bench::quality::{scaled_teacher, QualityHarness};
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::assign;
use llmpq_cost::CostDb;
use llmpq_quant::{build_indicator, IndicatorKind, Rounding};
use llmpq_sim::KernelEnv;

fn main() {
    println!("Table 6 — indicator comparison (OPT-66b-like on cluster 6, OPT-30b-like on cluster 9)\n");
    let kinds = [
        ("Random", IndicatorKind::Random { seed: 99 }),
        ("Hessian", IndicatorKind::Hessian(Rounding::Deterministic)),
        ("LLM-PQ", IndicatorKind::Variance(Rounding::Deterministic)),
    ];
    for cluster_no in [6usize, 9] {
        let setup = ServingSetup::paper(cluster_no);
        let teacher = scaled_teacher(&setup.spec);
        let calib = llmpq_quality::corpus::calibration_set(&teacher, 4, 32);
        let harness = QualityHarness::new(&setup.spec);
        let db = CostDb::oracle(&KernelEnv::default());
        println!("{} on cluster {cluster_no} (fp16 PPL {:.3}):", setup.spec.name, harness.fp16_ppl);

        let mut t = TextTable::new(&["Method", "PPL", "Overhead (s)", "vs Hessian overhead"]);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for (name, kind) in kinds {
            let (table, overhead) = build_indicator(kind, &teacher, &calib);
            let table = table.normalized_budget(1.0);
            let out = assign(&setup.cluster, &setup.spec, &setup.job, &db, &table, &setup.cfg)
                .expect("feasible cluster");
            let ppl = harness.ppl(&out.plan.bit_assignment());
            rows.push((name.to_string(), ppl, overhead));
        }
        let hessian_overhead = rows.iter().find(|r| r.0 == "Hessian").unwrap().2;
        for (name, ppl, overhead) in &rows {
            t.row(vec![
                name.clone(),
                format!("{ppl:.3}"),
                format!("{overhead:.3}"),
                if *overhead > 1e-3 && name != "Random" {
                    format!("{:.1}x cheaper", hessian_overhead / overhead)
                } else {
                    "-".into()
                },
            ]);
        }
        println!("{}", t.render());
    }
    println!("Paper shape check: variance ≈ Hessian PPL, ≤ Random PPL, at a");
    println!("large overhead reduction (paper: 58.15x and 72.69x).");
}
