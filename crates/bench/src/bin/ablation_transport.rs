//! Ablation: transport layer — in-process channels vs loopback TCP.
//!
//! Runs the same plan and prompts through (a) the in-process channel
//! pipeline and (b) the distributed master/stage runtime over loopback
//! TCP (stages as threads of this process, but every activation crossing
//! a real socket with framing + CRC), asserting bit-identical tokens,
//! and reports wall time, per-link traffic, observed comm time, and the
//! α-β loopback model's prediction for that traffic. The acceptance
//! bar: tokens identical, and every link's traffic is accounted on both
//! the tx and rx side.

use llm_pq::{ExecutionPlan, StagePlan};
use llmpq_bench::TextTable;
use llmpq_cluster::interconnect::Link;
use llmpq_cost::{link_crosscheck, LinkObservation};
use llmpq_model::{RefConfig, RefModel};
use llmpq_quant::{Bitwidth, Rounding};
use llmpq_runtime::{
    run_master, run_pipeline, run_stage, DistMasterConfig, DistStageConfig, Telemetry,
    WireFaultPlan,
};
use llmpq_workload::MicrobatchPlan;
use std::net::TcpListener;
use std::time::{Duration, Instant};

const BATCH: usize = 4;
const PROMPT_LEN: usize = 12;
const N_GENERATE: usize = 24;
const SEED: u64 = 0;

fn plan() -> ExecutionPlan {
    ExecutionPlan {
        model: "ablation-transport".into(),
        cluster: "loopback".into(),
        stages: vec![
            StagePlan { device: 0, layer_start: 0, layer_end: 2, bits: vec![Bitwidth::Int8; 2] },
            StagePlan { device: 1, layer_start: 2, layer_end: 4, bits: vec![Bitwidth::Int4; 2] },
            StagePlan { device: 2, layer_start: 4, layer_end: 6, bits: vec![Bitwidth::Fp16; 2] },
        ],
        microbatch: MicrobatchPlan {
            prefill_size: 2,
            prefill_count: 2,
            decode_size: 2,
            decode_count: 2,
        },
        scheme: "LLM-PQ".into(),
        kv_bits: 16,
    }
}

fn main() {
    let plan = plan();
    let checkpoint = RefModel::new(RefConfig::scaled_like(plan.n_layers(), 0xD157 ^ SEED));
    let prompts: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| {
            (0..PROMPT_LEN)
                .map(|j| (i * 41 + j * 17 + SEED as usize) % checkpoint.cfg.vocab)
                .collect()
        })
        .collect();

    // (a) In-process channel transport.
    let t0 = Instant::now();
    let local =
        run_pipeline(&checkpoint, &plan, &prompts, N_GENERATE, Rounding::Deterministic, SEED, None)
            .expect("in-process run");
    let channel_wall = t0.elapsed().as_secs_f64();

    // (b) Loopback TCP: the distributed master plus one stage server per
    // stage (threads here, processes in `llmpq-dist` / CI — same wire).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind master listener");
    let addr = listener.local_addr().unwrap().to_string();
    let stage_handles: Vec<_> = (0..plan.stages.len())
        .map(|s| {
            let (plan, checkpoint) = (plan.clone(), checkpoint.clone());
            let cfg = DistStageConfig {
                stage: s,
                listen: "127.0.0.1:0".into(),
                master: addr.clone(),
                rounding: Rounding::Deterministic,
                seed: SEED,
                wire_faults: WireFaultPlan::none(),
                tick: Duration::from_millis(2),
            };
            std::thread::spawn(move || run_stage(&checkpoint, &plan, BATCH, &cfg))
        })
        .collect();
    let telemetry = Telemetry::new(plan.stages.len());
    let cfg = DistMasterConfig { telemetry: Some(telemetry), ..Default::default() };
    let t0 = Instant::now();
    let dist = run_master(&checkpoint, &plan, &prompts, N_GENERATE, &listener, &cfg)
        .expect("distributed run");
    let tcp_wall = t0.elapsed().as_secs_f64();
    for h in stage_handles {
        h.join().unwrap().expect("stage exits cleanly");
    }

    assert_eq!(dist.tokens, local.tokens, "TCP transport must not perturb tokens");
    assert!(dist.admission.conserves(0), "admission invariant: {:?}", dist.admission);

    let mut t = TextTable::new(&["Transport", "Wall (s)", "Tokens", "Bytes on wire", "Comm (s)"]);
    let total_bytes: u64 = dist.link_stats.iter().map(|l| l.bytes_tx).sum();
    let total_comm: f64 = dist.link_stats.iter().map(|l| l.comm_s()).sum();
    t.row(vec![
        "channels (1 process)".into(),
        format!("{channel_wall:.3}"),
        format!("{}", N_GENERATE * BATCH),
        "0".into(),
        "n/a".into(),
    ]);
    t.row(vec![
        "tcp loopback".into(),
        format!("{tcp_wall:.3}"),
        format!("{}", N_GENERATE * BATCH),
        format!("{total_bytes}"),
        format!("{total_comm:.4}"),
    ]);
    println!("{}", t.render());

    let obs: Vec<LinkObservation> = dist
        .link_stats
        .iter()
        .enumerate()
        .map(|(i, l)| LinkObservation {
            link: i,
            bytes: l.bytes_tx.max(l.bytes_rx) as f64,
            frames: l.frames_tx.max(l.frames_rx),
            observed_s: l.comm_s(),
        })
        .collect();
    let mut lt = TextTable::new(&["Link", "Bytes", "Frames", "Observed (s)", "α-β model (s)", "Rel err"]);
    for r in link_crosscheck(&Link::loopback(), &obs) {
        let o = &obs[r.link];
        assert!(o.bytes > 0.0, "link {} never carried traffic", r.link);
        lt.row(vec![
            format!("{}", r.link),
            format!("{}", o.bytes as u64),
            format!("{}", o.frames),
            format!("{:.5}", r.observed_s),
            format!("{:.5}", r.predicted_s),
            if r.rel_err.is_finite() { format!("{:.1}%", r.rel_err * 100.0) } else { "n/a".into() },
        ]);
    }
    println!("{}", lt.render());
    println!(
        "tokens bit-identical across transports ({} restarts, overhead {:.1}%)",
        dist.restarts,
        (tcp_wall / channel_wall - 1.0) * 100.0
    );
}
