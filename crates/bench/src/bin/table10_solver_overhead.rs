//! Tables 9 & 10: per-cluster solver setup and assigner overhead.
//!
//! Runs the LLM-PQ assigner with the Table 9 configuration on every
//! cluster (1–11) and reports the wall-clock overhead — the paper's
//! Table 10 (average 18.4 s, slowest 116 s on real GUROBI; ours differ
//! in absolute terms but the *relative* pattern — heuristic clusters
//! cheap, big grouped DP/ILP clusters expensive — should hold).

use llmpq_bench::quality::zoo_indicator;
use llmpq_bench::serving::ServingSetup;
use llmpq_bench::TextTable;
use llm_pq::{assign, SolverChoice};
use llmpq_cost::CostDb;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Tables 9 & 10 — per-cluster solver setup and assigner overhead\n");
    let db = CostDb::oracle(&KernelEnv::default());
    let mut t = TextTable::new(&["Cluster", "Solver (Table 9)", "theta", "Overhead (s)", "Combos", "Throughput"]);
    let mut total = 0.0;
    let mut slowest: f64 = 0.0;
    let mut count = 0usize;
    for n in 1..=11 {
        let setup = ServingSetup::paper(n);
        let indicator = zoo_indicator(&setup.spec);
        let solver = match setup.cfg.solver {
            SolverChoice::Dp { group } => format!("DP group={group}"),
            SolverChoice::Heuristic => "Heuristic".into(),
            SolverChoice::Ilp { group, .. } => format!("ILP group={group}"),
        };
        match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
            Ok(out) => {
                total += out.overhead_s;
                slowest = slowest.max(out.overhead_s);
                count += 1;
                t.row(vec![
                    n.to_string(),
                    solver,
                    format!("{}", setup.cfg.theta),
                    format!("{:.3}", out.overhead_s),
                    out.combinations.to_string(),
                    format!("{:.2}", out.report.throughput),
                ]);
            }
            Err(e) => t.row(vec![n.to_string(), solver, format!("{}", setup.cfg.theta), e, "-".into(), "-".into()]),
        }
    }
    println!("{}", t.render());
    if count > 0 {
        println!("AVG overhead: {:.3} s   SLOWEST: {:.3} s", total / count as f64, slowest);
        println!("(paper Table 10: AVG 18.38 s, SLOWEST 115.98 s, on GUROBI)");
    }
}
