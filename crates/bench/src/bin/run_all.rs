//! Regenerate every experiment in sequence.
//!
//! ```bash
//! cargo run --release -p llmpq-bench --bin run_all
//! ```
//!
//! Spawns each table/figure/ablation binary (they must be built — use
//! `cargo build --release -p llmpq-bench --bins` first or run through
//! cargo) and writes outputs to `results/`.

use std::path::Path;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig1_cluster_trace",
    "fig3_phase_decomposition",
    "fig4_ppl_vs_bitwidth",
    "fig5_quant_speed",
    "fig7_cost_fidelity",
    "fig8_theta_sensitivity",
    "fig9_vs_adabits",
    "table1_layer_sensitivity",
    "table4_hetero_serving",
    "table5_homo_serving",
    "table6_indicator",
    "table7_short_prompts",
    "table8_optimizer_speed",
    "table10_solver_overhead",
    "ablation_phase_aware",
    "ablation_solver",
    "ablation_microbatch",
    "ablation_tensor_parallel",
    "ablation_kv_cache",
    "ablation_online",
    "ablation_cost_per_token",
    "bench_kernels",
];

fn main() {
    let out_dir = Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        let bin = bin_dir.join(name);
        print!("{name:<28} ");
        if !bin.exists() {
            println!("MISSING (build with --bins)");
            failed.push(*name);
            continue;
        }
        let started = std::time::Instant::now();
        match Command::new(&bin).output() {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                std::fs::write(&path, &out.stdout).expect("write result");
                println!("ok ({:.1}s) -> {}", started.elapsed().as_secs_f64(), path.display());
            }
            Ok(out) => {
                println!("FAILED (exit {:?})", out.status.code());
                failed.push(*name);
            }
            Err(e) => {
                println!("FAILED ({e})");
                failed.push(*name);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments regenerated.", EXPERIMENTS.len());
    } else {
        println!("\n{} experiments failed: {failed:?}", failed.len());
        std::process::exit(1);
    }
}
