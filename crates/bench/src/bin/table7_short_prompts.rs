//! Table 7: serving with shorter prompts (s=128, n=200).
//!
//! Clusters 1 (OPT-13b), 4 (OPT-30b) and 6 (OPT-66b). Paper shape:
//! LLM-PQ still wins (1.78× / 1.40× / 1.74×), but the cluster-4 gain is
//! smaller than at s=512 — less KV memory and a longer decode run make
//! the job closer to the single-phase regime PipeEdge was designed for.

use llmpq_bench::serving::{compare_cluster, llmpq_speedup, rows_to_table, ServingSetup};

fn main() {
    println!("Table 7 — shorter prompts (s=128, n=200, batch 32)\n");
    let paper = [(1usize, 1.78), (4, 1.40), (6, 1.74)];
    let mut short_gain_c4 = None;
    for (n, paper_x) in paper {
        let setup = ServingSetup::paper_short(n);
        println!("cluster {n}: {:?} -> {}", setup.cluster.model_counts(), setup.spec.name);
        let rows = compare_cluster(&setup, true);
        println!("{}", rows_to_table(&setup.spec.name, &setup.cluster.name, &rows).render());
        if let Some(s) = llmpq_speedup(&rows) {
            println!("LLM-PQ vs PipeEdge: {s:.2}x (paper: {paper_x:.2}x)\n");
            if n == 4 {
                short_gain_c4 = Some(s);
            }
        }
    }
    // Cross-check the paper's cluster-4 observation against s=512.
    let long = compare_cluster(&ServingSetup::paper(4), false);
    if let (Some(long_s), Some(short_s)) = (llmpq_speedup(&long), short_gain_c4) {
        println!(
            "cluster 4 gain at s=512: {long_s:.2}x vs s=128: {short_s:.2}x — paper notes the \
             short-prompt gain is lower ({})",
            if short_s < long_s { "reproduced" } else { "NOT reproduced" }
        );
    }
}
