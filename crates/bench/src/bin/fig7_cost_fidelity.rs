//! Figure 7: fidelity of the memory and latency cost models.
//!
//! Memory model: BLOOM-560m/1b7 and OPT-13b/30b/66b, random shapes and
//! precisions per the paper's protocol (prompt 128–512, batch {2,4,8},
//! generation 100–200, random per-layer bits). Latency model: 50 unseen
//! workloads per device (batch {3,5,7}, past {384,768}).
//!
//! Paper claims: memory error "almost negligible", latency error < 6%
//! on average.

use llmpq_bench::TextTable;
use llmpq_cluster::GpuModel;
use llmpq_cost::{latency_fidelity, memory_fidelity, CostDb, ProfilerConfig};
use llmpq_model::zoo;
use llmpq_sim::KernelEnv;

fn main() {
    println!("Figure 7 — cost-model fidelity\n");

    let mut t = TextTable::new(&["Model", "Cases", "Mean memory err", "Max memory err"]);
    for spec in [zoo::bloom_560m(), zoo::bloom_1b7(), zoo::opt_13b(), zoo::opt_30b(), zoo::opt_66b()] {
        let r = memory_fidelity(&spec, 50, 2024);
        t.row(vec![
            spec.name.clone(),
            r.n.to_string(),
            format!("{:.3}%", r.mean_rel_err * 100.0),
            format!("{:.3}%", r.max_rel_err * 100.0),
        ]);
    }
    println!("Memory cost model:\n{}", t.render());

    let env = KernelEnv::default();
    let devices = [
        GpuModel::P100_12G,
        GpuModel::T4_16G,
        GpuModel::V100_32G,
        GpuModel::A100_40G,
        GpuModel::A800_80G,
    ];
    let mut t = TextTable::new(&["Model", "Devices", "Unseen cases", "Mean latency err", "Max latency err"]);
    for spec in [zoo::opt_13b(), zoo::opt_30b(), zoo::opt_66b()] {
        let specs: Vec<_> = devices.iter().map(|g| g.spec()).collect();
        let db = CostDb::fit(&specs, &env, &spec, &ProfilerConfig::default());
        let r = latency_fidelity(&db, &env, &spec, &devices, 50, 7);
        t.row(vec![
            spec.name.clone(),
            devices.len().to_string(),
            r.n.to_string(),
            format!("{:.2}%", r.mean_rel_err * 100.0),
            format!("{:.2}%", r.max_rel_err * 100.0),
        ]);
    }
    println!("Latency cost model (fitted on the profiling grid, scored on unseen shapes):\n{}", t.render());
    println!("Paper claim: memory error ~negligible; average latency error < 6%.");
}
