//! Table 4: serving performance on the heterogeneous clusters (1–8).
//!
//! For each cluster: PipeEdge, Uniform, FlexGen, FlexGen-int8 and LLM-PQ
//! with the Table 9 solver/θ setup — PPL, end-to-end batch latency, and
//! token throughput with the speedup over PipeEdge in parentheses.
//! Workload: prompts padded to 512 tokens, batch 32, n=100 generated
//! tokens (§6.1).
//!
//! Paper shape to reproduce: LLM-PQ wins throughput on the mixed
//! clusters (up to ~2.9×) while matching or improving PPL; missing
//! entries are OOM.

use llmpq_bench::serving::{compare_cluster, llmpq_speedup, rows_to_table, ServingSetup};

fn main() {
    println!("Table 4 — heterogeneous clusters (s=512, n=100, batch 32)\n");
    let mut speedups = Vec::new();
    for n in 1..=8 {
        let setup = ServingSetup::paper(n);
        println!(
            "cluster {n}: {:?} -> {}",
            setup.cluster.model_counts(),
            setup.spec.name
        );
        let rows = compare_cluster(&setup, true);
        println!("{}", rows_to_table(&setup.spec.name, &setup.cluster.name, &rows).render());
        if let Some(s) = llmpq_speedup(&rows) {
            speedups.push((n, s));
        }
    }
    println!("LLM-PQ throughput speedup over PipeEdge per cluster:");
    for (n, s) in &speedups {
        println!("  cluster {n}: {s:.2}x");
    }
    if !speedups.is_empty() {
        let gm = speedups.iter().map(|(_, s)| s.ln()).sum::<f64>() / speedups.len() as f64;
        println!("  geometric mean: {:.2}x (paper: up to 2.88x, hetero clusters)", gm.exp());
    }
}
