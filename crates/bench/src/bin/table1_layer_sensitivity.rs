//! Table 1: model performance when different layer *ranges* are
//! quantized to 4-bit (others FP16).
//!
//! Paper rows: OPT-1.3b 0–8 / 8–16 / 16–24 and BLOOM-3b 0–10 / 10–20 /
//! 20–30, with avg perplexity and avg accuracy. The paper's takeaway —
//! different layers have different quantization sensitivity, so a
//! sensitivity indicator is worth building — shows up here as a spread
//! of PPL across rows. The variance indicator's per-range prediction is
//! printed alongside to show its ranking agrees.

use llmpq_bench::{scaled_teacher, TextTable};
use llmpq_model::zoo;
use llmpq_quant::{
    calibrate, quantize_model, variance_indicator, BitAssignment, Bitwidth, Rounding,
};
use llmpq_quality::tasks::standard_tasks;
use llmpq_quality::{accuracy_suite, perplexity_suite, standard_corpora};

fn range_assignment(n_layers: usize, lo: usize, hi: usize) -> BitAssignment {
    let mut a = BitAssignment::uniform(n_layers, Bitwidth::Fp16);
    for l in lo..hi {
        a.bits[l] = Bitwidth::Int4;
    }
    a
}

fn main() {
    println!("Table 1 — layer-range sensitivity to 4-bit quantization\n");
    let cases = [("opt-1.3b", zoo::opt_1_3b(), 8usize), ("bloom-3b", zoo::bloom_3b(), 10usize)];
    let mut t = TextTable::new(&[
        "Model",
        "Layers quantized to 4-bit",
        "Avg. Perplexity",
        "Avg. Accuracy (%)",
        "Indicator Σω(range, int4)",
    ]);
    for (name, spec, step) in cases {
        let teacher = scaled_teacher(&spec);
        let corpora = standard_corpora(&teacher, 6, 28);
        let tasks = standard_tasks(&teacher, 30);
        let calib = llmpq_quality::corpus::calibration_set(&teacher, 4, 32);
        let report = calibrate(&teacher, &calib);
        let indicator = variance_indicator(&teacher, &report, Rounding::Deterministic);
        for k in 0..3 {
            let (lo, hi) = (k * step, (k + 1) * step);
            let bits = range_assignment(spec.n_layers, lo, hi);
            let q = quantize_model(&teacher, &bits, Rounding::Deterministic, 0);
            let ppl = perplexity_suite(&q, &corpora).average;
            let acc = accuracy_suite(&q, &tasks) * 100.0;
            let omega: f64 = (lo..hi).map(|l| indicator.get(l, Bitwidth::Int4)).sum();
            t.row(vec![
                name.into(),
                format!("{lo}-{hi}"),
                format!("{ppl:.3}"),
                format!("{acc:.1}"),
                format!("{omega:.4}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Paper shape check: rows within a model differ — layer position matters,");
    println!("which is the motivation for a sensitivity indicator (§2.5).");
    println!();
    println!("Substitution note: on the synthetic stand-in, *early* ranges hurt most");
    println!("(quantization noise compounds through random-weight depth), whereas the");
    println!("paper's trained OPT-1.3b shows the mildest damage at layers 0-8. The");
    println!("variance indicator is local by construction (Proposition 2) and ranks");
    println!("ranges identically to the expensive Hessian baseline — the property");
    println!("Table 6 relies on.");
}
