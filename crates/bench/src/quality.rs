//! Quality harness: turn a plan's bit assignment into PPL / accuracy.
//!
//! Serving-scale models (OPT-30b…BLOOM-176b) cannot run on a laptop, so
//! quality is measured on the *scaled stand-in*: a reference transformer
//! with the zoo model's exact layer count but reduced width (DESIGN.md
//! substitution table). A plan's per-layer bit assignment applies
//! one-to-one, so layer-sensitivity effects (Table 1) and mixed-precision
//! effects (Fig 4, Tables 4–7) keep their structure.

use llmpq_model::{zoo, ModelSpec, RefConfig, RefModel};
use llmpq_quant::{
    calibrate, quantize_model, variance_indicator, BitAssignment, IndicatorTable, Rounding,
};
use llmpq_quality::{perplexity_suite, standard_corpora, Corpus};

/// Stable per-model seed (FNV-1a over the name) so every experiment
/// sees the same stand-in.
fn model_seed(spec: &ModelSpec) -> u64 {
    spec.name
        .bytes()
        .fold(0xCBF2_9CE4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01B3))
}

/// The scaled stand-in teacher for a zoo model: same layer count,
/// laptop-scale width.
pub fn scaled_teacher(spec: &ModelSpec) -> RefModel {
    let cfg = match spec.family {
        llmpq_model::ModelFamily::Bloom => {
            RefConfig::scaled_like_bloom(spec.n_layers, model_seed(spec))
        }
        llmpq_model::ModelFamily::Opt => RefConfig::scaled_like(spec.n_layers, model_seed(spec)),
    };
    RefModel::new(cfg)
}

/// Build the (normalized) variance indicator for a zoo model from its
/// scaled teacher — what the paper's Indicator Generator produces.
pub fn zoo_indicator(spec: &ModelSpec) -> IndicatorTable {
    let teacher = scaled_teacher(spec);
    let calib = llmpq_quality::corpus::calibration_set(&teacher, 4, 32);
    let report = calibrate(&teacher, &calib);
    variance_indicator(&teacher, &report, Rounding::Deterministic).normalized_budget(1.0)
}

/// Everything needed to score plans for one zoo model.
pub struct QualityHarness {
    /// The FP32 stand-in teacher.
    pub teacher: RefModel,
    /// Evaluation corpora (WikiText2/PTB/C4-like).
    pub corpora: Vec<Corpus>,
    /// Baseline (FP16) average perplexity.
    pub fp16_ppl: f64,
}

impl QualityHarness {
    /// Build the harness for a zoo model.
    pub fn new(spec: &ModelSpec) -> Self {
        let teacher = scaled_teacher(spec);
        let corpora = standard_corpora(&teacher, 6, 28);
        let fp16_ppl = perplexity_suite(&teacher, &corpora).average;
        Self { teacher, corpora, fp16_ppl }
    }

    /// Average PPL of the teacher quantized per `bits`.
    pub fn ppl(&self, bits: &BitAssignment) -> f64 {
        let q = quantize_model(&self.teacher, bits, Rounding::Deterministic, 0);
        perplexity_suite(&q, &self.corpora).average
    }
}

/// One-shot: PPL of a bit assignment for a zoo model.
pub fn plan_ppl(spec: &ModelSpec, bits: &BitAssignment) -> f64 {
    QualityHarness::new(spec).ppl(bits)
}

/// Resolve a zoo model by name, panicking with a clear message.
pub fn model_by_name(name: &str) -> ModelSpec {
    zoo::by_name(name).unwrap_or_else(|| panic!("unknown model '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpq_quant::Bitwidth;

    #[test]
    fn harness_quantized_worse_than_fp16() {
        let spec = zoo::opt_1_3b();
        let h = QualityHarness::new(&spec);
        let int3 = h.ppl(&BitAssignment::uniform(spec.n_layers, Bitwidth::Int3));
        assert!(int3 > h.fp16_ppl, "int3 {int3} vs fp16 {}", h.fp16_ppl);
        let fp16 = h.ppl(&BitAssignment::uniform(spec.n_layers, Bitwidth::Fp16));
        assert!((fp16 - h.fp16_ppl).abs() < 1e-9);
    }

    #[test]
    fn indicator_matches_layer_count() {
        let spec = zoo::opt_1_3b();
        let ind = zoo_indicator(&spec);
        assert_eq!(ind.n_layers(), spec.n_layers);
        let int3_total: f64 = (0..ind.n_layers())
            .map(|l| ind.get(l, Bitwidth::Int3))
            .sum();
        assert!((int3_total - 1.0).abs() < 1e-9, "budget-normalized to 1.0");
    }

    #[test]
    fn teacher_is_deterministic_per_model() {
        let spec = zoo::opt_1_3b();
        let a = scaled_teacher(&spec);
        let b = scaled_teacher(&spec);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        let other = scaled_teacher(&zoo::bloom_3b());
        assert_ne!(a.cfg.n_layers, other.cfg.n_layers);
    }
}
