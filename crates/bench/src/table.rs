//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!("{c:<w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a throughput with its speedup over a baseline, paper-style:
/// `39.70 (1.82x)`.
pub fn speedup(value: f64, baseline: f64) -> String {
    format!("{value:.2} ({:.2}x)", value / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Scheme", "Tput"]);
        t.row(vec!["PipeEdge".into(), "21.86".into()]);
        t.row(vec!["LLM-PQ".into(), "39.70 (1.82x)".into()]);
        let s = t.render();
        assert!(s.contains("| Scheme   |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(30.0, 15.0), "30.00 (2.00x)");
    }
}
