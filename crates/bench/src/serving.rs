//! The serving-comparison driver behind Tables 4, 5 and 7.
//!
//! For one paper cluster it runs LLM-PQ (with the Table 9 solver/θ
//! setup) against PipeEdge, Uniform, FlexGen and FlexGen-int8, scoring
//! throughput, end-to-end latency and perplexity, and reporting the
//! paper-style speedup over PipeEdge.

use crate::quality::{model_by_name, zoo_indicator, QualityHarness};
use llm_pq::baselines::{flexgen_report, pipeedge_plan, uniform_plan};
use llm_pq::{assign, AssignerConfig};
use llmpq_cluster::{paper_cluster, Cluster};
use llmpq_cost::CostDb;
use llmpq_model::ModelSpec;
use llmpq_quant::{BitAssignment, Bitwidth};
use llmpq_sim::KernelEnv;
use llmpq_workload::BatchJob;
use serde::{Deserialize, Serialize};

/// One line of a serving-comparison table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Scheme name.
    pub scheme: String,
    /// Average perplexity (None when the scheme could not run).
    pub ppl: Option<f64>,
    /// End-to-end batch latency, seconds.
    pub latency: Option<f64>,
    /// Token throughput, tokens/second.
    pub throughput: Option<f64>,
    /// Assigner overhead, seconds (LLM-PQ only).
    pub overhead_s: Option<f64>,
}

impl ComparisonRow {
    fn missing(scheme: &str) -> Self {
        Self { scheme: scheme.into(), ppl: None, latency: None, throughput: None, overhead_s: None }
    }
}

/// Setup for one cluster comparison.
#[derive(Debug, Clone)]
pub struct ServingSetup {
    /// The cluster.
    pub cluster: Cluster,
    /// The model the paper assigns to it.
    pub spec: ModelSpec,
    /// The batch job.
    pub job: BatchJob,
    /// LLM-PQ assigner configuration (Table 9).
    pub cfg: AssignerConfig,
}

impl ServingSetup {
    /// The paper's setup for cluster `n` with the default workload.
    pub fn paper(n: usize) -> Self {
        let cluster = paper_cluster(n);
        let spec = model_by_name(cluster.paper_model.as_deref().expect("table 3 model"));
        let mut cfg = AssignerConfig::paper_setup(n);
        // Keep enumeration tractable on a laptop while preserving the
        // search structure.
        cfg.max_orderings = 6;
        cfg.dp_grid = Some(12);
        if let llm_pq::SolverChoice::Dp { group } = &mut cfg.solver {
            // Optimization #2: group layers for the big models.
            *group = if spec.n_layers > 48 { 2 } else { *group }.max(2);
        }
        ServingSetup { cluster, spec, job: BatchJob::paper_default(), cfg }
    }

    /// Same cluster with the short-prompt workload of Table 7.
    pub fn paper_short(n: usize) -> Self {
        let mut s = Self::paper(n);
        s.job = BatchJob::paper_short();
        s
    }
}

/// Run the full scheme comparison on a setup. Returns rows in the
/// paper's order: PipeEdge, Uniform, FlexGen, FlexGen-int8, LLM-PQ.
pub fn compare_cluster(setup: &ServingSetup, with_quality: bool) -> Vec<ComparisonRow> {
    let env = KernelEnv::default();
    let db = CostDb::oracle(&env);
    let quality = with_quality.then(|| QualityHarness::new(&setup.spec));
    let ppl_of = |bits: &BitAssignment| quality.as_ref().map(|q| q.ppl(bits));
    let uniform_bits =
        |b: Bitwidth| BitAssignment::uniform(setup.spec.n_layers, b);

    let mut rows = Vec::new();

    // PipeEdge.
    rows.push(match pipeedge_plan(&setup.cluster, &setup.spec, &setup.job, &db) {
        Ok((plan, r)) => ComparisonRow {
            scheme: "PipeEdge".into(),
            ppl: ppl_of(&plan.bit_assignment()),
            latency: Some(r.total_latency),
            throughput: Some(r.throughput),
            overhead_s: None,
        },
        Err(_) => ComparisonRow::missing("PipeEdge"),
    });

    // Uniform.
    rows.push(match uniform_plan(&setup.cluster, &setup.spec, &setup.job, &db) {
        Ok((plan, r)) => ComparisonRow {
            scheme: "Uniform".into(),
            ppl: ppl_of(&plan.bit_assignment()),
            latency: Some(r.total_latency),
            throughput: Some(r.throughput),
            overhead_s: None,
        },
        Err(_) => ComparisonRow::missing("Uniform"),
    });

    // FlexGen / FlexGen-int8 (OPT only).
    let flexgen = |int8: bool, label: &str| -> ComparisonRow {
        match flexgen_report(&setup.cluster, &setup.spec, &setup.job, &env, int8) {
            Some(r) => ComparisonRow {
                scheme: label.into(),
                ppl: ppl_of(&uniform_bits(if int8 { Bitwidth::Int8 } else { Bitwidth::Fp16 })),
                latency: Some(r.total_latency),
                throughput: Some(r.throughput),
                overhead_s: None,
            },
            None => ComparisonRow::missing(label),
        }
    };
    rows.push(flexgen(false, "FlexGen"));
    rows.push(flexgen(true, "FlexGen-int8"));

    // LLM-PQ.
    let indicator = zoo_indicator(&setup.spec);
    rows.push(
        match assign(&setup.cluster, &setup.spec, &setup.job, &db, &indicator, &setup.cfg) {
            Ok(out) => ComparisonRow {
                scheme: "LLM-PQ".into(),
                ppl: ppl_of(&out.plan.bit_assignment()),
                latency: Some(out.report.total_latency),
                throughput: Some(out.report.throughput),
                overhead_s: Some(out.overhead_s),
            },
            Err(_) => ComparisonRow::missing("LLM-PQ"),
        },
    );
    rows
}

/// Extract LLM-PQ's throughput speedup over PipeEdge from comparison
/// rows — the parenthesized `×` in Tables 4/5/7.
pub fn llmpq_speedup(rows: &[ComparisonRow]) -> Option<f64> {
    let pipeedge = rows.iter().find(|r| r.scheme == "PipeEdge")?.throughput?;
    let llmpq = rows.iter().find(|r| r.scheme == "LLM-PQ")?.throughput?;
    Some(llmpq / pipeedge)
}

/// Render rows into a [`crate::TextTable`].
pub fn rows_to_table(model: &str, cluster: &str, rows: &[ComparisonRow]) -> crate::TextTable {
    let mut t = crate::TextTable::new(&["Model", "Cluster", "Scheme", "PPL", "Latency (s)", "Throughput (Token/s)"]);
    let base = rows.iter().find(|r| r.scheme == "PipeEdge").and_then(|r| r.throughput);
    for r in rows {
        let tput = match (r.throughput, base) {
            (Some(t), Some(b)) if r.scheme != "PipeEdge" => crate::table::speedup(t, b),
            (Some(t), _) => format!("{t:.2}"),
            (None, _) => "OOM/-".into(),
        };
        t.row(vec![
            model.into(),
            cluster.into(),
            r.scheme.clone(),
            r.ppl.map_or("-".into(), |p| format!("{p:.3}")),
            r.latency.map_or("-".into(), |l| format!("{l:.2}")),
            tput,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster3_comparison_shapes() {
        // Fast smoke test (no quality scoring): all five rows present;
        // LLM-PQ feasible and at least as fast as Uniform.
        let mut setup = ServingSetup::paper(3);
        setup.cfg.max_orderings = 2;
        setup.cfg.dp_grid = Some(8);
        setup.cfg.solver = llm_pq::SolverChoice::Dp { group: 8 };
        setup.cfg.xi = 2;
        let rows = compare_cluster(&setup, false);
        assert_eq!(rows.len(), 5);
        let llmpq = rows.iter().find(|r| r.scheme == "LLM-PQ").unwrap();
        assert!(llmpq.throughput.is_some(), "LLM-PQ must be feasible on cluster 3");
        let speedup = llmpq_speedup(&rows).unwrap();
        assert!(speedup > 0.5, "speedup {speedup}");
    }

    #[test]
    fn table_renders_missing_as_dash() {
        let rows = vec![ComparisonRow::missing("FlexGen")];
        let t = rows_to_table("opt-30b", "cluster-7", &rows);
        assert!(t.render().contains("OOM/-"));
    }
}
