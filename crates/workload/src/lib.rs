//! # llmpq-workload
//!
//! Serving-workload generation for the offline batch task LLM-PQ
//! targets: prompts padded to a uniform length, a fixed global batch
//! size, and a predetermined token-generation count (§2.3). Also
//! provides a ShareGPT-like prompt-length mixture reproducing the §2.1
//! observation that real prompt lengths vary substantially, plus the
//! micro-batch arithmetic the assigner enumerates over.

pub mod batch;
pub mod online;
pub mod prompts;

pub use batch::{microbatch_counts, BatchJob, MicrobatchPlan};
pub use online::{
    sample_arrivals, sample_arrivals_for_duration, simulate_online, ArrivalSpec, OnlineConfig,
    OnlineError, OnlineStats,
};
pub use prompts::{PromptLengthModel, PromptSample};
