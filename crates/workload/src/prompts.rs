//! ShareGPT-like prompt-length distribution.
//!
//! The paper samples 10,000 ShareGPT conversations and finds prompt
//! lengths "vary substantially", with a heavy short-prompt mode (<128)
//! and a long tail. We model this as a two-component log-normal mixture
//! — short chat turns plus long pasted-context prompts — truncated to
//! the model's context window.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A sampled prompt description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptSample {
    /// Raw (unpadded) prompt length in tokens.
    pub len: usize,
}

/// Two-component log-normal mixture over prompt lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PromptLengthModel {
    /// Probability of drawing from the short-prompt component.
    pub short_weight: f64,
    /// (µ, σ) of the short component in log-token space.
    pub short: (f64, f64),
    /// (µ, σ) of the long component.
    pub long: (f64, f64),
    /// Hard cap (context window).
    pub max_len: usize,
}

impl Default for PromptLengthModel {
    fn default() -> Self {
        // Medians ≈ e^4.0 ≈ 55 tokens (short) and e^6.1 ≈ 446 (long).
        Self { short_weight: 0.62, short: (4.0, 0.6), long: (6.1, 0.5), max_len: 2048 }
    }
}

impl PromptLengthModel {
    /// Draw `n` prompt lengths.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<PromptSample> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let short = LogNormal::new(self.short.0, self.short.1).expect("valid params");
        let long = LogNormal::new(self.long.0, self.long.1).expect("valid params");
        (0..n)
            .map(|_| {
                let x = if rng.gen_bool(self.short_weight) {
                    short.sample(&mut rng)
                } else {
                    long.sample(&mut rng)
                };
                PromptSample { len: (x.round() as usize).clamp(1, self.max_len) }
            })
            .collect()
    }

    /// Fraction of sampled prompts shorter than `threshold`.
    pub fn fraction_below(&self, threshold: usize, n: usize, seed: u64) -> f64 {
        let s = self.sample(n, seed);
        s.iter().filter(|p| p.len < threshold).count() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_bounded_and_positive() {
        let m = PromptLengthModel::default();
        for p in m.sample(5000, 1) {
            assert!(p.len >= 1 && p.len <= m.max_len);
        }
    }

    #[test]
    fn substantial_short_prompt_mass() {
        // §2.1: a large share of ShareGPT prompts is short (<128).
        let m = PromptLengthModel::default();
        let frac = m.fraction_below(128, 10_000, 7);
        assert!(frac > 0.4 && frac < 0.8, "short fraction {frac}");
    }

    #[test]
    fn heavy_tail_exists() {
        let m = PromptLengthModel::default();
        let s = m.sample(10_000, 3);
        let long = s.iter().filter(|p| p.len > 512).count() as f64 / 10_000.0;
        assert!(long > 0.05, "long-tail fraction {long}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let m = PromptLengthModel::default();
        assert_eq!(m.sample(100, 42), m.sample(100, 42));
        assert_ne!(m.sample(100, 42), m.sample(100, 43));
    }
}
