//! Online-serving simulation (paper §7, "Apply to ORCA or vLLM").
//!
//! LLM-PQ targets the offline batch task; the paper's discussion section
//! asks what happens under online traffic, where "the online workload is
//! unpredictable". This module quantifies the gap: Poisson arrivals with
//! ShareGPT-like prompt lengths are served by a *batch* engine (requests
//! are queued, padded to the longest prompt in the batch, and generated
//! to the longest requested length — exactly what an offline plan does),
//! and we measure queueing delay, padding waste, and sustained
//! throughput as functions of the arrival rate.
//!
//! The engine's speed is abstracted as a caller-provided cost function
//! `(padded_prompt_len, n_generate, batch_size) → batch latency`, so the
//! same simulation can run over any plan's pipeline profile.

use crate::prompts::PromptLengthModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Online workload + serving policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Mean request arrival rate, requests/second (Poisson).
    pub arrival_rate: f64,
    /// Number of requests to simulate.
    pub n_requests: usize,
    /// Batch size the engine waits to accumulate.
    pub batch_size: usize,
    /// Give up waiting for a full batch after this long (s) and run
    /// whatever is queued.
    pub max_wait_s: f64,
    /// Generation length range (uniform, inclusive).
    pub n_generate: (usize, usize),
    /// Probability that a batch execution fails mid-run (worker crash,
    /// hang, …) and must be retried. A failed batch re-enters the queue
    /// once: the engine re-runs it immediately, paying the full batch
    /// latency again (the failed attempt's work is lost).
    pub failure_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 1.0,
            n_requests: 200,
            batch_size: 8,
            max_wait_s: 2.0,
            n_generate: (50, 150),
            failure_rate: 0.0,
            seed: 11,
        }
    }
}

/// A malformed [`OnlineConfig`], reported instead of panicking or
/// looping forever (a non-positive arrival rate would make the
/// inter-arrival draw divide by zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OnlineError {
    /// `arrival_rate` must be finite and strictly positive.
    BadArrivalRate(f64),
    /// `n_requests` must be at least 1.
    NoRequests,
    /// `batch_size` must be at least 1.
    BadBatchSize,
    /// `failure_rate` must be a probability in `[0, 1]`.
    BadFailureRate(f64),
    /// The trace window must be finite and strictly positive.
    BadDuration(f64),
    /// The requested rate × duration produced zero arrivals — reported
    /// as an error instead of silently serving an empty trace.
    EmptyTrace {
        /// Requested arrival rate, requests/second.
        rate: f64,
        /// Requested trace window, seconds.
        duration_s: f64,
    },
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::BadArrivalRate(r) => {
                write!(f, "arrival_rate must be finite and > 0 (got {r})")
            }
            OnlineError::NoRequests => write!(f, "n_requests must be at least 1"),
            OnlineError::BadBatchSize => write!(f, "batch_size must be at least 1"),
            OnlineError::BadFailureRate(p) => {
                write!(f, "failure_rate must be a probability in [0, 1] (got {p})")
            }
            OnlineError::BadDuration(d) => {
                write!(f, "duration must be finite and > 0 seconds (got {d})")
            }
            OnlineError::EmptyTrace { rate, duration_s } => write!(
                f,
                "rate {rate} req/s over {duration_s} s produces zero arrivals — \
                 raise the rate or lengthen the window"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Aggregate statistics of one online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    /// Mean request sojourn (arrival → completion), seconds.
    pub mean_latency: f64,
    /// Median sojourn.
    pub p50_latency: f64,
    /// 95th-percentile sojourn.
    pub p95_latency: f64,
    /// Mean time spent queued before the batch started.
    pub mean_queue_wait: f64,
    /// Generated tokens per second over the makespan.
    pub throughput: f64,
    /// Fraction of prompt tokens that were padding.
    pub padding_fraction: f64,
    /// Number of batches executed.
    pub batches: usize,
    /// Number of batches that failed and were retried (each adds a full
    /// extra batch latency to its requests' sojourn).
    pub retried: usize,
    /// Requests turned away by admission control before being queued.
    /// The base batch simulation admits everything (0); overload-aware
    /// serving loops (`runtime::overload`) fill this in.
    #[serde(default)]
    pub shed: usize,
    /// Admitted requests dropped because their SLO deadline or queue
    /// timeout expired before service. 0 in the base simulation.
    #[serde(default)]
    pub expired: usize,
}

/// One sampled arrival: everything a serving front end needs to build
/// a concrete request (the tokens themselves are up to the caller —
/// deterministic fills and oracle-hash prompts both work).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Arrival time, seconds from trace start.
    pub arrival_s: f64,
    /// Prompt length in tokens (ShareGPT-like mixture draw).
    pub prompt_len: usize,
    /// Tokens to generate.
    pub n_generate: usize,
    /// Scheduling priority, `0..4` (higher = more important). Drawn
    /// from its own RNG stream so enabling priorities never perturbs
    /// the arrival process.
    pub priority: u32,
}

/// Sample the arrival trace [`simulate_online`] serves — same config,
/// same seed, same draws — as a reusable spec list, so online serving
/// loops (`runtime::serve`, the `llmpq-serve` drive/soak modes) replay
/// *identical* traffic to what the batch simulation measured.
///
/// Validates the same config fields the simulation does (arrival rate,
/// request count).
pub fn sample_arrivals(
    cfg: &OnlineConfig,
    prompt_model: &PromptLengthModel,
) -> Result<Vec<ArrivalSpec>, OnlineError> {
    if !(cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0) {
        return Err(OnlineError::BadArrivalRate(cfg.arrival_rate));
    }
    if cfg.n_requests == 0 {
        return Err(OnlineError::NoRequests);
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut prio_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x50);
    let lens = prompt_model.sample(cfg.n_requests, cfg.seed ^ 0x9A);
    let mut t = 0.0f64;
    Ok(lens
        .iter()
        .map(|p| {
            t += -rng.gen::<f64>().max(1e-12).ln() / cfg.arrival_rate;
            ArrivalSpec {
                arrival_s: t,
                prompt_len: p.len.max(1),
                n_generate: rng.gen_range(cfg.n_generate.0..=cfg.n_generate.1),
                priority: prio_rng.gen_range(0..4),
            }
        })
        .collect())
}

/// Like [`sample_arrivals`], but keep only the arrivals that land
/// within the first `duration_s` seconds. A window too short for even
/// one arrival at the requested rate is a typed [`OnlineError::
/// EmptyTrace`] — never a silently empty (or clamped) trace, so a
/// mistyped `--rate`/`--duration` fails loudly at the front door.
pub fn sample_arrivals_for_duration(
    cfg: &OnlineConfig,
    prompt_model: &PromptLengthModel,
    duration_s: f64,
) -> Result<Vec<ArrivalSpec>, OnlineError> {
    if !(duration_s.is_finite() && duration_s > 0.0) {
        return Err(OnlineError::BadDuration(duration_s));
    }
    let mut arrivals = sample_arrivals(cfg, prompt_model)?;
    arrivals.retain(|a| a.arrival_s <= duration_s);
    if arrivals.is_empty() {
        return Err(OnlineError::EmptyTrace { rate: cfg.arrival_rate, duration_s });
    }
    Ok(arrivals)
}

/// Run the simulation. `batch_cost(s, n, b)` returns the engine's
/// latency for a batch of `b` requests padded to prompt length `s`
/// generating `n` tokens each.
///
/// Returns [`OnlineError`] on a malformed config (non-positive or
/// non-finite arrival rate, empty workload, zero batch size, or a
/// failure rate outside `[0, 1]`).
pub fn simulate_online(
    cfg: &OnlineConfig,
    prompt_model: &PromptLengthModel,
    batch_cost: &dyn Fn(usize, usize, usize) -> f64,
) -> Result<OnlineStats, OnlineError> {
    if cfg.batch_size == 0 {
        return Err(OnlineError::BadBatchSize);
    }
    if !(0.0..=1.0).contains(&cfg.failure_rate) {
        return Err(OnlineError::BadFailureRate(cfg.failure_rate));
    }
    // Failure draws come from their own stream so turning failures on or
    // off never perturbs arrivals or generation lengths.
    let mut fail_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xFA11);
    let requests: Vec<ArrivalSpec> = sample_arrivals(cfg, prompt_model)?;

    let mut server_free = 0.0f64;
    let mut sojourn = Vec::with_capacity(cfg.n_requests);
    let mut queue_wait = Vec::with_capacity(cfg.n_requests);
    let mut real_tokens = 0usize;
    let mut padded_tokens = 0usize;
    let mut generated = 0usize;
    let mut batches = 0usize;
    let mut retried = 0usize;
    let mut i = 0usize;
    let mut makespan = 0.0f64;
    while i < requests.len() {
        // The batch window opens when the server is free and the first
        // request is present.
        let first_ready = requests[i].arrival_s.max(server_free);
        // Accumulate up to batch_size requests that arrive within the
        // window.
        let mut j = i + 1;
        while j < requests.len()
            && j - i < cfg.batch_size
            && requests[j].arrival_s <= first_ready + cfg.max_wait_s
        {
            j += 1;
        }
        let batch = &requests[i..j];
        // The batch starts when its last member arrived (or the window
        // closed waiting for stragglers) and the server is free.
        let last_arrival = batch.last().unwrap().arrival_s;
        let start = if batch.len() == cfg.batch_size {
            last_arrival.max(server_free)
        } else {
            // Ran the timeout down waiting for a full batch.
            (first_ready + cfg.max_wait_s).max(last_arrival).max(server_free)
        };
        let s = batch.iter().map(|r| r.prompt_len).max().unwrap();
        let n = batch.iter().map(|r| r.n_generate).max().unwrap();
        let latency = batch_cost(s, n, batch.len());
        // A failed batch re-enters the queue once: the failed attempt's
        // work is lost and the batch runs again back to back.
        let failed = cfg.failure_rate > 0.0 && fail_rng.gen::<f64>() < cfg.failure_rate;
        let end = if failed {
            retried += 1;
            start + 2.0 * latency
        } else {
            start + latency
        };
        for r in batch {
            sojourn.push(end - r.arrival_s);
            queue_wait.push(start - r.arrival_s);
            real_tokens += r.prompt_len;
            padded_tokens += s;
            generated += r.n_generate;
        }
        server_free = end;
        makespan = end;
        batches += 1;
        i = j;
    }

    sojourn.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| sojourn[((sojourn.len() - 1) as f64 * p) as usize];
    Ok(OnlineStats {
        mean_latency: sojourn.iter().sum::<f64>() / sojourn.len() as f64,
        p50_latency: pct(0.5),
        p95_latency: pct(0.95),
        mean_queue_wait: queue_wait.iter().sum::<f64>() / queue_wait.len() as f64,
        throughput: generated as f64 / makespan,
        padding_fraction: 1.0 - real_tokens as f64 / padded_tokens as f64,
        batches,
        retried,
        shed: 0,
        expired: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy engine: latency grows with tokens processed.
    fn toy_cost(s: usize, n: usize, b: usize) -> f64 {
        0.05 + 1e-5 * (s as f64) * (b as f64) + 2e-4 * (n as f64)
    }

    fn cfg(rate: f64) -> OnlineConfig {
        OnlineConfig { arrival_rate: rate, n_requests: 300, ..Default::default() }
    }

    #[test]
    fn latency_grows_with_load() {
        let m = PromptLengthModel::default();
        let light = simulate_online(&cfg(0.5), &m, &toy_cost).unwrap();
        let heavy = simulate_online(&cfg(50.0), &m, &toy_cost).unwrap();
        assert!(
            heavy.mean_queue_wait < light.mean_queue_wait + 1e9,
            "sanity"
        );
        // Heavy load fills batches faster (less timeout waiting) but the
        // p95 sojourn must not *improve* once the server saturates.
        assert!(heavy.throughput >= light.throughput * 0.9);
    }

    #[test]
    fn saturation_blows_up_latency() {
        // Arrival far beyond capacity: queue wait dominates sojourn.
        let m = PromptLengthModel::default();
        let expensive = |_s: usize, _n: usize, _b: usize| 5.0; // 5 s per batch of ≤8
        let over = simulate_online(&cfg(100.0), &m, &expensive).unwrap();
        assert!(over.mean_queue_wait > over.mean_latency * 0.5);
        assert!(over.p95_latency > over.p50_latency);
    }

    #[test]
    fn padding_reflects_length_dispersion() {
        let m = PromptLengthModel::default();
        let stats = simulate_online(&cfg(10.0), &m, &toy_cost).unwrap();
        // ShareGPT-like dispersion ⇒ substantial padding waste in
        // max-padded batches; and it must be a valid fraction.
        assert!(stats.padding_fraction > 0.2 && stats.padding_fraction < 0.95);
    }

    #[test]
    fn batch_size_one_has_no_padding() {
        let m = PromptLengthModel::default();
        let c = OnlineConfig { batch_size: 1, ..cfg(5.0) };
        let stats = simulate_online(&c, &m, &toy_cost).unwrap();
        assert!(stats.padding_fraction.abs() < 1e-12);
        assert_eq!(stats.batches, c.n_requests);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = PromptLengthModel::default();
        let a = simulate_online(&cfg(2.0), &m, &toy_cost).unwrap();
        let b = simulate_online(&cfg(2.0), &m, &toy_cost).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_requests_complete() {
        let m = PromptLengthModel::default();
        let stats = simulate_online(&cfg(3.0), &m, &toy_cost).unwrap();
        assert!(stats.batches <= 300);
        assert!(stats.mean_latency >= 0.05, "at least one batch latency");
    }

    #[test]
    fn no_failures_means_no_retries() {
        let m = PromptLengthModel::default();
        let stats = simulate_online(&cfg(3.0), &m, &toy_cost).unwrap();
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn failures_requeue_and_cost_latency() {
        let m = PromptLengthModel::default();
        let clean = simulate_online(&cfg(3.0), &m, &toy_cost).unwrap();
        let flaky_cfg = OnlineConfig { failure_rate: 0.5, ..cfg(3.0) };
        let flaky = simulate_online(&flaky_cfg, &m, &toy_cost).unwrap();
        assert!(flaky.retried > 0, "half the batches should fail");
        assert!(flaky.retried <= flaky.batches);
        // The lost work shows up as extra sojourn. (Sustained throughput
        // can coincidentally *rise* under retries at moderate load —
        // delayed batches pick up more waiting requests and amortize the
        // fixed per-batch cost — so latency is the robust signal.)
        assert!(flaky.mean_latency > clean.mean_latency);
    }

    #[test]
    fn certain_failure_retries_every_batch() {
        let m = PromptLengthModel::default();
        let c = OnlineConfig { failure_rate: 1.0, ..cfg(3.0) };
        let stats = simulate_online(&c, &m, &toy_cost).unwrap();
        assert_eq!(stats.retried, stats.batches, "every batch fails once then completes");
    }

    #[test]
    fn retries_never_drop_requests() {
        // Retrying keeps the server busy longer, which re-shapes later
        // batches — but every request still completes exactly once.
        let m = PromptLengthModel::default();
        let flaky = simulate_online(&OnlineConfig { failure_rate: 0.3, ..cfg(2.0) }, &m, &toy_cost).unwrap();
        assert!(flaky.batches > 0 && flaky.batches <= 300);
        assert!(flaky.mean_latency.is_finite() && flaky.p95_latency.is_finite());
    }

    #[test]
    fn rejects_bad_failure_rate() {
        let m = PromptLengthModel::default();
        let err = simulate_online(&OnlineConfig { failure_rate: 1.5, ..cfg(1.0) }, &m, &toy_cost)
            .unwrap_err();
        assert_eq!(err, OnlineError::BadFailureRate(1.5));
        assert!(err.to_string().contains("probability"));
    }

    #[test]
    fn rejects_zero_and_negative_arrival_rate() {
        let m = PromptLengthModel::default();
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = simulate_online(&cfg(rate), &m, &toy_cost).unwrap_err();
            assert!(
                matches!(err, OnlineError::BadArrivalRate(_)),
                "rate {rate} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn rejects_empty_workload_and_zero_batch() {
        let m = PromptLengthModel::default();
        let none = OnlineConfig { n_requests: 0, ..cfg(1.0) };
        assert_eq!(simulate_online(&none, &m, &toy_cost).unwrap_err(), OnlineError::NoRequests);
        let zero = OnlineConfig { batch_size: 0, ..cfg(1.0) };
        assert_eq!(simulate_online(&zero, &m, &toy_cost).unwrap_err(), OnlineError::BadBatchSize);
    }

    #[test]
    fn duration_window_truncates_and_stays_deterministic() {
        let m = PromptLengthModel::default();
        let full = sample_arrivals(&cfg(10.0), &m).unwrap();
        let cut = sample_arrivals_for_duration(&cfg(10.0), &m, 5.0).unwrap();
        assert!(!cut.is_empty() && cut.len() < full.len());
        assert_eq!(&full[..cut.len()], &cut[..], "a prefix of the same trace");
        assert!(cut.iter().all(|a| a.arrival_s <= 5.0));
    }

    #[test]
    fn zero_arrival_window_is_a_typed_error() {
        let m = PromptLengthModel::default();
        // ~1 arrival every 1000 s; a 1 ms window holds none.
        let err = sample_arrivals_for_duration(&cfg(0.001), &m, 0.001).unwrap_err();
        assert!(
            matches!(err, OnlineError::EmptyTrace { .. }),
            "expected EmptyTrace, got {err:?}"
        );
        assert!(err.to_string().contains("zero arrivals"), "{err}");
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = sample_arrivals_for_duration(&cfg(1.0), &m, bad).unwrap_err();
            assert!(matches!(err, OnlineError::BadDuration(_)), "{bad}: {err:?}");
        }
        // Rate validation still fires first.
        let err = sample_arrivals_for_duration(&cfg(0.0), &m, 1.0).unwrap_err();
        assert!(matches!(err, OnlineError::BadArrivalRate(_)));
    }

    #[test]
    fn stats_serde_round_trip_keeps_shed_and_expired() {
        let m = PromptLengthModel::default();
        let mut stats = simulate_online(&cfg(2.0), &m, &toy_cost).unwrap();
        stats.shed = 17;
        stats.expired = 4;
        let json = serde_json::to_string(&stats).unwrap();
        let back: OnlineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.shed, 17);
        assert_eq!(back.expired, 4);
    }

    #[test]
    fn stats_deserialize_backfills_missing_overload_fields() {
        // JSON written before shed/expired existed must still load.
        let m = PromptLengthModel::default();
        let stats = simulate_online(&cfg(2.0), &m, &toy_cost).unwrap();
        let json = serde_json::to_string(&stats).unwrap();
        let stripped = json
            .replace(&format!(",\"shed\":{}", stats.shed), "")
            .replace(&format!(",\"expired\":{}", stats.expired), "");
        assert_ne!(stripped, json, "fields must have been present to strip");
        let back: OnlineStats = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.shed, 0);
        assert_eq!(back.expired, 0);
    }
}
