//! Offline batch jobs and micro-batch sizing arithmetic.

use serde::{Deserialize, Serialize};

/// One offline serving job: the unit LLM-PQ plans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Global batch size (sequences per batch).
    pub global_batch: usize,
    /// Padded prompt length `s`.
    pub prompt_len: usize,
    /// Tokens to generate per sequence `n` (EOS is never emitted,
    /// following the ORCA-style setup in §6.1).
    pub n_generate: usize,
}

impl BatchJob {
    /// The paper's default workload: batch 32, prompts padded to 512,
    /// 100 generated tokens.
    pub fn paper_default() -> Self {
        Self { global_batch: 32, prompt_len: 512, n_generate: 100 }
    }

    /// The shorter-prompt workload of Table 7: s=128, n=200.
    pub fn paper_short() -> Self {
        Self { global_batch: 32, prompt_len: 128, n_generate: 200 }
    }

    /// Total tokens the job produces (throughput numerator).
    pub fn total_tokens(&self) -> usize {
        self.global_batch * self.n_generate
    }

    /// Maximum sequence length the KV cache must hold.
    pub fn max_seq(&self) -> usize {
        self.prompt_len + self.n_generate
    }
}

/// A hybrid micro-batch plan: LLM-PQ sizes micro-batches per phase
/// (small for prefill to limit bubbles and peak temporaries, large for
/// decode to amortize weight reads — Optimization #1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicrobatchPlan {
    /// Sequences per prefill micro-batch.
    pub prefill_size: usize,
    /// Number of prefill micro-batches.
    pub prefill_count: usize,
    /// Sequences per decode micro-batch.
    pub decode_size: usize,
    /// Number of decode micro-batches.
    pub decode_count: usize,
}

/// Enumerate the candidate micro-batch plans for a job over `n_stages`
/// pipeline stages, following the paper's pruning: decode micro-batches
/// evenly partition the global batch across stages (size =
/// `global/n_stages`, clamped to divisors), while prefill sizes range
/// over the divisors of the global batch within `[1, ξ]`.
pub fn microbatch_counts(job: &BatchJob, n_stages: usize, xi: usize) -> Vec<MicrobatchPlan> {
    assert!(n_stages > 0 && xi > 0);
    let g = job.global_batch;
    let divisors: Vec<usize> = (1..=g).filter(|d| g.is_multiple_of(*d)).collect();
    // Decode: prefer size ≈ g / n_stages (even partition), but offer all
    // divisors ≥ that so the optimizer can trade bubble for memory.
    let even = (g / n_stages).max(1);
    let decode_sizes: Vec<usize> = divisors.iter().cloned().filter(|&d| d >= even).collect();
    let mut out = Vec::new();
    for &p in divisors.iter().filter(|&&d| d <= xi) {
        for &d in &decode_sizes {
            out.push(MicrobatchPlan {
                prefill_size: p,
                prefill_count: g / p,
                decode_size: d,
                decode_count: g / d,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let j = BatchJob::paper_default();
        assert_eq!(j.total_tokens(), 3200);
        assert_eq!(j.max_seq(), 612);
        let s = BatchJob::paper_short();
        assert_eq!(s.max_seq(), 328);
        assert_eq!(s.total_tokens(), 6400);
    }

    #[test]
    fn plans_cover_global_batch_exactly() {
        let job = BatchJob::paper_default();
        for plan in microbatch_counts(&job, 4, 8) {
            assert_eq!(plan.prefill_size * plan.prefill_count, 32);
            assert_eq!(plan.decode_size * plan.decode_count, 32);
        }
    }

    #[test]
    fn prefill_sizes_pruned_by_xi() {
        let job = BatchJob::paper_default();
        let plans = microbatch_counts(&job, 4, 4);
        assert!(plans.iter().all(|p| p.prefill_size <= 4));
        assert!(plans.iter().any(|p| p.prefill_size == 1));
    }

    #[test]
    fn decode_sizes_at_least_even_partition() {
        let job = BatchJob::paper_default();
        let plans = microbatch_counts(&job, 4, 8);
        assert!(plans.iter().all(|p| p.decode_size >= 8));
    }

    #[test]
    fn single_stage_allows_full_batch_decode() {
        let job = BatchJob::paper_default();
        let plans = microbatch_counts(&job, 1, 8);
        assert!(plans.iter().any(|p| p.decode_size == 32 && p.decode_count == 1));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_stages() {
        microbatch_counts(&BatchJob::paper_default(), 0, 4);
    }
}
