//! Synthetic production-cluster trace (Figure 1).
//!
//! Figure 1 motivates the paper: a real AI cloud holds *few* high-calibre
//! GPUs (A100/V100) that run hot, and *many* low-calibre inference GPUs
//! (T4 and friends) that sit largely idle. We can't ship ByteDance's
//! trace, so this module generates a statistically similar one: a GPU
//! inventory with the published *shape* (inference cards dominate the
//! count) and a month of hourly utilization per type with high-calibre
//! cards near saturation.

use crate::device::GpuModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Trace generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Hours of utilization history (the paper plots one month).
    pub hours: usize,
    /// Total GPUs in the inventory.
    pub fleet_size: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { seed: 2024, hours: 30 * 24, fleet_size: 10_000 }
    }
}

/// Per-type fleet share and mean utilization targets, mirroring Fig 1's
/// qualitative shape: the A100 runs ~3× hotter than the inference cards.
fn profile(gpu: GpuModel) -> (f64, f64) {
    match gpu {
        // (fleet share, mean utilization)
        GpuModel::T4_16G => (0.46, 0.22),
        GpuModel::P100_12G => (0.18, 0.15),
        GpuModel::V100_32G => (0.20, 0.38),
        GpuModel::A100_40G => (0.10, 0.78),
        GpuModel::A800_80G => (0.06, 0.72),
    }
}

/// A generated production trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductionTrace {
    /// GPU count per type.
    pub inventory: Vec<(GpuModel, usize)>,
    /// Hourly utilization in `[0,1]` per type, aligned with `inventory`.
    pub utilization: Vec<Vec<f64>>,
}

impl ProductionTrace {
    /// Generate a trace.
    pub fn generate(cfg: &TraceConfig) -> Self {
        assert!(cfg.hours > 0 && cfg.fleet_size > 0);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut inventory = Vec::new();
        let mut utilization = Vec::new();
        let mut assigned = 0usize;
        for (i, gpu) in GpuModel::ALL.iter().enumerate() {
            let (share, mean_util) = profile(*gpu);
            let count = if i + 1 == GpuModel::ALL.len() {
                cfg.fleet_size - assigned
            } else {
                ((cfg.fleet_size as f64) * share).round() as usize
            };
            assigned += count;
            inventory.push((*gpu, count));
            // Diurnal + weekly pattern with noise, clamped to [0,1].
            let series = (0..cfg.hours)
                .map(|h| {
                    let hour_of_day = (h % 24) as f64;
                    let diurnal = 0.12 * ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
                    let weekly = if (h / 24) % 7 >= 5 { -0.06 } else { 0.0 };
                    let noise = rng.gen_range(-0.05..0.05);
                    (mean_util + diurnal + weekly + noise).clamp(0.0, 1.0)
                })
                .collect();
            utilization.push(series);
        }
        Self { inventory, utilization }
    }

    /// Fleet share per type, summing to 1.
    pub fn portions(&self) -> Vec<(GpuModel, f64)> {
        let total: usize = self.inventory.iter().map(|(_, c)| c).sum();
        self.inventory
            .iter()
            .map(|&(g, c)| (g, c as f64 / total as f64))
            .collect()
    }

    /// Mean utilization per type over the whole trace.
    pub fn mean_utilization(&self) -> Vec<(GpuModel, f64)> {
        self.inventory
            .iter()
            .zip(&self.utilization)
            .map(|(&(g, _), series)| (g, series.iter().sum::<f64>() / series.len() as f64))
            .collect()
    }

    /// Idle GPU-hours per type — the resource pool LLM-PQ wants to tap.
    pub fn idle_gpu_hours(&self) -> Vec<(GpuModel, f64)> {
        self.inventory
            .iter()
            .zip(&self.utilization)
            .map(|(&(g, c), series)| {
                let idle: f64 = series.iter().map(|u| 1.0 - u).sum();
                (g, idle * c as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portions_sum_to_one() {
        let t = ProductionTrace::generate(&TraceConfig::default());
        let s: f64 = t.portions().iter().map(|(_, p)| p).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_calibre_gpus_are_scarce_and_busy() {
        let t = ProductionTrace::generate(&TraceConfig::default());
        let portion = |g: GpuModel| t.portions().iter().find(|(x, _)| *x == g).unwrap().1;
        let util = |g: GpuModel| t.mean_utilization().iter().find(|(x, _)| *x == g).unwrap().1;
        // Fig 1 shape: T4s outnumber A100s; A100 utilization far higher.
        assert!(portion(GpuModel::T4_16G) > 3.0 * portion(GpuModel::A100_40G));
        assert!(util(GpuModel::A100_40G) > 2.0 * util(GpuModel::T4_16G));
    }

    #[test]
    fn utilization_in_unit_interval() {
        let t = ProductionTrace::generate(&TraceConfig { seed: 7, hours: 100, fleet_size: 500 });
        for series in &t.utilization {
            assert_eq!(series.len(), 100);
            assert!(series.iter().all(|u| (0.0..=1.0).contains(u)));
        }
    }

    #[test]
    fn trace_is_reproducible() {
        let a = ProductionTrace::generate(&TraceConfig::default());
        let b = ProductionTrace::generate(&TraceConfig::default());
        assert_eq!(a.utilization, b.utilization);
    }

    #[test]
    fn inventory_matches_fleet_size() {
        let cfg = TraceConfig { seed: 1, hours: 24, fleet_size: 777 };
        let t = ProductionTrace::generate(&cfg);
        let total: usize = t.inventory.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 777);
    }

    #[test]
    fn idle_hours_dominated_by_low_calibre() {
        let t = ProductionTrace::generate(&TraceConfig::default());
        let idle = t.idle_gpu_hours();
        let get = |g: GpuModel| idle.iter().find(|(x, _)| *x == g).unwrap().1;
        assert!(get(GpuModel::T4_16G) > get(GpuModel::A100_40G));
    }
}
