//! # llmpq-cluster
//!
//! The heterogeneous-cluster substrate: a database of the GPU models the
//! paper evaluates (A100/A800/V100/T4/P100) with their compute, memory
//! and per-bitwidth kernel-efficiency characteristics, interconnect
//! topology (NVLink within a node, 100/800 Gbps Ethernet between nodes),
//! the paper's eleven evaluation clusters (Table 3), and a synthetic
//! production-cluster trace generator reproducing Figure 1's motivation
//! (few high-calibre GPUs, heavily utilized; many low-calibre GPUs, idle).

pub mod cluster;
pub mod economics;
pub mod device;
pub mod interconnect;
pub mod spec_file;
pub mod trace;

pub use cluster::{all_paper_clusters, paper_cluster, Cluster, DeviceInstance};
pub use economics::{cluster_hourly_cost, hourly_rate, serving_cost, ServingCost};
pub use device::{DeviceSpec, GpuModel};
pub use interconnect::{Interconnect, Link};
pub use spec_file::{ClusterSpec, GroupSpec};
pub use trace::{ProductionTrace, TraceConfig};
