//! GPU device database.
//!
//! Peak numbers follow the public datasheets; the per-bitwidth kernel
//! efficiency tables encode the empirical observations that drive the
//! paper's planning problem (Figs 3 and 5, §2.5):
//!
//! * **T4** has INT8 tensor cores — its 8-bit layer time is comparable to
//!   FP16 despite much lower FP16 peak.
//! * **V100** (and P100) lack INT8 tensor cores — their INT8 kernels are
//!   *slower* than FP16 ("V100's INT8 implementation always incurs longer
//!   latency than FP16").
//! * 3/4-bit **weight-only kernels** compute in FP16 after an on-the-fly
//!   dequantization, paying a compute tax but cutting weight traffic to
//!   `bits/16` — a win exactly when the workload is memory-bound (decode),
//!   which is why "uniform low-precision quantization may not always
//!   result in inference speed-up".

use llmpq_quant::Bitwidth;
use serde::{Deserialize, Serialize};

/// The GPU models appearing in the paper's clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA P100 12 GB (Pascal, no tensor cores).
    P100_12G,
    /// NVIDIA T4 16 GB (Turing inference card, INT8 tensor cores).
    T4_16G,
    /// NVIDIA V100 32 GB (Volta, FP16 tensor cores only).
    V100_32G,
    /// NVIDIA A100 40 GB (Ampere).
    A100_40G,
    /// NVIDIA A800 80 GB (Ampere, export variant).
    A800_80G,
}

impl GpuModel {
    /// All models, roughly ascending capability.
    pub const ALL: [GpuModel; 5] = [
        GpuModel::P100_12G,
        GpuModel::T4_16G,
        GpuModel::V100_32G,
        GpuModel::A100_40G,
        GpuModel::A800_80G,
    ];

    /// Datasheet-style specification.
    pub fn spec(self) -> DeviceSpec {
        match self {
            GpuModel::P100_12G => DeviceSpec {
                model: self,
                name: "P100-12G",
                fp16_tflops: 18.7,
                mem_bw_gbs: 549.0,
                mem_gb: 12.0,
                int8_tensor_core: false,
                kernel_launch_us: 8.0,
            },
            GpuModel::T4_16G => DeviceSpec {
                model: self,
                name: "T4-16G",
                fp16_tflops: 65.0,
                mem_bw_gbs: 320.0,
                mem_gb: 16.0,
                int8_tensor_core: true,
                kernel_launch_us: 6.0,
            },
            GpuModel::V100_32G => DeviceSpec {
                model: self,
                name: "V100-32G",
                fp16_tflops: 112.0,
                mem_bw_gbs: 900.0,
                mem_gb: 32.0,
                int8_tensor_core: false,
                kernel_launch_us: 5.0,
            },
            GpuModel::A100_40G => DeviceSpec {
                model: self,
                name: "A100-40G",
                fp16_tflops: 312.0,
                mem_bw_gbs: 1555.0,
                mem_gb: 40.0,
                int8_tensor_core: true,
                kernel_launch_us: 4.0,
            },
            GpuModel::A800_80G => DeviceSpec {
                model: self,
                name: "A800-80G",
                fp16_tflops: 312.0,
                mem_bw_gbs: 2039.0,
                mem_gb: 80.0,
                int8_tensor_core: true,
                kernel_launch_us: 4.0,
            },
        }
    }
}

impl std::fmt::Display for GpuModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Full device specification consumed by the roofline simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which model this is.
    pub model: GpuModel,
    /// Marketing name.
    pub name: &'static str,
    /// Peak FP16 throughput (dense, tensor cores where present), TFLOPS.
    pub fp16_tflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Usable device memory, GB.
    pub mem_gb: f64,
    /// Whether INT8 runs on tensor cores (fast path).
    pub int8_tensor_core: bool,
    /// Fixed per-kernel launch overhead, µs.
    pub kernel_launch_us: f64,
}

impl DeviceSpec {
    /// Usable memory in bytes.
    pub fn mem_bytes(&self) -> f64 {
        self.mem_gb * 1e9
    }

    /// Compute-efficiency multiplier for linear kernels at `bits`,
    /// relative to the FP16 peak. `<1` means the kernel wastes compute;
    /// `>1` means a genuinely faster math path (INT8 tensor cores).
    pub fn compute_efficiency(&self, bits: Bitwidth) -> f64 {
        match bits {
            Bitwidth::Fp16 => 1.0,
            Bitwidth::Int8 => {
                if self.int8_tensor_core {
                    // bitsandbytes decomposition eats part of the 2× int8
                    // peak; net comparable-to-slightly-better than FP16.
                    1.10
                } else {
                    // dp4a / emulated int8: always slower than FP16.
                    0.55
                }
            }
            // Weight-only kernels dequantize into FP16 GEMMs: a compute
            // tax that is worse for the irregular 3-bit packing.
            Bitwidth::Int4 => 0.82,
            Bitwidth::Int3 => 0.70,
        }
    }

    /// Memory-efficiency multiplier at `bits` (achievable fraction of
    /// peak bandwidth; packed sub-byte formats stream slightly worse).
    pub fn memory_efficiency(&self, bits: Bitwidth) -> f64 {
        match bits {
            Bitwidth::Fp16 => 0.85,
            Bitwidth::Int8 => 0.82,
            Bitwidth::Int4 => 0.78,
            Bitwidth::Int3 => 0.72,
        }
    }

    /// Arithmetic intensity (FLOPs/byte) at which this device flips from
    /// memory- to compute-bound at FP16 — the paper quotes 139 for V100.
    pub fn ridge_point(&self) -> f64 {
        self.fp16_tflops * 1e12 / (self.mem_bw_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_ridge_point_matches_paper() {
        // §4.1: "NVIDIA V100 GPU has an arithmetic intensity of 139
        // (125 TFLOPS / 900 GB/s)" — our datasheet FP16 number is 112,
        // so the ridge lands near 124; same regime.
        let v100 = GpuModel::V100_32G.spec();
        let r = v100.ridge_point();
        assert!(r > 100.0 && r < 150.0, "ridge {r}");
    }

    #[test]
    fn t4_int8_is_fast_v100_int8_is_slow() {
        let t4 = GpuModel::T4_16G.spec();
        let v100 = GpuModel::V100_32G.spec();
        assert!(t4.compute_efficiency(Bitwidth::Int8) >= 1.0);
        assert!(v100.compute_efficiency(Bitwidth::Int8) < 1.0);
    }

    #[test]
    fn weight_only_kernels_pay_compute_tax() {
        for m in GpuModel::ALL {
            let s = m.spec();
            assert!(s.compute_efficiency(Bitwidth::Int4) < 1.0);
            assert!(s.compute_efficiency(Bitwidth::Int3) < s.compute_efficiency(Bitwidth::Int4));
        }
    }

    #[test]
    fn capability_ordering_is_sane() {
        let p100 = GpuModel::P100_12G.spec();
        let a800 = GpuModel::A800_80G.spec();
        assert!(a800.fp16_tflops > p100.fp16_tflops);
        assert!(a800.mem_gb > p100.mem_gb);
        assert!(a800.mem_bw_gbs > p100.mem_bw_gbs);
    }

    #[test]
    fn memory_bytes_conversion() {
        assert_eq!(GpuModel::T4_16G.spec().mem_bytes(), 16e9);
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuModel::A100_40G.to_string(), "A100-40G");
    }
}
