//! Cluster topology and the paper's eleven evaluation clusters (Table 3).

use crate::device::{DeviceSpec, GpuModel};
use crate::interconnect::Interconnect;
use serde::{Deserialize, Serialize};

/// One GPU in a cluster, pinned to a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceInstance {
    /// The device type.
    pub gpu: GpuModel,
    /// Node index; GPUs of one type share a node in the paper's testbed.
    pub node: usize,
}

impl DeviceInstance {
    /// Datasheet spec of this instance.
    pub fn spec(&self) -> DeviceSpec {
        self.gpu.spec()
    }
}

/// A serving cluster: devices + node topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Human-readable name, e.g. `"cluster-3"`.
    pub name: String,
    /// The devices, in node order.
    pub devices: Vec<DeviceInstance>,
    /// Interconnect class between distinct nodes.
    pub inter_node: Interconnect,
    /// Model the paper assigns to this cluster (`"opt-30b"` etc.), kept
    /// here so the bench harness can reproduce Table 3 one-to-one.
    pub paper_model: Option<String>,
}

impl Cluster {
    /// Build a cluster from `(gpu, count)` groups; each group gets its
    /// own node, matching the paper's placement.
    pub fn from_groups(
        name: impl Into<String>,
        groups: &[(GpuModel, usize)],
        inter_node: Interconnect,
        paper_model: Option<&str>,
    ) -> Self {
        let mut devices = Vec::new();
        for (node, &(gpu, count)) in groups.iter().enumerate() {
            assert!(count > 0, "empty device group");
            for _ in 0..count {
                devices.push(DeviceInstance { gpu, node });
            }
        }
        Self {
            name: name.into(),
            devices,
            inter_node,
            paper_model: paper_model.map(str::to_owned),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total device memory in bytes.
    pub fn total_mem_bytes(&self) -> f64 {
        self.devices.iter().map(|d| d.spec().mem_bytes()).sum()
    }

    /// Whether all devices are the same GPU model.
    pub fn is_homogeneous(&self) -> bool {
        self.devices.windows(2).all(|w| w[0].gpu == w[1].gpu)
    }

    /// Interconnect between device indices `a` and `b` (NVLink within a
    /// node, the cluster's Ethernet class across nodes).
    pub fn link_between(&self, a: usize, b: usize) -> Interconnect {
        if self.devices[a].node == self.devices[b].node {
            Interconnect::NvLink
        } else {
            self.inter_node
        }
    }

    /// The cluster minus the given device indices — the surviving
    /// sub-cluster after permanent device loss. Returns the sub-cluster
    /// (named `"<name>-degraded"`) and a map from new device index to
    /// the index it had in `self`, so plans computed on the sub-cluster
    /// can be translated back into original device ids.
    pub fn without_devices(&self, lost: &[usize]) -> (Cluster, Vec<usize>) {
        let mut devices = Vec::new();
        let mut new_to_old = Vec::new();
        for (i, d) in self.devices.iter().enumerate() {
            if !lost.contains(&i) {
                devices.push(*d);
                new_to_old.push(i);
            }
        }
        let sub = Cluster {
            name: format!("{}-degraded", self.name),
            devices,
            inter_node: self.inter_node,
            paper_model: self.paper_model.clone(),
        };
        (sub, new_to_old)
    }

    /// Distinct GPU models present, with counts.
    pub fn model_counts(&self) -> Vec<(GpuModel, usize)> {
        let mut out: Vec<(GpuModel, usize)> = Vec::new();
        for d in &self.devices {
            if let Some(e) = out.iter_mut().find(|(g, _)| *g == d.gpu) {
                e.1 += 1;
            } else {
                out.push((d.gpu, 1));
            }
        }
        out
    }
}

/// The paper's Table 3 clusters, by number (1–11).
///
/// | # | Devices | Model |
/// |---|---------|-------|
/// | 1 | 1×V100-32G | 13b |
/// | 2 | 1×A100-40G | 13b |
/// | 3 | 3×T4 + 1×V100 (800G) | 30b |
/// | 4 | 3×P100 + 1×V100 (100G) | 30b |
/// | 5 | 4×T4 + 2×V100 (800G) | 66b |
/// | 6 | 2×V100 + 2×A100 (100G) | 66b |
/// | 7 | 4×V100 + 4×A100 (100G) | 176b |
/// | 8 | 4×V100 + 2×A800 (800G) | 176b |
/// | 9 | 4×T4 | 30b |
/// | 10 | 4×V100 | 66b |
/// | 11 | 4×A800 (800G) | 176b |
pub fn paper_cluster(n: usize) -> Cluster {
    use GpuModel::*;
    use Interconnect::*;
    let (groups, inter, model): (Vec<(GpuModel, usize)>, Interconnect, &str) = match n {
        1 => (vec![(V100_32G, 1)], Ethernet800G, "opt-13b"),
        2 => (vec![(A100_40G, 1)], Ethernet800G, "opt-13b"),
        3 => (vec![(T4_16G, 3), (V100_32G, 1)], Ethernet800G, "opt-30b"),
        4 => (vec![(P100_12G, 3), (V100_32G, 1)], Ethernet100G, "opt-30b"),
        5 => (vec![(T4_16G, 4), (V100_32G, 2)], Ethernet800G, "opt-66b"),
        6 => (vec![(V100_32G, 2), (A100_40G, 2)], Ethernet100G, "opt-66b"),
        7 => (vec![(V100_32G, 4), (A100_40G, 4)], Ethernet100G, "bloom-176b"),
        8 => (vec![(V100_32G, 4), (A800_80G, 2)], Ethernet800G, "bloom-176b"),
        9 => (vec![(T4_16G, 4)], Ethernet800G, "opt-30b"),
        10 => (vec![(V100_32G, 4)], Ethernet800G, "opt-66b"),
        11 => (vec![(A800_80G, 4)], Ethernet800G, "bloom-176b"),
        other => panic!("paper defines clusters 1–11, got {other}"),
    };
    Cluster::from_groups(format!("cluster-{n}"), &groups, inter, Some(model))
}

/// All eleven paper clusters.
pub fn all_paper_clusters() -> Vec<Cluster> {
    (1..=11).map(paper_cluster).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes() {
        assert_eq!(paper_cluster(1).len(), 1);
        assert_eq!(paper_cluster(3).len(), 4);
        assert_eq!(paper_cluster(5).len(), 6);
        assert_eq!(paper_cluster(7).len(), 8);
        assert_eq!(paper_cluster(8).len(), 6);
        assert_eq!(paper_cluster(11).len(), 4);
    }

    #[test]
    fn homogeneity_split_matches_paper() {
        for n in 1..=11 {
            let c = paper_cluster(n);
            let homo = c.is_homogeneous();
            // 1, 2, 9, 10, 11 are single-type; 3–8 are mixed.
            assert_eq!(homo, matches!(n, 1 | 2 | 9 | 10 | 11), "cluster {n}");
        }
    }

    #[test]
    fn intra_node_is_nvlink() {
        let c = paper_cluster(3); // T4 T4 T4 | V100
        assert_eq!(c.link_between(0, 1), Interconnect::NvLink);
        assert_eq!(c.link_between(2, 3), Interconnect::Ethernet800G);
    }

    #[test]
    fn model_sizing_rule_holds() {
        // Paper: model FP16 weight size comparable to total cluster
        // memory. Check cluster 5 (64+64=128... 4×16+2×32=128 GB) vs
        // OPT-66b ≈ 132 GB.
        let c = paper_cluster(5);
        let gb = c.total_mem_bytes() / 1e9;
        assert!((gb - 128.0).abs() < 1.0);
    }

    #[test]
    fn model_counts_aggregate() {
        let c = paper_cluster(5);
        let counts = c.model_counts();
        assert_eq!(counts, vec![(GpuModel::T4_16G, 4), (GpuModel::V100_32G, 2)]);
    }

    #[test]
    #[should_panic(expected = "clusters 1–11")]
    fn rejects_unknown_cluster() {
        paper_cluster(12);
    }

    #[test]
    fn paper_model_recorded() {
        assert_eq!(paper_cluster(7).paper_model.as_deref(), Some("bloom-176b"));
    }

    #[test]
    fn without_devices_maps_survivors_back() {
        let c = paper_cluster(3); // T4 T4 T4 | V100
        let (sub, map) = c.without_devices(&[1]);
        assert_eq!(sub.len(), 3);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.devices[2].gpu, GpuModel::V100_32G);
        assert_eq!(sub.name, "cluster-3-degraded");
        // Node structure is preserved, so surviving intra-node pairs
        // still see NVLink.
        assert_eq!(sub.link_between(0, 1), Interconnect::NvLink);
        assert_eq!(sub.link_between(1, 2), Interconnect::Ethernet800G);
        // Losing everything yields an empty (invalid-for-planning)
        // cluster rather than a panic.
        let (empty, map) = c.without_devices(&[0, 1, 2, 3]);
        assert!(empty.is_empty());
        assert!(map.is_empty());
    }
}
