//! Serving economics: the introduction's motivation quantified.
//!
//! "Utilizing a heterogeneous cluster with a mix of available high- and
//! low-capacity GPUs can potentially substantially reduce the serving
//! cost." This module prices clusters (public cloud on-demand-style
//! $/hour per GPU) so plans can be compared by **dollars per million
//! tokens**, the number an operator actually minimizes.

use crate::cluster::Cluster;
use crate::device::GpuModel;
use serde::{Deserialize, Serialize};

/// On-demand-style hourly price per GPU, USD (representative public
/// cloud rates; relative order is what matters).
pub fn hourly_rate(gpu: GpuModel) -> f64 {
    match gpu {
        GpuModel::P100_12G => 0.55,
        GpuModel::T4_16G => 0.35,
        GpuModel::V100_32G => 2.48,
        GpuModel::A100_40G => 4.10,
        GpuModel::A800_80G => 5.20,
    }
}

/// Hourly cost of an entire cluster.
pub fn cluster_hourly_cost(cluster: &Cluster) -> f64 {
    cluster.devices.iter().map(|d| hourly_rate(d.gpu)).sum()
}

/// Cost summary of serving at a given sustained throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingCost {
    /// Cluster cost, $/hour.
    pub dollars_per_hour: f64,
    /// Sustained throughput, tokens/second.
    pub tokens_per_second: f64,
    /// Headline: dollars per million generated tokens.
    pub dollars_per_mtok: f64,
}

/// Price a (cluster, throughput) pair.
pub fn serving_cost(cluster: &Cluster, tokens_per_second: f64) -> ServingCost {
    assert!(tokens_per_second > 0.0, "throughput must be positive");
    let dollars_per_hour = cluster_hourly_cost(cluster);
    let tokens_per_hour = tokens_per_second * 3600.0;
    ServingCost {
        dollars_per_hour,
        tokens_per_second,
        dollars_per_mtok: dollars_per_hour / tokens_per_hour * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::paper_cluster;

    #[test]
    fn rates_order_by_capability() {
        assert!(hourly_rate(GpuModel::T4_16G) < hourly_rate(GpuModel::V100_32G));
        assert!(hourly_rate(GpuModel::V100_32G) < hourly_rate(GpuModel::A100_40G));
    }

    #[test]
    fn cluster_cost_sums_devices() {
        // Cluster 3 = 3×T4 + 1×V100.
        let c = paper_cluster(3);
        let expect = 3.0 * 0.35 + 2.48;
        assert!((cluster_hourly_cost(&c) - expect).abs() < 1e-12);
    }

    #[test]
    fn cost_per_mtok_scales_inversely_with_throughput() {
        let c = paper_cluster(3);
        let slow = serving_cost(&c, 10.0);
        let fast = serving_cost(&c, 100.0);
        assert!((slow.dollars_per_mtok / fast.dollars_per_mtok - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scavenged_t4s_can_undercut_an_a100() {
        // The Fig-1 pitch: 4 idle T4s at modest throughput can be cheaper
        // per token than one A100 at high throughput.
        let t4s = crate::cluster::Cluster::from_groups(
            "4xT4",
            &[(GpuModel::T4_16G, 4)],
            crate::interconnect::Interconnect::Ethernet100G,
            None,
        );
        let a100 = crate::cluster::Cluster::from_groups(
            "1xA100",
            &[(GpuModel::A100_40G, 1)],
            crate::interconnect::Interconnect::Ethernet100G,
            None,
        );
        // Equal throughput ⇒ the T4 pool (at $1.40/h vs $4.10/h) wins.
        let t4_cost = serving_cost(&t4s, 50.0);
        let a100_cost = serving_cost(&a100, 50.0);
        assert!(t4_cost.dollars_per_mtok < a100_cost.dollars_per_mtok);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        serving_cost(&paper_cluster(1), 0.0);
    }
}
