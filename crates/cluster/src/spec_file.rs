//! Cluster specification files.
//!
//! Operators describe their hardware in a small JSON file instead of
//! paper cluster numbers — the `--cluster_file` path of the CLI:
//!
//! ```json
//! {
//!   "name": "scavenged-pool",
//!   "inter_node": "Ethernet100G",
//!   "groups": [ { "gpu": "T4_16G", "count": 4 }, { "gpu": "V100_32G", "count": 2 } ]
//! }
//! ```

use crate::cluster::Cluster;
use crate::device::GpuModel;
use crate::interconnect::Interconnect;
use serde::{Deserialize, Serialize};

/// One same-type device group (maps to one node, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// GPU model.
    pub gpu: GpuModel,
    /// Devices in the group.
    pub count: usize,
}

/// The on-disk cluster description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// Inter-node interconnect class.
    pub inter_node: Interconnect,
    /// Device groups, one node each.
    pub groups: Vec<GroupSpec>,
    /// Optional model hint (like Table 3's model column).
    #[serde(default)]
    pub model: Option<String>,
}

impl ClusterSpec {
    /// Build the runtime [`Cluster`].
    pub fn to_cluster(&self) -> Result<Cluster, String> {
        if self.groups.is_empty() {
            return Err("cluster spec has no device groups".into());
        }
        if self.groups.iter().any(|g| g.count == 0) {
            return Err("device group with count 0".into());
        }
        let groups: Vec<(GpuModel, usize)> = self.groups.iter().map(|g| (g.gpu, g.count)).collect();
        Ok(Cluster::from_groups(&self.name, &groups, self.inter_node, self.model.as_deref()))
    }

    /// Describe an existing cluster (for round-trips / exporting the
    /// paper clusters as files).
    pub fn from_cluster(c: &Cluster) -> ClusterSpec {
        ClusterSpec {
            name: c.name.clone(),
            inter_node: c.inter_node,
            groups: c.model_counts().into_iter().map(|(gpu, count)| GroupSpec { gpu, count }).collect(),
            model: c.paper_model.clone(),
        }
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<ClusterSpec, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cluster specs serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::paper_cluster;

    #[test]
    fn parse_handwritten_spec() {
        let json = r#"{
            "name": "scavenged",
            "inter_node": "Ethernet100G",
            "groups": [ { "gpu": "T4_16G", "count": 4 }, { "gpu": "V100_32G", "count": 2 } ]
        }"#;
        let spec = ClusterSpec::from_json(json).unwrap();
        let cluster = spec.to_cluster().unwrap();
        assert_eq!(cluster.len(), 6);
        assert_eq!(cluster.devices[0].node, 0);
        assert_eq!(cluster.devices[5].node, 1);
        assert_eq!(cluster.inter_node, Interconnect::Ethernet100G);
    }

    #[test]
    fn paper_clusters_round_trip() {
        for n in 1..=11 {
            let c = paper_cluster(n);
            let spec = ClusterSpec::from_cluster(&c);
            let back = ClusterSpec::from_json(&spec.to_json()).unwrap().to_cluster().unwrap();
            assert_eq!(back.len(), c.len(), "cluster {n}");
            assert_eq!(back.model_counts(), c.model_counts(), "cluster {n}");
            assert_eq!(back.inter_node, c.inter_node, "cluster {n}");
            assert_eq!(back.paper_model, c.paper_model, "cluster {n}");
        }
    }

    #[test]
    fn rejects_empty_and_zero_groups() {
        let empty = ClusterSpec {
            name: "x".into(),
            inter_node: Interconnect::NvLink,
            groups: vec![],
            model: None,
        };
        assert!(empty.to_cluster().is_err());
        let zero = ClusterSpec {
            name: "x".into(),
            inter_node: Interconnect::NvLink,
            groups: vec![GroupSpec { gpu: GpuModel::T4_16G, count: 0 }],
            model: None,
        };
        assert!(zero.to_cluster().is_err());
    }

    #[test]
    fn rejects_garbage_json() {
        assert!(ClusterSpec::from_json("not json").is_err());
        assert!(ClusterSpec::from_json(r#"{"name":"x"}"#).is_err());
    }
}
