//! Interconnect model.
//!
//! The paper's clusters keep GPUs of one type on one node (NVLink inside)
//! and join nodes with 100 Gbps or 800 Gbps Ethernet (§6.1). Pipeline
//! parallelism only ships the hidden-state boundary activation between
//! adjacent stages, so a simple `latency + bytes/bandwidth` α-β model is
//! the appropriate fidelity.

use serde::{Deserialize, Serialize};

/// A point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// One-way latency, seconds.
    pub latency_s: f64,
}

impl Link {
    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth_bps
    }

    /// The α-β parameters of a loopback (`127.0.0.1`) TCP hop, for
    /// cross-checking the model against the multi-process runtime on a
    /// single machine: kernel-bounced frames move at memory-copy speeds
    /// (≈5 GB/s sustained through the socket stack) with tens of
    /// microseconds of per-message syscall/wakeup latency.
    pub fn loopback() -> Link {
        Link { bandwidth_bps: 5e9, latency_s: 30e-6 }
    }
}

/// The interconnect classes in the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// Intra-node NVLink (≈300 GB/s effective, sub-10 µs).
    NvLink,
    /// 800 Gbps Ethernet between nodes (clusters 3, 5, 8, 11).
    Ethernet800G,
    /// 100 Gbps Ethernet between nodes (clusters 4, 6, 7).
    Ethernet100G,
}

impl Interconnect {
    /// The α-β parameters of this class.
    pub fn link(self) -> Link {
        match self {
            Interconnect::NvLink => Link { bandwidth_bps: 300e9, latency_s: 5e-6 },
            Interconnect::Ethernet800G => Link { bandwidth_bps: 100e9, latency_s: 20e-6 },
            Interconnect::Ethernet100G => Link { bandwidth_bps: 12.5e9, latency_s: 50e-6 },
        }
    }

    /// Transfer time of `bytes` across one hop of this class.
    pub fn transfer_time(self, bytes: f64) -> f64 {
        self.link().transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering() {
        let mb = 1e6;
        let nv = Interconnect::NvLink.transfer_time(mb);
        let e8 = Interconnect::Ethernet800G.transfer_time(mb);
        let e1 = Interconnect::Ethernet100G.transfer_time(mb);
        assert!(nv < e8 && e8 < e1);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let l = Interconnect::Ethernet100G.link();
        let t_small = l.transfer_time(100.0);
        assert!((t_small - l.latency_s) / l.latency_s < 0.01);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let l = Interconnect::NvLink.link();
        let bytes = 1e9;
        let t = l.transfer_time(bytes);
        assert!((t - bytes / l.bandwidth_bps).abs() / t < 0.01);
    }
}
