//! llm-pq-suite: workspace umbrella re-exporting all crates for examples and integration tests.
pub use llm_pq as core;
pub use llmpq_cluster as cluster;
pub use llmpq_cost as cost;
pub use llmpq_model as model;
pub use llmpq_quality as quality;
pub use llmpq_quant as quant;
pub use llmpq_runtime as runtime;
pub use llmpq_sim as sim;
pub use llmpq_solver as solver;
pub use llmpq_workload as workload;
